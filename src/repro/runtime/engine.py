"""The job engine: deduplicated fan-out over a warm worker pool, with store.

Scheduling model
----------------

``JobEngine.run`` takes any iterable of job specs (any registered kind —
see :mod:`repro.runtime.registry`) and:

1. **dedupes** them by content-addressed key (the (2+0) baseline shows up
   in four different figures — it runs once);
2. answers what it can from the result store (kinds that own their own
   persistence, like trace captures, opt out via ``cacheable=False``);
3. fans the misses out across a :class:`WorkerPool`, dispatching in
   workload order so each worker's per-process trace memo gets reuse;
4. enforces a **per-job timeout** (a wave-dispatch deadline per future),
   **bounded retries with deterministic exponential backoff**, and
   **graceful degradation**: a hung worker is killed and the pool rebuilt;
   a died worker (``BrokenProcessPool``) retries and finally falls back to
   in-process execution; an engine that cannot create a pool at all just
   runs everything inline.

Warm pools: an engine can borrow a caller-owned :class:`WorkerPool`
instead of building an ephemeral one.  The pool's worker processes — and
with them the per-process trace memos, specialized-kernel caches, and
pre-decoded sidecars — survive across ``run`` calls, so a second
submission of the same work recompiles nothing; every outcome carries the
warm-state deltas (:func:`repro.runtime.worker.run_with_stats`) that
prove it.

Determinism: a simulation is a pure function of its job spec, so parallel
execution is bit-identical to sequential execution — the engine only
changes *when* a result is computed, never *what* it is.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.runtime.registry import kind_for
from repro.runtime.signature import code_salt
from repro.runtime.worker import execute_any, run_job_batch, run_with_stats

ProgressFn = Callable[[str, "JobOutcome", int, int], None]

#: The warm-state counter names every outcome's ``stats`` dict carries.
WARM_COUNTERS = ("kernel_compiles", "trace_builds", "trace_decodes")


def _stop_executor(pool: ProcessPoolExecutor) -> None:
    """Tear an executor down even when a worker is hung."""
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except TypeError:  # pragma: no cover - Python < 3.9
        pool.shutdown(wait=False)
    except Exception:  # noqa: BLE001
        pass
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.terminate()
        except Exception:  # noqa: BLE001
            pass


class WorkerPool:
    """A process pool whose workers — and their warm state — persist.

    The pool is the unit of *warmth*: each worker process accumulates the
    per-process trace memo, the specialized-kernel cache, and the
    materialized pre-decoded sidecars as it executes jobs.  A caller that
    keeps one ``WorkerPool`` across engine runs (the job service does)
    gets second submissions that recompile nothing.

    The executor is created lazily and can be :meth:`rebuild`-t after a
    worker death or hang — rebuilding sacrifices the warm state, which is
    exactly right: a crashed worker's memos are gone anyway, and a hung
    worker must die.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("worker count must be >= 1")
        self.workers = workers
        self.rebuilds = 0
        self.submissions = 0
        self._pool: Optional[ProcessPoolExecutor] = None

    def executor(self) -> Optional[ProcessPoolExecutor]:
        """The live executor, creating it on first use (None = no MP)."""
        if self._pool is None:
            try:
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
            except Exception:  # noqa: BLE001 - no multiprocessing here
                return None
        return self._pool

    @property
    def alive(self) -> bool:
        return self._pool is not None

    def submit(self, fn, *args):
        """Submit work; raises RuntimeError when no executor exists."""
        pool = self.executor()
        if pool is None:
            raise RuntimeError("no process pool available")
        self.submissions += 1
        return pool.submit(fn, *args)

    def rebuild(self) -> Optional[ProcessPoolExecutor]:
        """Kill the workers (hung ones included) and start fresh ones."""
        if self._pool is not None:
            _stop_executor(self._pool)
            self._pool = None
        self.rebuilds += 1
        return self.executor()

    def stop(self) -> None:
        """Kill the workers and release the executor."""
        if self._pool is not None:
            _stop_executor(self._pool)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def __repr__(self) -> str:
        state = "live" if self.alive else "cold"
        return (f"WorkerPool({self.workers} workers, {state}, "
                f"rebuilds={self.rebuilds})")


class JobOutcome:
    """What happened to one deduplicated job."""

    __slots__ = ("job", "status", "result", "wall", "attempts", "worker",
                 "error", "stats")

    def __init__(self, job, status: str,
                 result: Optional[Any] = None, wall: float = 0.0,
                 attempts: int = 0, worker: str = "inline",
                 error: Optional[str] = None,
                 stats: Optional[Dict[str, int]] = None):
        self.job = job
        self.status = status      # "cached" | "ran" | "failed" | "timeout"
        self.result = result
        self.wall = wall
        self.attempts = attempts
        self.worker = worker      # "cache" | "pool" | "inline"
        self.error = error
        # Warm-state deltas measured around the execution (kernel
        # compiles, trace builds, sidecar decodes); None for cache hits.
        self.stats = stats

    @property
    def ok(self) -> bool:
        return self.status in ("cached", "ran")

    def __repr__(self) -> str:
        return (f"JobOutcome({self.job.label()}, {self.status}, "
                f"wall={self.wall:.2f}s)")


class EngineReport:
    """Aggregate view of one ``JobEngine.run`` call."""

    def __init__(self, outcomes: Dict[str, JobOutcome], elapsed: float,
                 duplicates: int, workers: int):
        self.outcomes = outcomes
        self.elapsed = elapsed
        self.duplicates = duplicates
        self.workers = workers

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "cached")

    @property
    def ran(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "ran")

    @property
    def failed(self) -> List[JobOutcome]:
        return [o for o in self.outcomes.values() if not o.ok]

    @property
    def cache_hit_rate(self) -> float:
        total = len(self.outcomes)
        return self.cached / total if total else 0.0

    @property
    def busy(self) -> float:
        """Total worker-seconds spent simulating (excludes cache hits)."""
        return sum(o.wall for o in self.outcomes.values()
                   if o.status == "ran")

    @property
    def utilization(self) -> float:
        """Busy worker-seconds over available worker-seconds."""
        capacity = self.elapsed * max(1, self.workers)
        return min(1.0, self.busy / capacity) if capacity else 0.0

    def warm(self) -> Dict[str, int]:
        """Summed warm-state movement across every executed job.

        All-zero on a fully warm repeat (every trace, kernel, and
        sidecar came out of per-process memos) — the number the service
        surfaces so a warm second submission can *prove* it recompiled
        nothing.
        """
        total = {name: 0 for name in WARM_COUNTERS}
        for outcome in self.outcomes.values():
            if outcome.stats:
                for name in WARM_COUNTERS:
                    total[name] += outcome.stats.get(name, 0)
        return total

    def results(self) -> Dict[str, Any]:
        """key -> result for every successful job."""
        return {key: o.result for key, o in self.outcomes.items()
                if o.result is not None}


class JobEngine:
    """Runs a batch of jobs with dedup, store, pool, timeout and retries."""

    def __init__(self, jobs: int = 1, cache=None,
                 timeout: Optional[float] = None, retries: int = 1,
                 progress: Optional[ProgressFn] = None,
                 max_pool_rebuilds: int = 3, batch: int = 1,
                 pool: Optional[WorkerPool] = None,
                 backoff_base: float = 0.05, backoff_cap: float = 2.0,
                 sleep: Callable[[float], None] = time.sleep):
        if jobs < 1:
            raise ValueError("worker count must be >= 1")
        if batch < 1:
            raise ValueError("batch size must be >= 1")
        self.jobs = jobs
        # Anything with lookup(job)/store(job, result)/flush() — the
        # sharded ResultStore or the legacy flat ResultCache.
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.max_pool_rebuilds = max_pool_rebuilds
        self.batch = batch
        # A caller-owned warm pool; None means each run builds (and
        # tears down) an ephemeral one.
        self.pool = pool
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._sleep = sleep
        self._rebuilds = 0

    # -- public entry -------------------------------------------------------

    def run(self, jobs: Iterable[Any],
            execute: Callable[[Any], Any] = execute_any
            ) -> EngineReport:
        """Execute every job (deduplicated), returning per-job outcomes."""
        started = time.monotonic()
        unique: Dict[str, Any] = {}
        duplicates = 0
        for job in jobs:
            if job.key in unique:
                duplicates += 1
            else:
                unique[job.key] = job
        self._total = len(unique)
        self._done = 0
        outcomes: Dict[str, JobOutcome] = {}
        pending: List[str] = []
        for key, job in unique.items():
            cached = (self.cache.lookup(job)
                      if self._cacheable(job) else None)
            if cached is not None:
                self._finish(outcomes, key,
                             JobOutcome(job, "cached", cached,
                                        worker="cache"))
            else:
                pending.append(key)
        # Workload-major order maximises per-process trace-memo reuse.
        pending.sort(key=lambda k: (unique[k].workload, unique[k].scale,
                                    unique[k].seed))
        if pending:
            # The pool path is also what enforces per-job timeouts, so a
            # single pending job still goes parallel when one is set.
            if self.jobs > 1 and (len(pending) > 1
                                  or self.timeout is not None):
                if self.batch > 1:
                    self._run_pool_batched(unique, pending, outcomes,
                                           execute)
                else:
                    self._run_pool(unique, pending, outcomes, execute)
            else:
                self._run_inline(unique, pending, outcomes, execute)
        if self.cache is not None:
            self.cache.flush()
        ordered = {key: outcomes[key] for key in unique}
        return EngineReport(ordered, time.monotonic() - started,
                            duplicates, self.jobs)

    # -- bookkeeping --------------------------------------------------------

    def _cacheable(self, job) -> bool:
        """Whether *job*'s results route through the result store.

        Kind-registered jobs follow their kind's ``cacheable`` flag
        (trace captures own their store); legacy kindless specs driven
        by an explicit ``execute`` callable default to cacheable.
        """
        if self.cache is None:
            return False
        kind = kind_for(job, required=False)
        return kind.cacheable if kind is not None else True

    def _finish(self, outcomes: Dict[str, JobOutcome], key: str,
                outcome: JobOutcome) -> None:
        outcomes[key] = outcome
        self._done += 1
        if outcome.status == "ran" and self._cacheable(outcome.job):
            self.cache.store(outcome.job, outcome.result)
        if self.progress is not None:
            self.progress(outcome.status, outcome, self._done, self._total)

    def _backoff(self, attempt: int) -> None:
        """Deterministic exponential backoff before retry ``attempt+1``.

        ``base * 2**(attempt-1)`` capped at ``backoff_cap`` — no jitter:
        reproducibility beats thundering-herd avoidance in a
        single-machine engine, and tests can assert the exact schedule.
        """
        if attempt < 1 or self.backoff_base <= 0:
            return
        delay = min(self.backoff_cap,
                    self.backoff_base * (2 ** (attempt - 1)))
        self._sleep(delay)

    # -- sequential path ----------------------------------------------------

    def _run_inline(self, unique: Dict[str, Any], pending: List[str],
                    outcomes: Dict[str, JobOutcome],
                    execute: Callable[[Any], Any]) -> None:
        for key in pending:
            job = unique[key]
            t0 = time.monotonic()
            try:
                result, stats = run_with_stats(execute, job)
            except Exception as exc:  # noqa: BLE001 - recorded, not hidden
                self._finish(outcomes, key,
                             JobOutcome(job, "failed", None,
                                        time.monotonic() - t0, 1, "inline",
                                        f"{type(exc).__name__}: {exc}"))
            else:
                self._finish(outcomes, key,
                             JobOutcome(job, "ran", result,
                                        time.monotonic() - t0, 1, "inline",
                                        stats=stats))

    # -- parallel path ------------------------------------------------------

    def _acquire_pool(self):
        """(pool, owned): the caller's warm pool, or a fresh ephemeral one."""
        if self.pool is not None:
            return self.pool, False
        return WorkerPool(self.jobs), True

    def _rebuild_pool(self, worker_pool: WorkerPool
                      ) -> Optional[ProcessPoolExecutor]:
        self._rebuilds += 1
        if self._rebuilds > self.max_pool_rebuilds:
            # Out of budget: the (possibly hung) workers still must die.
            worker_pool.stop()
            return None
        return worker_pool.rebuild()

    def _run_pool_batched(self, unique: Dict[str, Any],
                          pending: List[str],
                          outcomes: Dict[str, JobOutcome],
                          execute: Callable[[Any], Any]) -> None:
        """Chunked fan-out: ``batch`` jobs per worker round trip.

        One submission amortizes IPC plus the worker's warm per-process
        state (trace memo, specialized-kernel cache).  This loop only
        handles the happy path; any anomaly — a worker death, a blown
        deadline, a per-job error — routes the affected keys back
        through the proven single-job pool machinery, which owns
        retries and pool rebuilds.
        """
        worker_pool, owned = self._acquire_pool()
        if worker_pool.executor() is None:
            if owned:
                worker_pool.stop()
            self._run_inline(unique, pending, outcomes, execute)
            return
        chunks = deque(
            pending[i:i + self.batch]
            for i in range(0, len(pending), self.batch))
        in_flight: Dict[object, tuple] = {}  # future -> (keys, t0, ddl)
        fallback: List[str] = []
        poisoned = False
        while chunks or in_flight:
            while chunks and len(in_flight) < self.jobs:
                chunk = chunks.popleft()
                now = time.monotonic()
                deadline = (now + self.timeout * len(chunk)
                            if self.timeout is not None else None)
                try:
                    future = worker_pool.submit(
                        run_job_batch, execute,
                        [unique[key] for key in chunk])
                except Exception:  # noqa: BLE001 - pool broken
                    poisoned = True
                    fallback.extend(chunk)
                    continue
                in_flight[future] = (chunk, now, deadline)
            if not in_flight:
                continue
            wait_for = None
            now = time.monotonic()
            deadlines = [d for (_k, _t, d) in in_flight.values()
                         if d is not None]
            if deadlines:
                wait_for = max(0.0, min(deadlines) - now)
            done, _ = wait(set(in_flight), timeout=wait_for,
                           return_when=FIRST_COMPLETED)
            anomaly = False
            for future in done:
                chunk, _t0, _deadline = in_flight.pop(future)
                try:
                    statuses = future.result()
                except Exception:  # noqa: BLE001 - incl. broken pool
                    anomaly = True
                    poisoned = True
                    fallback.extend(chunk)
                    continue
                for key, (status, payload, wall,
                          stats) in zip(chunk, statuses):
                    if status == "ok":
                        self._finish(outcomes, key,
                                     JobOutcome(unique[key], "ran",
                                                payload, wall, 1,
                                                "pool", stats=stats))
                    else:
                        # Give the failure the single-job path's
                        # full retry budget.
                        fallback.append(key)
            if not done:
                now = time.monotonic()
                if any(d is not None and now >= d
                       for (_k, _t, d) in in_flight.values()):
                    anomaly = True
                    poisoned = True
            if anomaly:
                for _future, (chunk, _t0, _d) in in_flight.items():
                    fallback.extend(chunk)
                in_flight.clear()
                while chunks:
                    fallback.extend(chunks.popleft())
        if poisoned:
            # Hung or dead workers: fresh processes before the fallback
            # path touches the pool (the warm state died with them).
            worker_pool.rebuild()
        if fallback:
            self._run_pool_with(worker_pool, owned, unique, fallback,
                                outcomes, execute)
        elif owned:
            worker_pool.stop()

    def _run_pool(self, unique: Dict[str, Any], pending: List[str],
                  outcomes: Dict[str, JobOutcome],
                  execute: Callable[[Any], Any]) -> None:
        worker_pool, owned = self._acquire_pool()
        self._run_pool_with(worker_pool, owned, unique, pending, outcomes,
                            execute)

    def _run_pool_with(self, worker_pool: WorkerPool, owned: bool,
                       unique: Dict[str, Any], pending: List[str],
                       outcomes: Dict[str, JobOutcome],
                       execute: Callable[[Any], Any]) -> None:
        pool = worker_pool.executor()
        if pool is None:
            if owned:
                worker_pool.stop()
            self._run_inline(unique, pending, outcomes, execute)
            return
        queue = deque(pending)
        attempts: Dict[str, int] = {key: 0 for key in pending}
        in_flight: Dict[object, tuple] = {}  # future -> (key, t0, deadline)
        inline_later: List[str] = []
        try:
            while queue or in_flight:
                if pool is None:
                    inline_later.extend(queue)
                    queue.clear()
                    break
                while queue and len(in_flight) < self.jobs:
                    key = queue.popleft()
                    attempts[key] += 1
                    now = time.monotonic()
                    deadline = (now + self.timeout
                                if self.timeout is not None else None)
                    try:
                        future = pool.submit(run_with_stats, execute,
                                             unique[key])
                    except Exception:  # noqa: BLE001 - pool already broken
                        pool = self._rebuild_pool(worker_pool)
                        queue.appendleft(key)
                        attempts[key] -= 1
                        break
                    worker_pool.submissions += 1
                    in_flight[future] = (key, now, deadline)
                if not in_flight:
                    continue
                wait_for = None
                now = time.monotonic()
                deadlines = [d for (_k, _t, d) in in_flight.values()
                             if d is not None]
                if deadlines:
                    wait_for = max(0.0, min(deadlines) - now)
                done, _ = wait(set(in_flight), timeout=wait_for,
                               return_when=FIRST_COMPLETED)
                if done:
                    broke = False
                    for future in done:
                        key, t0, _deadline = in_flight.pop(future)
                        job = unique[key]
                        wall = time.monotonic() - t0
                        try:
                            result, stats = future.result()
                        except BrokenProcessPool:
                            broke = True
                            queue.appendleft(key)
                            break
                        except Exception as exc:  # noqa: BLE001
                            if attempts[key] <= self.retries:
                                self._backoff(attempts[key])
                                queue.append(key)
                            else:
                                self._finish(
                                    outcomes, key,
                                    JobOutcome(job, "failed", None, wall,
                                               attempts[key], "pool",
                                               f"{type(exc).__name__}: "
                                               f"{exc}"))
                        else:
                            self._finish(outcomes, key,
                                         JobOutcome(job, "ran", result,
                                                    wall, attempts[key],
                                                    "pool", stats=stats))
                    if broke:
                        # Every other in-flight future died with the pool.
                        for future, (key, _t0, _d) in in_flight.items():
                            if attempts[key] <= self.retries:
                                queue.append(key)
                            else:
                                inline_later.append(key)
                        in_flight.clear()
                        pool = self._rebuild_pool(worker_pool)
                    continue
                # wait() timed out: at least one job blew its deadline.
                now = time.monotonic()
                expired = [f for f, (_k, _t, d) in in_flight.items()
                           if d is not None and now >= d]
                if not expired:
                    continue
                for future in expired:
                    key, t0, _d = in_flight.pop(future)
                    job = unique[key]
                    if attempts[key] <= self.retries:
                        self._backoff(attempts[key])
                        queue.append(key)
                    else:
                        self._finish(outcomes, key,
                                     JobOutcome(job, "timeout", None,
                                                now - t0, attempts[key],
                                                "pool",
                                                f"exceeded {self.timeout}s"))
                # The hung worker poisons its slot; survivors are requeued
                # (no attempt charged) and the pool is rebuilt.
                for future, (key, _t0, _d) in in_flight.items():
                    attempts[key] -= 1
                    queue.appendleft(key)
                in_flight.clear()
                pool = self._rebuild_pool(worker_pool)
        finally:
            if owned:
                worker_pool.stop()
        if inline_later:
            # Workers died repeatedly on these jobs: last resort inline.
            self._run_inline(unique, inline_later, outcomes, execute)


class RuntimeSession:
    """The facade ``experiments.common``, the CLIs, and the service use.

    Owns the result-store handle, the engine knobs, and — when asked —
    a persistent :class:`WorkerPool` whose warm workers survive across
    engine runs; ``simulate`` is the single-job fast path ``run_sim``
    uses, ``prewarm`` is the batch entry the experiment runner uses to
    fill the store in parallel.
    """

    def __init__(self, jobs: int = 1, cache_dir: Optional[str] = None,
                 no_cache: bool = False, timeout: Optional[float] = None,
                 retries: int = 1, progress: Optional[ProgressFn] = None,
                 batch: int = 1, keep_pool: bool = False):
        from repro.runtime.store import ResultStore

        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.batch = max(1, batch)
        self.salt = code_salt()
        if no_cache:
            self.cache = None
        elif cache_dir:
            self.cache = ResultStore(cache_dir, self.salt)
        elif os.environ.get("REPRO_CACHE_DIR"):
            self.cache = ResultStore(os.environ["REPRO_CACHE_DIR"],
                                     self.salt)
        else:
            self.cache = None
        # With keep_pool the session pins one warm pool for its whole
        # life; engines borrow it instead of building their own.
        self.pool = (WorkerPool(self.jobs)
                     if keep_pool and self.jobs > 1 else None)

    def engine(self) -> JobEngine:
        """A fresh engine with this session's knobs (pool shared)."""
        return JobEngine(jobs=self.jobs, cache=self.cache,
                         timeout=self.timeout, retries=self.retries,
                         progress=self.progress, batch=self.batch,
                         pool=self.pool)

    def simulate(self, job) -> Any:
        """Run one job inline, going through the store."""
        if self.cache is not None:
            cached = self.cache.lookup(job)
            if cached is not None:
                return cached
        result = execute_any(job)
        if self.cache is not None:
            self.cache.store(job, result)
            self.cache.flush()
        return result

    def prewarm(self, jobs: Iterable[Any],
                execute: Callable[[Any], Any] = execute_any
                ) -> EngineReport:
        """Dedupe + fan out *jobs*, filling the store; returns the report."""
        return self.engine().run(jobs, execute=execute)

    def close(self) -> None:
        """Stop the warm pool (if any) and flush buffered store state."""
        if self.pool is not None:
            self.pool.stop()
        if self.cache is not None:
            self.cache.flush()

    def __enter__(self) -> "RuntimeSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_sim_jobs(jobs: Iterable[Any], engine_jobs: int = 1,
                 cache_dir: Optional[str] = None, no_cache: bool = False,
                 timeout: Optional[float] = None):
    """Run *jobs* through the engine; returns ``(job, result)`` in order.

    The canonical **direct** path — the service smoke tests compare
    their streamed results byte-for-byte against this.  Raises
    :class:`repro.errors.SimulationError` if any job failed.
    """
    from repro.errors import SimulationError

    jobs = list(jobs)
    with RuntimeSession(jobs=engine_jobs, cache_dir=cache_dir,
                        no_cache=no_cache, timeout=timeout) as session:
        report = session.prewarm(jobs)
    failed = report.failed
    if failed:
        first = failed[0]
        raise SimulationError(
            f"{len(failed)} job(s) failed; first: "
            f"{first.job.label()}: {first.error}")
    by_key = report.results()
    return [(job, by_key[job.key]) for job in jobs]

"""The budgeted design-space-exploration driver: ``repro-cc sweep``.

A sweep is a cross product over the axes the paper's design space
actually varies — port configurations (``N+M[:opt]`` notations),
frontend timing policies, LVAQ sizes, and compiler optimization levels —
expanded over a workload list into ``sim``-kind job payloads (the same
wire format the job service accepts, so one expansion feeds both the
local engine and a remote ``repro-cc serve``).

The driver is **budgeted and resumable**:

* points already in the result store are deduplicated away before any
  budget accounting (a re-run of a finished sweep costs nothing);
* remaining points are ordered cheapest-first by a predicted cost
  (trace length x a config width factor) so a small budget buys the
  most coverage;
* ``--budget-points`` / ``--budget-seconds`` stop the sweep early,
  cleanly — completed points are recorded either way;
* a JSON **manifest** records the sweep spec digest, every planned
  point, and every completed one; re-running with the same manifest
  resumes where the budget cut off (a manifest written by a *different*
  spec is refused, not silently merged).
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.runtime.registry import decode_job
from repro.runtime.signature import canonical_json, digest

MANIFEST_VERSION = 1


class SweepSpec:
    """The axes of one design-space sweep (all combinations run)."""

    __slots__ = ("workloads", "configs", "frontends", "lvaq_sizes",
                 "opt_levels", "scale", "seed")

    def __init__(self, workloads: Sequence[str],
                 configs: Sequence[str] = ("2+0",),
                 frontends: Sequence[Optional[str]] = (None,),
                 lvaq_sizes: Sequence[Optional[int]] = (None,),
                 opt_levels: Sequence[Optional[int]] = (None,),
                 scale: float = 1.0, seed: int = 1):
        if not workloads:
            raise ReproError("a sweep needs at least one workload")
        if not configs:
            raise ReproError("a sweep needs at least one config notation")
        self.workloads = tuple(workloads)
        self.configs = tuple(configs)
        self.frontends = tuple(frontends) or (None,)
        self.lvaq_sizes = tuple(lvaq_sizes) or (None,)
        self.opt_levels = tuple(opt_levels) or (None,)
        self.scale = scale
        self.seed = seed

    def describe(self) -> Dict[str, Any]:
        return {
            "workloads": list(self.workloads),
            "configs": list(self.configs),
            "frontends": list(self.frontends),
            "lvaq_sizes": list(self.lvaq_sizes),
            "opt_levels": list(self.opt_levels),
            "scale": self.scale,
            "seed": self.seed,
        }

    @property
    def digest(self) -> str:
        return digest(canonical_json(self.describe()))

    def points(self) -> int:
        return (len(self.workloads) * len(self.configs)
                * len(self.frontends) * len(self.lvaq_sizes)
                * len(self.opt_levels))


def expand(spec: SweepSpec) -> List[Dict[str, Any]]:
    """The sweep's job payloads (wire format), one per design point.

    Opt levels ride in the workload name (``mini.qsort@O0`` — the
    builder's convention); frontend policy and LVAQ size become dotted
    config overrides.  Each payload round-trips through
    :func:`repro.runtime.registry.decode_job`, so the sweep and the
    service construct byte-for-byte identical job specs.
    """
    payloads = []
    for workload in spec.workloads:
        for opt_level in spec.opt_levels:
            name = workload
            if opt_level is not None:
                if not workload.startswith("mini."):
                    raise ReproError(
                        f"opt-level axis needs mini-C workloads, "
                        f"got {workload!r}")
                name = f"{workload}@O{opt_level}"
            for notation in spec.configs:
                for frontend in spec.frontends:
                    for lvaq in spec.lvaq_sizes:
                        overrides: Dict[str, Any] = {}
                        if frontend is not None:
                            overrides["frontend.policy"] = frontend
                        if lvaq is not None:
                            overrides["lvaq_size"] = int(lvaq)
                        config: Any = notation
                        if overrides:
                            config = {"notation": notation,
                                      "overrides": overrides}
                        payloads.append({
                            "kind": "sim",
                            "workload": name,
                            "config": config,
                            "scale": spec.scale,
                            "seed": spec.seed,
                        })
    return payloads


def predicted_cost(payload: Dict[str, Any]) -> float:
    """Relative cost estimate of one design point (ordering only).

    Trace length dominates simulation time, scaled by a machine-width
    factor — wider port configurations retire the same stream through
    more bookkeeping per cycle.  This is a *sorting* heuristic: being
    wrong costs schedule quality, never correctness.
    """
    workload = payload["workload"].split("@")[0]
    length = 50_000.0
    if not workload.startswith("mini."):
        try:
            from repro.workloads.spec import get_spec

            length = float(get_spec(workload).default_length)
        except Exception:  # noqa: BLE001 - unknown spec: keep default
            pass
        length *= float(payload.get("scale", 1.0))
    config = payload["config"]
    notation = config if isinstance(config, str) else config["notation"]
    body = notation[:-4] if notation.endswith(":opt") else notation
    try:
        n, m = (int(part) for part in body.split("+"))
    except ValueError:
        n, m = 2, 0
    return length * (1.0 + 0.15 * (n + m))


class SweepManifest:
    """The resumable record of one sweep's planned and finished points."""

    def __init__(self, path: Optional[str], spec: SweepSpec):
        self.path = path
        self.spec = spec
        self.done: Dict[str, Dict[str, Any]] = {}
        if path and os.path.exists(path):
            with open(path, "r") as handle:
                recorded = json.load(handle)
            if recorded.get("spec_digest") != spec.digest:
                raise ReproError(
                    f"manifest {path!r} records a different sweep "
                    f"(digest {recorded.get('spec_digest', '?')[:12]} != "
                    f"{spec.digest[:12]}); refusing to merge — use a "
                    f"fresh manifest path")
            self.done = recorded.get("done", {})

    def record(self, key: str, summary: Dict[str, Any]) -> None:
        self.done[key] = summary

    def write(self, planned: List[str]) -> None:
        if not self.path:
            return
        body = {
            "version": MANIFEST_VERSION,
            "spec": self.spec.describe(),
            "spec_digest": self.spec.digest,
            "planned": planned,
            "done": self.done,
        }
        tmp = self.path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(body, handle, indent=1, sort_keys=True)
        os.replace(tmp, self.path)


class SweepReport:
    """What one driver invocation accomplished."""

    def __init__(self, planned: int, deduped: int, resumed: int,
                 completed: int, failed: int, skipped_budget: int,
                 elapsed: float, results: Dict[str, Dict[str, Any]]):
        self.planned = planned
        self.deduped = deduped
        self.resumed = resumed
        self.completed = completed
        self.failed = failed
        self.skipped_budget = skipped_budget
        self.elapsed = elapsed
        self.results = results

    @property
    def finished(self) -> bool:
        """True when every planned point is accounted for."""
        return self.skipped_budget == 0 and self.failed == 0


def run_sweep(spec: SweepSpec, jobs: int = 1,
              cache_dir: Optional[str] = None, no_cache: bool = False,
              timeout: Optional[float] = None,
              budget_points: Optional[int] = None,
              budget_seconds: Optional[float] = None,
              manifest_path: Optional[str] = None,
              service_url: Optional[str] = None,
              chunk: int = 8,
              progress=None) -> SweepReport:
    """Drive the sweep to completion or until a budget runs out.

    Local mode runs points through a :class:`RuntimeSession` engine;
    with *service_url* they are submitted to a running ``repro-cc
    serve`` instead (same payloads, same results — the service path is
    bit-identical by construction).  Points run cheapest-first in
    chunks of *chunk*, and budgets are checked between chunks so a
    timeout never abandons completed work.
    """
    started = time.monotonic()
    payloads = expand(spec)
    manifest = SweepManifest(manifest_path, spec)

    # Dedup pass 1: identical design points (axes can overlap).
    jobs_by_key: Dict[str, Any] = {}
    payload_by_key: Dict[str, Dict[str, Any]] = {}
    for payload in payloads:
        job = decode_job(payload)
        if job.key not in jobs_by_key:
            jobs_by_key[job.key] = job
            payload_by_key[job.key] = payload
    planned_keys = list(jobs_by_key)
    resumed = sum(1 for key in planned_keys if key in manifest.done)

    # Dedup pass 2: the result store already has it — record straight
    # from the store, charge no budget.
    from repro.runtime.store import runtime_store

    deduped = 0
    store = None if no_cache else runtime_store(cache_dir)
    todo: List[str] = []
    for key in planned_keys:
        if key in manifest.done:
            continue
        if store is not None:
            existing = store.lookup(jobs_by_key[key])
            if existing is not None:
                deduped += 1
                manifest.record(key, {
                    "workload": jobs_by_key[key].workload,
                    "label": jobs_by_key[key].label(),
                    "cached": True,
                    "cycles": existing.cycles,
                    "ipc": existing.ipc,
                })
                continue
        todo.append(key)
    if store is not None:
        store.flush()

    # Cheapest-first: a small budget buys the most design-space coverage.
    todo.sort(key=lambda key: (predicted_cost(payload_by_key[key]), key))

    completed = 0
    failed = 0
    skipped = 0
    budget_left = budget_points

    runner = _ServiceRunner(service_url) if service_url else _LocalRunner(
        jobs=jobs, cache_dir=cache_dir, no_cache=no_cache,
        timeout=timeout, progress=progress)
    try:
        position = 0
        while position < len(todo):
            if budget_seconds is not None and (
                    time.monotonic() - started) >= budget_seconds:
                skipped = len(todo) - position
                break
            take = min(chunk, len(todo) - position)
            if budget_left is not None:
                if budget_left <= 0:
                    skipped = len(todo) - position
                    break
                take = min(take, budget_left)
            batch_keys = todo[position:position + take]
            position += take
            if budget_left is not None:
                budget_left -= take
            outcomes = runner.run([(key, jobs_by_key[key],
                                    payload_by_key[key])
                                   for key in batch_keys])
            for key in batch_keys:
                outcome = outcomes.get(key)
                if outcome is None or not outcome.get("ok"):
                    failed += 1
                    continue
                completed += 1
                manifest.record(key, {
                    "workload": jobs_by_key[key].workload,
                    "label": jobs_by_key[key].label(),
                    "cached": outcome.get("cached", False),
                    "cycles": outcome.get("cycles"),
                    "ipc": outcome.get("ipc"),
                })
            manifest.write(planned_keys)
    finally:
        runner.close()
        manifest.write(planned_keys)

    return SweepReport(
        planned=len(planned_keys), deduped=deduped, resumed=resumed,
        completed=completed, failed=failed, skipped_budget=skipped,
        elapsed=time.monotonic() - started, results=dict(manifest.done))


class _LocalRunner:
    """Run sweep points through an in-process engine."""

    def __init__(self, jobs: int, cache_dir: Optional[str],
                 no_cache: bool, timeout: Optional[float], progress):
        from repro.runtime.engine import RuntimeSession

        self.session = RuntimeSession(
            jobs=jobs, cache_dir=cache_dir, no_cache=no_cache,
            timeout=timeout, progress=progress,
            keep_pool=jobs > 1)

    def run(self, batch) -> Dict[str, Dict[str, Any]]:
        report = self.session.prewarm([job for _key, job, _p in batch])
        outcomes = {}
        for key, outcome in report.outcomes.items():
            entry: Dict[str, Any] = {"ok": outcome.ok,
                                     "cached": outcome.status == "cached"}
            if outcome.result is not None:
                entry["cycles"] = outcome.result.cycles
                entry["ipc"] = outcome.result.ipc
            outcomes[key] = entry
        return outcomes

    def close(self) -> None:
        self.session.close()


class _ServiceRunner:
    """Run sweep points by submitting them to ``repro-cc serve``."""

    def __init__(self, url: str):
        from repro.runtime.service import ServiceClient

        self.client = ServiceClient(url)

    def run(self, batch) -> Dict[str, Dict[str, Any]]:
        reply = self.client.submit([payload for _k, _j, payload in batch])
        status = self.client.wait(reply["batch"])
        outcomes: Dict[str, Dict[str, Any]] = {}
        for event in self.client.stream(reply["batch"]):
            if event.get("event") != "job":
                continue
            key = event["key"]
            ok = event["status"] in ("ran", "cached")
            entry = {"ok": ok, "cached": event["status"] == "cached"}
            if ok:
                try:
                    body = self.client.result(key)["result"]
                    entry["cycles"] = body.get("cycles")
                    entry["ipc"] = body.get("ipc")
                except Exception:  # noqa: BLE001 - summary only
                    pass
            outcomes[key] = entry
        if status["state"] == "failed":
            raise ReproError(f"service batch failed: {status['error']}")
        return outcomes

    def close(self) -> None:
        pass


def format_report(spec: SweepSpec, report: SweepReport) -> str:
    """Human-readable sweep summary for the CLI."""
    lines = [
        f"sweep over {len(spec.workloads)} workloads x "
        f"{len(spec.configs)} configs x {len(spec.frontends)} frontends "
        f"x {len(spec.lvaq_sizes)} LVAQ sizes x "
        f"{len(spec.opt_levels)} opt levels "
        f"= {spec.points()} points ({report.planned} unique)",
        f"  resumed {report.resumed} from manifest, "
        f"{report.deduped} already in store",
        f"  completed {report.completed}, failed {report.failed}, "
        f"budget-skipped {report.skipped_budget}, "
        f"{report.elapsed:.1f}s",
    ]
    return "\n".join(lines)

"""Run manifest + live progress reporting for the job engine.

The manifest is the machine-readable record of one runtime batch: every
deduplicated job with its status and wall time, plus aggregate throughput
numbers (cache hit rate, worker utilization).  ``repro-experiments``
writes it to ``results/run_manifest.json`` after the prewarm phase.

The write is deterministic for a given batch: keys are sorted, job
entries are ordered by job key (never by completion order, which varies
with worker scheduling), and the manifest carries no wall-clock
timestamp — so a repeated warm run diffs only in the measured wall
times, and the file is safe to commit or compare across runs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, Optional

from repro.runtime.engine import EngineReport, JobOutcome
from repro.stats.report import format_duration

MANIFEST_VERSION = 2


class RunManifest:
    """A JSON-serialisable description of one engine run."""

    def __init__(self, report: EngineReport, salt: str,
                 scale: float, experiments: Optional[list] = None,
                 cache_stats: Optional[Dict[str, Any]] = None):
        self.report = report
        self.salt = salt
        self.scale = scale
        self.experiments = list(experiments) if experiments else []
        self.cache_stats = cache_stats

    def to_dict(self) -> Dict[str, Any]:
        report = self.report
        jobs = []
        for key, outcome in sorted(report.outcomes.items()):
            jobs.append({
                "key": key,
                "workload": outcome.job.workload,
                "config": outcome.job.config.notation(),
                "scale": outcome.job.scale,
                "seed": outcome.job.seed,
                "status": outcome.status,
                "worker": outcome.worker,
                "attempts": outcome.attempts,
                "wall_seconds": round(outcome.wall, 4),
                "error": outcome.error,
            })
        return {
            "version": MANIFEST_VERSION,
            "experiments": self.experiments,
            "scale": self.scale,
            "code_salt": self.salt,
            "workers": report.workers,
            "jobs_total": len(report.outcomes),
            "jobs_deduplicated_away": report.duplicates,
            "jobs_ran": report.ran,
            "jobs_cached": report.cached,
            "jobs_failed": len(report.failed),
            "cache_hit_rate": round(report.cache_hit_rate, 4),
            "elapsed_seconds": round(report.elapsed, 3),
            "busy_worker_seconds": round(report.busy, 3),
            "worker_utilization": round(report.utilization, 4),
            "cache": self.cache_stats,
            "jobs": jobs,
        }

    def write(self, path: str) -> None:
        """Write the manifest atomically."""
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def summary(self) -> str:
        """One stderr-friendly line for the end of a run."""
        report = self.report
        return (f"[runtime] {len(report.outcomes)} jobs "
                f"({report.duplicates} deduped away): "
                f"{report.cached} cached, {report.ran} ran, "
                f"{len(report.failed)} failed in "
                f"{format_duration(report.elapsed)} "
                f"(hit rate {report.cache_hit_rate:.0%}, "
                f"utilization {report.utilization:.0%})")


class ProgressPrinter:
    """Throttled live progress lines on stderr.

    Failures and timeouts always print; successes print at most every
    *interval* seconds so big sweeps don't drown the terminal.
    """

    def __init__(self, interval: float = 0.5, stream=None):
        self.interval = interval
        self.stream = stream if stream is not None else sys.stderr
        self._last = 0.0
        self._cached = 0

    def __call__(self, event: str, outcome: JobOutcome,
                 done: int, total: int) -> None:
        if event == "cached":
            self._cached += 1
        now = time.monotonic()
        urgent = event in ("failed", "timeout") or done == total
        if not urgent and now - self._last < self.interval:
            return
        self._last = now
        line = (f"[runtime] {done}/{total} done "
                f"({self._cached} cached) {outcome.job.label()}")
        if outcome.status == "ran":
            line += f" {format_duration(outcome.wall)}"
        elif not outcome.ok:
            line += f" {outcome.status.upper()}: {outcome.error}"
        print(line, file=self.stream)

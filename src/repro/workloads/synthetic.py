"""Calibrated synthetic trace generation.

Produces a dynamic instruction stream whose statistics match one SPEC95
program as measured in the paper (see :mod:`repro.workloads.spec`).  The
generator runs an abstract program: a call-stack random walk (calls push
frames, emit register-save bursts; returns emit matching restores), body
instructions chosen by **deficit steering** (each category is drawn with
probability proportional to how far it lags its target fraction, so the
long-run mix converges to the calibration even though calls inject bursty
local traffic), and address streams with per-program working sets, reuse
distances, and local/non-local interleaving.

Why this preserves the paper's behaviour: every effect the paper measures
— port pressure, LVC hit rate, forwarding opportunity, combining benefit,
L1 conflict between stack and data — is a function of the *stream*
(instruction mix, dependence structure, address patterns), not of program
semantics.  The generator reproduces the stream.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import WorkloadError
from repro.isa.opcodes import FuClass
from repro.isa.program import DATA_BASE, STACK_BASE
from repro.utils import make_rng, stable_hash
from repro.vm.trace import DynInst, NO_REG, Trace
from repro.workloads.spec import WorkloadSpec

_IALU = int(FuClass.IALU)
_IMULT = int(FuClass.IMULT)
_IDIV = int(FuClass.IDIV)
_FADD = int(FuClass.FADD)
_FMUL = int(FuClass.FMUL)
_LOAD = int(FuClass.LOAD)
_STORE = int(FuClass.STORE)
_BRANCH = int(FuClass.BRANCH)

_SP_REG = 29
_INT_REGS = tuple(range(8, 26))  # $t0..$t9, $s0..$s7
_FP_REGS = tuple(range(36, 52))

#: Target fraction of branch instructions (typical integer code).
_BRANCH_FRAC = 0.12

#: Number of static "ambiguous" memory sites (pointer accesses whose
#: region the compiler could not prove — classified by the predictor).
_AMBIG_SITES = 32


class _Frame:
    """One activation record of the abstract program."""

    __slots__ = ("frame_id", "words", "sp", "budget", "saves",
                 "store_times")

    def __init__(self, frame_id: int, words: int, sp: int, budget: int,
                 saves: Tuple[int, ...]):
        self.frame_id = frame_id
        self.words = words
        self.sp = sp
        self.budget = budget
        self.saves = saves  # byte offsets of the save/restore area
        self.store_times: dict = {}  # byte offset -> last store index


class SyntheticGenerator:
    """Generates one calibrated trace; use :func:`generate_trace`."""

    def __init__(self, spec: WorkloadSpec, length: int, seed: int = 1):
        if length <= 0:
            raise WorkloadError("trace length must be positive")
        self.spec = spec
        self.length = length
        self.rng = make_rng(stable_hash(spec.name, seed))
        self.trace = Trace(spec.name)
        self._emitted = 0
        self._counts = {
            "load_local": 0, "load_global": 0,
            "store_local": 0, "store_global": 0,
            "ialu": 0, "falu": 0, "branch": 0,
        }
        self._int_pool: List[int] = [8, 9, 10]
        self._fp_pool: List[int] = [36, 37]
        self._int_rot = 0
        self._fp_rot = 0
        self._next_frame_id = 1
        self._stack: List[_Frame] = [
            _Frame(0, 8, STACK_BASE - 32, 1 << 60, ())
        ]
        self._sweep = 0
        self._ambig_bias = [self.rng.random() < 0.5
                            for _ in range(_AMBIG_SITES)]
        # A scheduled spill-reload: (frame, byte offset, not-before index).
        self._pending_reload = None
        # Interleaving phases for FP programs: a period in which only a
        # leading fraction admits local traffic.
        self._phase_period = 2000
        self._phase_pos = self.rng.randrange(self._phase_period)
        # Dependence density scales how often compute ops read recently
        # produced values (dep_density > 1 means tighter chains, lower
        # achievable ILP).
        self._recent1 = min(0.85, 0.32 * spec.dep_density)
        self._recent2 = min(0.95, self._recent1 + 0.18 * spec.dep_density)

    # -- register dependence modelling ------------------------------------

    def _dst_int(self) -> int:
        self._int_rot = (self._int_rot + 1) % len(_INT_REGS)
        reg = _INT_REGS[self._int_rot]
        pool = self._int_pool
        pool.append(reg)
        if len(pool) > 12:
            pool.pop(0)
        return reg

    def _dst_fp(self) -> int:
        self._fp_rot = (self._fp_rot + 1) % len(_FP_REGS)
        reg = _FP_REGS[self._fp_rot]
        pool = self._fp_pool
        pool.append(reg)
        if len(pool) > 12:
            pool.pop(0)
        return reg

    def _srcs_int(self, n: int) -> Tuple[int, ...]:
        rng = self.rng
        pool = self._int_pool
        return tuple(pool[rng.randrange(len(pool))] for _ in range(n))

    def _srcs_fp(self, n: int) -> Tuple[int, ...]:
        rng = self.rng
        pool = self._fp_pool
        return tuple(pool[rng.randrange(len(pool))] for _ in range(n))

    def _alu_srcs_int(self) -> Tuple[int, ...]:
        """Source operands for compute ops.

        Real wide-issue code has abundant independent work (that is the
        premise of a 16-issue machine): many operands are loop invariants,
        induction variables, or constants that are long since computed.
        The per-program ``dep_density`` scales how often ops read
        recently produced values; at 1.0, 32% read one recent value, 18%
        read two, and the rest read only old (always-ready) registers.
        """
        roll = self.rng.random()
        if roll < self._recent1:
            return self._srcs_int(1)
        if roll < self._recent2:
            return self._srcs_int(2)
        return (4,)  # an argument register written long ago: always ready

    def _alu_srcs_fp(self) -> Tuple[int, ...]:
        roll = self.rng.random()
        if roll < self._recent1:
            return self._srcs_fp(1)
        if roll < self._recent2:
            return self._srcs_fp(2)
        return (44,)

    def _addr_srcs(self) -> Tuple[int, ...]:
        """Address operands: usually induction variables (ready early)."""
        if self.rng.random() < 0.9:
            return (5,)  # long-ready base register
        return self._srcs_int(1)

    # -- emission ----------------------------------------------------------

    def _emit(self, inst: DynInst) -> None:
        self.trace.append(inst)
        self._emitted += 1
        self._phase_pos += 1
        if self._phase_pos >= self._phase_period:
            self._phase_pos = 0

    def _local_phase(self) -> bool:
        """Whether local traffic is currently admitted (FP interleaving)."""
        if self.spec.interleave >= 1.0:
            return True
        return self._phase_pos < self._phase_period * self.spec.interleave

    # -- call/return ---------------------------------------------------------

    def _draw_frame_words(self) -> int:
        spec = self.spec
        rng = self.rng
        if spec.frame_tail_prob and rng.random() < spec.frame_tail_prob:
            return max(2, int(rng.uniform(0.5, 1.0) * spec.frame_tail_words))
        # Geometric-ish around the mean, always at least one word.
        mean = spec.frame_mean
        value = 1 + int(rng.expovariate(1.0 / max(mean - 1, 0.5)))
        return min(value, 280)

    def _do_call(self) -> None:
        spec = self.spec
        rng = self.rng
        parent = self._stack[-1]
        words = self._draw_frame_words()
        sp = parent.sp - 4 * words
        saves_count = min(words, 2 + words // 3, 9)
        saves = tuple(4 * (words - 1 - j) for j in range(saves_count))
        # Mean body length ~ 1/call_rate gives a critical call/return
        # branching walk: depth fluctuates and occasionally reaches
        # max_depth, as real call graphs do.  The floor ties body length
        # to the program's reuse behaviour: long-reuse programs (e.g.
        # 124.m88ksim) have long bodies, so their register restores find
        # the matching saves long gone from the LVAQ.
        floor = max(3, spec.reuse_distance // 3)
        budget = max(floor, int(rng.expovariate(spec.call_rate)))
        frame = _Frame(self._next_frame_id, words, sp, budget, saves)
        self._next_frame_id += 1
        # the call itself
        self._emit(DynInst(_BRANCH, srcs=self._srcs_int(1),
                           pc=rng.randrange(1 << 16)))
        # stack-pointer adjustment (real prologue ALU op)
        self._emit(DynInst(_IALU, dst=_SP_REG, srcs=(_SP_REG,)))
        self._stack.append(frame)
        stats = self.trace.stats
        stats.calls += 1
        stats.frame_sizes.add(words)
        if len(self._stack) > stats.max_call_depth:
            stats.max_call_depth = len(self._stack)
        # register save burst: contiguous local stores
        for offset in saves:
            self._emit_local_store(frame, offset, save_restore=True)

    def _do_return(self) -> None:
        frame = self._stack.pop()
        # restore burst: loads matching the saves
        for offset in frame.saves:
            self._emit_local_load(frame, offset, save_restore=True)
        self._emit(DynInst(_IALU, dst=_SP_REG, srcs=(_SP_REG,)))
        self._emit(DynInst(_BRANCH, srcs=(31,)))

    # -- memory reference emission -------------------------------------------

    def _classify(self, pc_seed: int) -> Tuple[Optional[bool], bool, int]:
        """Pick (hint, sp_based, pc) for a local reference."""
        rng = self.rng
        spec = self.spec
        if rng.random() < spec.ambig_frac:
            site = rng.randrange(_AMBIG_SITES)
            return None, False, site  # ambiguous pointer site
        if rng.random() < spec.nonsp_frac:
            return True, False, pc_seed  # local but not $sp-indexed
        return True, True, pc_seed

    def _emit_local_store(self, frame: _Frame, offset: int,
                          save_restore: bool = False) -> None:
        hint, sp_based, pc = self._classify(self.rng.randrange(1 << 16))
        addr = frame.sp + offset
        if save_restore:
            # Register saves read callee-saved values produced long ago:
            # the whole burst is ready the moment it dispatches, so it
            # hits the LVC ports all at once (the paper's bursty stack
            # traffic around calls).
            data = 16 + (offset >> 2) % 8
        else:
            data = self._srcs_int(1)[0]
        self._emit(DynInst(
            _STORE, srcs=(_SP_REG, data),
            addr=addr, size=4, local_hint=hint, is_local=True,
            sp_based=sp_based, frame_id=frame.frame_id,
            offset=offset, pc=pc,
        ))
        frame.store_times[offset] = self._emitted

    def _emit_local_load(self, frame: _Frame, offset: int,
                         save_restore: bool = False) -> None:
        hint, sp_based, pc = self._classify(self.rng.randrange(1 << 16))
        addr = frame.sp + offset
        if save_restore:
            # Restores refill callee-saved registers; nothing consumes the
            # value immediately, so keep it out of the dependence pool.
            dst = 16 + (offset >> 2) % 8
        else:
            dst = self._dst_int()
        self._emit(DynInst(
            _LOAD, dst=dst, srcs=(_SP_REG,),
            addr=addr, size=4, local_hint=hint, is_local=True,
            sp_based=sp_based, frame_id=frame.frame_id,
            offset=offset, pc=pc,
        ))

    def _body_local_store(self) -> None:
        frame = self._stack[-1]
        rng = self.rng
        offset = 4 * rng.randrange(frame.words)
        self._emit_local_store(frame, offset)
        # Spill-reload pairing: programs with short calibrated reuse
        # distances (129.compress at ~15) re-read most stored slots while
        # the store still sits in the LVAQ.
        rd = self.spec.reuse_distance
        if rd <= 30:
            pair_prob = 0.8
        elif rd <= 90:
            pair_prob = 0.45
        else:
            pair_prob = 0.05
        if self._pending_reload is None and rng.random() < pair_prob:
            delay = max(2, int(rng.expovariate(1.0 / rd)))
            self._pending_reload = (frame, offset, self._emitted + delay)

    def _body_local_load(self) -> None:
        frame = self._stack[-1]
        rng = self.rng
        spec = self.spec
        # Some programs' local loads feed dependent work (spill reloads of
        # live values); others' do not — the paper notes 130.li's local
        # accesses sit off the critical path (Section 4.2.3).
        critical = rng.random() < spec.local_criticality
        offset = None
        if frame.store_times and rng.random() < 0.8:
            # Re-read a stored slot, preferring one whose last store is
            # about ``reuse_distance`` instructions old.  Short calibrated
            # distances make the value forwardable from the LVAQ; long
            # ones (e.g. 124.m88ksim) mean the store left the queue ages
            # ago, so the load must hit the LVC instead.
            now = self._emitted
            target = spec.reuse_distance
            offset = min(
                frame.store_times,
                key=lambda off: abs((now - frame.store_times[off]) - target),
            )
        if offset is None:
            offset = 4 * rng.randrange(frame.words)
        self._emit_local_load(frame, offset, save_restore=not critical)

    def _global_addr(self) -> int:
        """Global/heap reference address.

        Three regimes mirror real data streams: sequential sweeps with
        temporal reuse (each word touched a few times before the pointer
        advances), a hot random set (fits in L1), and cold random traffic
        over the full working set (produces the L1/L2 miss traffic and the
        stack/data conflicts of Section 4.2.1).
        """
        rng = self.rng
        spec = self.spec
        seq_frac = 0.8 if spec.is_fp else 0.5
        if rng.random() < seq_frac:
            advance = 0.8 if spec.is_fp else 0.4
            if rng.random() < advance:
                self._sweep = (self._sweep + 1) % spec.ws_words
            return DATA_BASE + 4 * self._sweep
        hot_words = min(spec.ws_words, 2500)
        if rng.random() < 0.85:
            return DATA_BASE + 4 * rng.randrange(hot_words)
        return DATA_BASE + 4 * rng.randrange(spec.ws_words)

    def _body_global_load(self) -> None:
        use_fp = self.spec.is_fp and self.rng.random() < 0.7
        dst = self._dst_fp() if use_fp else self._dst_int()
        self._emit(DynInst(
            _LOAD, dst=dst, srcs=self._addr_srcs(),
            addr=self._global_addr(), size=4, local_hint=False,
            is_local=False, pc=self.rng.randrange(1 << 16),
        ))

    def _body_global_store(self) -> None:
        use_fp = self.spec.is_fp and self.rng.random() < 0.7
        data = self._srcs_fp(1)[0] if use_fp else self._srcs_int(1)[0]
        self._emit(DynInst(
            _STORE, srcs=(self._addr_srcs()[0], data),
            addr=self._global_addr(), size=4, local_hint=False,
            is_local=False, pc=self.rng.randrange(1 << 16),
        ))

    # -- compute/branch emission -----------------------------------------------

    def _body_ialu(self) -> None:
        rng = self.rng
        spec = self.spec
        roll = rng.random()
        if roll < spec.div_frac:
            fu = _IDIV
        elif roll < spec.div_frac + spec.mul_frac:
            fu = _IMULT
        else:
            fu = _IALU
        self._emit(DynInst(fu, dst=self._dst_int(), srcs=self._alu_srcs_int()))

    def _body_falu(self) -> None:
        fu = _FMUL if self.rng.random() < 0.4 else _FADD
        self._emit(DynInst(fu, dst=self._dst_fp(), srcs=self._alu_srcs_fp()))

    def _body_branch(self) -> None:
        # Most branch conditions test values computed a while ago (loop
        # bounds, flags); with an oracle front end they never stall fetch.
        if self.rng.random() < 0.7:
            srcs: Tuple[int, ...] = (6,)
        else:
            srcs = self._srcs_int(1)
        self._emit(DynInst(_BRANCH, srcs=srcs,
                           pc=self.rng.randrange(1 << 16)))

    # -- main loop ----------------------------------------------------------

    def generate(self) -> Trace:
        """Produce the trace (single use per generator instance)."""
        spec = self.spec
        rng = self.rng
        length = self.length
        counts = self._counts

        alu_frac = 1.0 - spec.mem_frac - _BRANCH_FRAC
        targets = {
            "load_local": spec.load_frac * spec.local_load_frac,
            "load_global": spec.load_frac * (1 - spec.local_load_frac),
            "store_local": spec.store_frac * spec.local_store_frac,
            "store_global": spec.store_frac * (1 - spec.local_store_frac),
            "ialu": alu_frac * (1 - spec.fp_frac),
            "falu": alu_frac * spec.fp_frac,
            "branch": _BRANCH_FRAC,
        }
        emitters = {
            "load_local": self._body_local_load,
            "load_global": self._body_global_load,
            "store_local": self._body_local_store,
            "store_global": self._body_global_store,
            "ialu": self._body_ialu,
            "falu": self._body_falu,
            "branch": self._body_branch,
        }
        keys = list(targets)

        while self._emitted < length:
            local_ok = self._local_phase()
            frame = self._stack[-1]
            pending = self._pending_reload
            if (pending is not None and local_ok
                    and self._emitted >= pending[2]):
                self._pending_reload = None
                if pending[0] is frame:  # frame still live?
                    counts["load_local"] += 1
                    self._emit_local_load(frame, pending[1])
                    continue
            if (local_ok and len(self._stack) < spec.max_depth
                    and rng.random() < spec.call_rate):
                before = self._counts_mem_snapshot()
                self._do_call()
                self._account_burst(before)
                continue
            if frame.budget <= 0 and len(self._stack) > 1:
                before = self._counts_mem_snapshot()
                self._do_return()
                self._account_burst(before)
                continue
            frame.budget -= 1
            total = self._emitted + 1
            weights = []
            for key in keys:
                if targets[key] <= 0.0:
                    weights.append(0.0)  # e.g. no FP in integer programs
                    continue
                if not local_ok and key in ("load_local", "store_local"):
                    weights.append(0.0)
                    continue
                deficit = targets[key] * total - counts[key]
                weights.append(max(deficit, 0.0) + 0.001)
            key = rng.choices(keys, weights=weights, k=1)[0]
            counts[key] += 1
            emitters[key]()

        return self.trace

    # Save/restore bursts bypass the steering loop, so fold their memory
    # traffic back into the category counters to keep the mix on target.
    def _counts_mem_snapshot(self) -> Tuple[int, int]:
        stats = self.trace.stats
        return stats.local_loads, stats.local_stores

    def _account_burst(self, before: Tuple[int, int]) -> None:
        stats = self.trace.stats
        self._counts["load_local"] += stats.local_loads - before[0]
        self._counts["store_local"] += stats.local_stores - before[1]


def generate_trace(spec: WorkloadSpec, length: Optional[int] = None,
                   seed: int = 1) -> Trace:
    """Generate a calibrated synthetic trace for *spec*."""
    if length is None:
        length = spec.default_length
    return SyntheticGenerator(spec, length, seed).generate()

"""Mini-C benchmark programs.

Real programs, compiled with :mod:`repro.lang` and executed on
:mod:`repro.vm`, producing genuinely execution-driven traces.  Each mirrors
the flavour of one class of SPEC95 workloads: recursion-heavy list code,
LZW-style compression, stencil floating point, hash-table databases, game
search, and string processing.

Every program prints a checksum so tests can verify end-to-end correctness
of the whole toolchain (compiler -> VM -> trace).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import WorkloadError

_QSORT = """
// mini.qsort — recursion + spill pressure (li/go flavour)
int data[512];

int rand_state;

int next_rand() {
    rand_state = rand_state * 1103515 + 12345;
    int v = rand_state >> 8;
    if (v < 0) v = 0 - v;
    return v;
}

void swap(int *a, int i, int j) {
    int t = a[i];
    a[i] = a[j];
    a[j] = t;
}

int partition(int *a, int lo, int hi) {
    int pivot = a[hi];
    int i = lo - 1;
    int j;
    for (j = lo; j < hi; j++) {
        if (a[j] <= pivot) {
            i++;
            swap(a, i, j);
        }
    }
    swap(a, i + 1, hi);
    return i + 1;
}

void qsort_range(int *a, int lo, int hi) {
    if (lo < hi) {
        int p = partition(a, lo, hi);
        qsort_range(a, lo, p - 1);
        qsort_range(a, p + 1, hi);
    }
}

int main() {
    int n = 512;
    int i;
    rand_state = 42;
    int round;
    int check = 0;
    for (round = 0; round < 2; round++) {
        for (i = 0; i < n; i++) {
            data[i] = next_rand() % 10000;
        }
        qsort_range(data, 0, n - 1);
        check += data[0] + data[n / 2] + data[n - 1];
        for (i = 1; i < n; i++) {
            if (data[i] < data[i - 1]) {
                print(0 - 1);
                return 1;
            }
        }
    }
    print(check);
    printc('\\n');
    return 0;
}
"""

_COMPRESS = """
// mini.compress — LZW-style hashing over a synthetic stream
// (129.compress flavour: few locals, short reuse distances)
int htab[4096];
int codes[4096];
int input[2048];

int hash_pair(int prefix, int c) {
    return ((prefix << 4) ^ (c * 97)) & 4095;
}

int main() {
    int i;
    int state = 7;
    for (i = 0; i < 2048; i++) {
        state = state * 75 + 74;
        input[i] = (state >> 5) & 63;
        if (input[i] < 0) input[i] = 0 - input[i];
    }
    for (i = 0; i < 4096; i++) {
        htab[i] = 0 - 1;
    }
    int next_code = 64;
    int prefix = input[0];
    int emitted = 0;
    int check = 0;
    for (i = 1; i < 2048; i++) {
        int c = input[i];
        int h = hash_pair(prefix, c);
        int probes = 0;
        int found = 0 - 1;
        while (probes < 16) {
            if (htab[h] == (prefix << 8) + c) {
                found = codes[h];
                break;
            }
            if (htab[h] == 0 - 1) {
                break;
            }
            h = (h + 1) & 4095;
            probes++;
        }
        if (found >= 0) {
            prefix = found;
        } else {
            emitted++;
            check = (check + prefix * 31 + c) & 1048575;
            if (next_code < 4096 && htab[h] == 0 - 1) {
                htab[h] = (prefix << 8) + c;
                codes[h] = next_code;
                next_code++;
            }
            prefix = c;
        }
    }
    print(check);
    printc(' ');
    print(emitted);
    printc('\\n');
    return 0;
}
"""

_STENCIL = """
// mini.stencil — 2D relaxation over float grids (tomcatv/swim flavour)
float grid[1600];
float next[1600];

int main() {
    int width = 32;
    int i;
    int j;
    for (i = 0; i < width; i++) {
        for (j = 0; j < width; j++) {
            grid[i * width + j] = (i * 7 + j * 3) % 11 * 0.5;
        }
    }
    int sweep;
    for (sweep = 0; sweep < 4; sweep++) {
        for (i = 1; i < width - 1; i++) {
            for (j = 1; j < width - 1; j++) {
                int at = i * width + j;
                next[at] = (grid[at - 1] + grid[at + 1]
                            + grid[at - width] + grid[at + width]) * 0.25;
            }
        }
        for (i = 1; i < width - 1; i++) {
            for (j = 1; j < width - 1; j++) {
                int at = i * width + j;
                grid[at] = next[at];
            }
        }
    }
    float total = 0.0;
    for (i = 0; i < width * width; i++) {
        total = total + grid[i];
    }
    int scaled = total * 1000.0;
    print(scaled);
    printc('\\n');
    return 0;
}
"""

_HASHDB = """
// mini.hashdb — insert/lookup/delete over an open-addressed table
// (147.vortex flavour: call-heavy, lots of save/restore traffic)
int keys[2048];
int vals[2048];
int used[2048];

int db_hash(int key) {
    int h = key * 2654435;
    if (h < 0) h = 0 - h;
    return h & 2047;
}

int db_insert(int key, int value) {
    int h = db_hash(key);
    int probes = 0;
    while (probes < 2048) {
        if (used[h] == 0 || keys[h] == key) {
            keys[h] = key;
            vals[h] = value;
            used[h] = 1;
            return 1;
        }
        h = (h + 1) & 2047;
        probes++;
    }
    return 0;
}

int db_lookup(int key) {
    int h = db_hash(key);
    int probes = 0;
    while (probes < 2048) {
        if (used[h] == 0) {
            return 0 - 1;
        }
        if (keys[h] == key) {
            return vals[h];
        }
        h = (h + 1) & 2047;
        probes++;
    }
    return 0 - 1;
}

int transact(int seed, int rounds) {
    int state = seed;
    int acc = 0;
    int i;
    for (i = 0; i < rounds; i++) {
        state = state * 1103515 + 12345;
        int key = (state >> 6) & 1023;
        if ((state & 3) == 0) {
            db_insert(key, key * 3 + 1);
        } else {
            int v = db_lookup(key);
            if (v >= 0) {
                acc = (acc + v) & 1048575;
            }
        }
    }
    return acc;
}

int main() {
    int check = 0;
    int r;
    for (r = 0; r < 3; r++) {
        check = (check + transact(r + 17, 800)) & 1048575;
    }
    print(check);
    printc('\\n');
    return 0;
}
"""

_TREESEARCH = """
// mini.treesearch — alpha-beta style game-tree walk with deep recursion
// (099.go flavour)
int nstate;

int tnext() {
    nstate = nstate * 1103515 + 12345;
    int v = nstate >> 7;
    if (v < 0) v = 0 - v;
    return v;
}

int evaluate(int position) {
    int score = (position * 37) % 200 - 100;
    int i;
    int acc = score;
    for (i = 0; i < 4; i++) {
        acc += (position >> i) & 15;
    }
    return acc;
}

int search(int position, int depth, int alpha, int beta) {
    if (depth == 0) {
        return evaluate(position);
    }
    int best = 0 - 100000;
    int move;
    for (move = 0; move < 4; move++) {
        int child = position * 5 + move * 3 + 1;
        int score = 0 - search(child, depth - 1, 0 - beta, 0 - alpha);
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;
    }
    return best;
}

int main() {
    nstate = 2024;
    int total = 0;
    int game;
    for (game = 0; game < 6; game++) {
        int root = tnext() % 1000;
        total += search(root, 5, 0 - 100000, 100000);
    }
    print(total);
    printc('\\n');
    return 0;
}
"""

_WORDCOUNT = """
// mini.wordcount — byte-stream scanning + counting (perl/gcc flavour)
int text[4096];
int counts[128];

int classify(int c) {
    if (c >= 'a' && c <= 'z') return 1;
    if (c >= '0' && c <= '9') return 2;
    if (c == ' ' || c == '\\n') return 0;
    return 3;
}

int main() {
    int state = 99;
    int i;
    for (i = 0; i < 4096; i++) {
        state = state * 75 + 74;
        int r = (state >> 4) & 63;
        if (r < 0) r = 0 - r;
        if (r < 40) {
            text[i] = 'a' + r % 26;
        } else if (r < 50) {
            text[i] = '0' + r % 10;
        } else {
            text[i] = ' ';
        }
    }
    int words = 0;
    int in_word = 0;
    for (i = 0; i < 4096; i++) {
        int kind = classify(text[i]);
        counts[text[i] & 127]++;
        if (kind == 1 || kind == 2) {
            if (!in_word) {
                words++;
                in_word = 1;
            }
        } else {
            in_word = 0;
        }
    }
    int check = words;
    for (i = 0; i < 128; i++) {
        check = (check + counts[i] * i) & 1048575;
    }
    print(check);
    printc('\\n');
    return 0;
}
"""


_LINKEDLIST = """
// mini.linkedlist — heap-allocated list building and pointer chasing
// (130.li flavour: heap traffic through sbrk + recursion-free walks)
int main() {
    // node layout: [value, next] — two words per node
    int *head = 0;
    int count = 96;
    int i;
    for (i = 0; i < count; i++) {
        int *node = sbrk(8);
        node[0] = i * i % 97;
        node[1] = head;          // next pointer (stored as int address)
        head = node;
    }
    int walks = 40;
    int check = 0;
    int w;
    for (w = 0; w < walks; w++) {
        int *p = head;
        while (p != 0) {
            check = (check + p[0] + w) & 1048575;
            p = p[1];
        }
    }
    print(check);
    printc('\\n');
    return 0;
}
"""

_MATMUL = """
// mini.matmul — blocked float matrix multiply (mgrid/su2cor flavour)
float a[576];
float b[576];
float c[576];

int main() {
    int n = 24;
    int i;
    int j;
    int k;
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            a[i * n + j] = (i + j) % 7 * 0.25;
            b[i * n + j] = (i * 3 + j) % 5 * 0.5;
        }
    }
    for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
            float sum = 0.0;
            for (k = 0; k < n; k++) {
                sum = sum + a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = sum;
        }
    }
    float trace = 0.0;
    for (i = 0; i < n; i++) {
        trace = trace + c[i * n + i];
    }
    int scaled = trace * 100.0;
    print(scaled);
    printc('\\n');
    return 0;
}
"""

#: name -> (source, expected stdout prefix or None)
MINIC_PROGRAMS: Dict[str, Tuple[str, None]] = {
    "mini.qsort": (_QSORT, None),
    "mini.compress": (_COMPRESS, None),
    "mini.stencil": (_STENCIL, None),
    "mini.hashdb": (_HASHDB, None),
    "mini.treesearch": (_TREESEARCH, None),
    "mini.wordcount": (_WORDCOUNT, None),
    "mini.linkedlist": (_LINKEDLIST, None),
    "mini.matmul": (_MATMUL, None),
}


def minic_source(name: str) -> str:
    """Source text of a mini-C benchmark program."""
    try:
        return MINIC_PROGRAMS[name][0]
    except KeyError:
        raise WorkloadError(
            f"unknown mini-C program {name!r}; "
            f"known: {', '.join(sorted(MINIC_PROGRAMS))}"
        ) from None

"""The benchmark registry (paper Table 2) and per-program calibration.

Each :class:`WorkloadSpec` captures the stream statistics the paper
measured for one SPEC95 program — memory instruction mix (Figure 2), local
fractions (Figure 2), frame-size behaviour (Figure 3), call depth,
store→load reuse distance (Section 4.2.3), floating-point content, and
local/non-local interleaving (Section 4.3).  The synthetic generator
reproduces these statistics; the paper's results are functions of exactly
these statistics, not of SPEC program semantics.

Instruction counts are the paper's (Table 2) divided by ``TRACE_SCALE_DIV``
so a pure-Python cycle simulator can sweep hundreds of configurations.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import WorkloadError

#: Paper instruction counts are divided by this to get default trace lengths.
TRACE_SCALE_DIV = 4000


class WorkloadSpec:
    """Calibration parameters for one benchmark program."""

    def __init__(
        self,
        name: str,
        paper_minst: int,
        load_frac: float,
        store_frac: float,
        local_load_frac: float,
        local_store_frac: float,
        frame_mean: float,
        frame_tail_prob: float,
        frame_tail_words: int,
        max_depth: int,
        call_rate: float,
        reuse_distance: int,
        ws_words: int,
        fp_frac: float = 0.0,
        interleave: float = 1.0,
        mul_frac: float = 0.02,
        div_frac: float = 0.002,
        ambig_frac: float = 0.005,
        nonsp_frac: float = 0.04,
        local_criticality: float = 0.7,
        dep_density: float = 1.0,
        is_fp: bool = False,
        description: str = "",
    ):
        self.name = name
        self.paper_minst = paper_minst
        self.load_frac = load_frac
        self.store_frac = store_frac
        self.local_load_frac = local_load_frac
        self.local_store_frac = local_store_frac
        self.frame_mean = frame_mean
        self.frame_tail_prob = frame_tail_prob
        self.frame_tail_words = frame_tail_words
        self.max_depth = max_depth
        self.call_rate = call_rate
        self.reuse_distance = reuse_distance
        self.ws_words = ws_words
        self.fp_frac = fp_frac
        self.interleave = interleave
        self.mul_frac = mul_frac
        self.div_frac = div_frac
        self.ambig_frac = ambig_frac
        self.nonsp_frac = nonsp_frac
        self.local_criticality = local_criticality
        self.dep_density = dep_density
        self.is_fp = is_fp
        self.description = description

    @property
    def default_length(self) -> int:
        """Default dynamic instruction count for generated traces."""
        return max(20_000, self.paper_minst * 1_000_000 // TRACE_SCALE_DIV)

    @property
    def mem_frac(self) -> float:
        """Loads + stores as a fraction of all instructions."""
        return self.load_frac + self.store_frac

    @property
    def local_mem_frac(self) -> float:
        """Expected fraction of memory references that are local."""
        mem = self.mem_frac
        if not mem:
            return 0.0
        return (self.load_frac * self.local_load_frac
                + self.store_frac * self.local_store_frac) / mem

    def __repr__(self) -> str:
        return f"WorkloadSpec({self.name!r})"


_SPECS: Tuple[WorkloadSpec, ...] = (
    WorkloadSpec(
        "099.go", 541, 0.21, 0.08, 0.30, 0.45,
        frame_mean=4.0, frame_tail_prob=0.03, frame_tail_words=48,
        max_depth=30, call_rate=0.012, reuse_distance=60, ws_words=3_000,
        description="game tree search; branchy integer code",
    ),
    WorkloadSpec(
        "124.m88ksim", 250, 0.20, 0.09, 0.25, 0.50,
        frame_mean=6.0, frame_tail_prob=0.01, frame_tail_words=30,
        max_depth=8, call_rate=0.004, reuse_distance=600, ws_words=2_500,
        description="CPU simulator; long store->reload distances "
                    "(fast forwarding finds almost nothing)",
    ),
    WorkloadSpec(
        "126.gcc", 220, 0.24, 0.11, 0.35, 0.55,
        frame_mean=10.0, frame_tail_prob=0.10, frame_tail_words=300,
        max_depth=16, call_rate=0.014, reuse_distance=80, ws_words=6_000,
        description="compiler; large frames and deep calls "
                    "(highest LVC miss rate)",
    ),
    WorkloadSpec(
        "129.compress", 293, 0.18, 0.06, 0.10, 0.14,
        frame_mean=2.0, frame_tail_prob=0.0, frame_tail_words=0,
        max_depth=3, call_rate=0.004, reuse_distance=15, ws_words=14_000,
        local_criticality=0.95,
        description="LZW compression; few local refs but very short reuse "
                    "distances (~80% of local loads forward)",
    ),
    WorkloadSpec(
        "130.li", 434, 0.29, 0.15, 0.45, 0.60,
        frame_mean=3.0, frame_tail_prob=0.0, frame_tail_words=0,
        max_depth=30, call_rate=0.030, reuse_distance=120, ws_words=1_800,
        local_criticality=0.1, dep_density=1.8,
        description="lisp interpreter (ctak); deep recursion, bandwidth-"
                    "hungry; local accesses off the critical path (§4.2.3)",
    ),
    WorkloadSpec(
        "132.ijpeg", 621, 0.21, 0.07, 0.28, 0.40,
        frame_mean=6.0, frame_tail_prob=0.02, frame_tail_words=48,
        max_depth=9, call_rate=0.008, reuse_distance=70, ws_words=4_000,
        description="JPEG codec; blocked array processing",
    ),
    WorkloadSpec(
        "134.perl", 525, 0.26, 0.13, 0.40, 0.55,
        frame_mean=4.0, frame_tail_prob=0.02, frame_tail_words=36,
        max_depth=16, call_rate=0.016, reuse_distance=60, ws_words=3_500,
        description="perl interpreter (scrabbl)",
    ),
    WorkloadSpec(
        "147.vortex", 284, 0.30, 0.16, 0.62, 0.82,
        frame_mean=5.0, frame_tail_prob=0.02, frame_tail_words=40,
        max_depth=14, call_rate=0.022, reuse_distance=40, ws_words=2_500,
        local_criticality=0.3, dep_density=1.5,
        description="object database; the most local-variable-heavy "
                    "program (71% of refs local)",
    ),
    WorkloadSpec(
        "101.tomcatv", 549, 0.30, 0.08, 0.10, 0.20,
        frame_mean=2.0, frame_tail_prob=0.0, frame_tail_words=0,
        max_depth=3, call_rate=0.001, reuse_distance=150, ws_words=20_000,
        fp_frac=0.30, interleave=0.15, is_fp=True,
        description="vectorized mesh generation; FP, poorly interleaved "
                    "local/non-local streams",
    ),
    WorkloadSpec(
        "102.swim", 473, 0.28, 0.07, 0.08, 0.15,
        frame_mean=2.0, frame_tail_prob=0.0, frame_tail_words=0,
        max_depth=3, call_rate=0.001, reuse_distance=150, ws_words=30_000,
        fp_frac=0.30, interleave=0.12, is_fp=True,
        description="shallow water model; FP stencil sweeps",
    ),
    WorkloadSpec(
        "103.su2cor", 676, 0.26, 0.09, 0.12, 0.25,
        frame_mean=3.0, frame_tail_prob=0.01, frame_tail_words=16,
        max_depth=4, call_rate=0.002, reuse_distance=120, ws_words=15_000,
        fp_frac=0.25, interleave=0.20, is_fp=True,
        description="quantum physics Monte Carlo; FP",
    ),
    WorkloadSpec(
        "107.mgrid", 684, 0.32, 0.05, 0.06, 0.10,
        frame_mean=2.0, frame_tail_prob=0.0, frame_tail_words=0,
        max_depth=3, call_rate=0.001, reuse_distance=180, ws_words=35_000,
        fp_frac=0.35, interleave=0.10, is_fp=True,
        description="multigrid solver; load-dominated FP sweeps",
    ),
)

_BY_NAME: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _SPECS}

#: All twelve programs in paper order.
ALL_PROGRAMS: Tuple[str, ...] = tuple(spec.name for spec in _SPECS)

#: The eight integer programs (Figures 3, 8 use these).
INT_PROGRAMS: Tuple[str, ...] = tuple(
    spec.name for spec in _SPECS if not spec.is_fp
)

#: The four floating-point programs.
FP_PROGRAMS: Tuple[str, ...] = tuple(
    spec.name for spec in _SPECS if spec.is_fp
)


def get_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by its program name (e.g. ``"130.li"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(ALL_PROGRAMS)}"
        ) from None

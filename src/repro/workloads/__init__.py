"""Workloads: the SPEC95-like benchmark suite.

Two trace sources:

* :mod:`repro.workloads.synthetic` — per-program generators calibrated to
  the paper's measured stream statistics (Figures 2 and 3, Table 2); these
  drive the paper-figure reproductions.
* :mod:`repro.workloads.builder` — real mini-C programs compiled by
  :mod:`repro.lang` and executed by :mod:`repro.vm`; these provide genuine
  execution-driven traces for examples and cross-validation.
"""

from repro.workloads.spec import (
    ALL_PROGRAMS,
    FP_PROGRAMS,
    INT_PROGRAMS,
    WorkloadSpec,
    get_spec,
)
from repro.workloads.builder import build_trace, clear_trace_cache
from repro.workloads.minic import MINIC_PROGRAMS, minic_source

__all__ = [
    "ALL_PROGRAMS",
    "FP_PROGRAMS",
    "INT_PROGRAMS",
    "WorkloadSpec",
    "get_spec",
    "build_trace",
    "clear_trace_cache",
    "MINIC_PROGRAMS",
    "minic_source",
]

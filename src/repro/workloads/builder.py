"""Trace construction with caching.

``build_trace`` is the single entry point the experiment harness uses:
SPEC95-like names (``"130.li"``) produce calibrated synthetic traces;
``"mini.*"`` names compile and execute the corresponding mini-C program.
Traces are cached in-process because a dozen experiments sweep dozens of
machine configurations over the same streams.

Mini-C names may carry an optimization-level suffix — ``"mini.qsort@O0"``
compiles at O0, ``"mini.qsort@O2"`` at O2 (the bare name is the compiler
default, O2).  Because the level rides in the workload *name*, everything
keyed by name — the in-process memo here, SimJob descriptions, the
on-disk result cache, trace capture — distinguishes levels with no extra
plumbing.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError
from repro.lang import CompilerOptions, compile_source
from repro.vm import Trace
from repro.vm.machine import Machine
from repro.workloads.minic import MINIC_PROGRAMS
from repro.workloads.spec import get_spec
from repro.workloads.synthetic import generate_trace

_CACHE: Dict[Tuple[str, Optional[int], int], Trace] = {}


def build_trace(name: str, length: Optional[int] = None,
                seed: int = 1) -> Trace:
    """Build (or fetch from cache) the dynamic trace for workload *name*.

    For synthetic workloads *length* is the number of instructions to
    generate (default: the scaled Table 2 count).  For mini-C programs it
    is an execution budget: the program runs to completion or until the
    budget is exhausted, whichever comes first.
    """
    key = (name, length, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if name.startswith("mini."):
        trace = _build_minic(name, length)
    else:
        trace = generate_trace(get_spec(name), length, seed)
    _CACHE[key] = trace
    return trace


def build_trace_uncached(name: str, length: Optional[int] = None,
                         seed: int = 1) -> Trace:
    """Build the trace for *name*, bypassing (and not filling) the memo.

    Trace capture and benchmarking use this: capture must serialize a
    stream no other caller can have mutated, and the execution-driven
    benchmark must pay the honest build cost replay is measured against.
    """
    if name.startswith("mini."):
        return _build_minic(name, length)
    return generate_trace(get_spec(name), length, seed)


def split_opt_suffix(name: str) -> Tuple[str, Optional[int]]:
    """Split ``"mini.qsort@O0"`` into ``("mini.qsort", 0)``.

    Names without a suffix come back with ``None`` (compiler default).
    """
    base, sep, tail = name.partition("@")
    if not sep:
        return name, None
    if len(tail) == 2 and tail[0] in "Oo" and tail[1] in "012":
        return base, int(tail[1])
    raise WorkloadError(
        f"bad optimization suffix in workload {name!r}; "
        f"expected '@O0', '@O1' or '@O2'")


def _build_minic(name: str, length: Optional[int]) -> Trace:
    base, opt_level = split_opt_suffix(name)
    if base not in MINIC_PROGRAMS:
        raise WorkloadError(f"unknown mini-C program {base!r}")
    source = MINIC_PROGRAMS[base][0]
    program = compile_source(
        source, CompilerOptions(source_name=name, opt_level=opt_level))
    vm = Machine(program, trace=True)
    vm.run(max_instructions=length if length else 5_000_000)
    trace = vm.trace
    assert trace is not None
    trace.name = name
    return trace


def clear_trace_cache() -> None:
    """Drop every cached trace (tests use this to bound memory)."""
    _CACHE.clear()

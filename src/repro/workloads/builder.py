"""Trace construction with caching.

``build_trace`` is the single entry point the experiment harness uses:
SPEC95-like names (``"130.li"``) produce calibrated synthetic traces;
``"mini.*"`` names compile and execute the corresponding mini-C program.
Traces are cached in-process because a dozen experiments sweep dozens of
machine configurations over the same streams.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import WorkloadError
from repro.lang import CompilerOptions, compile_source
from repro.vm import Trace
from repro.vm.machine import Machine
from repro.workloads.minic import MINIC_PROGRAMS
from repro.workloads.spec import get_spec
from repro.workloads.synthetic import generate_trace

_CACHE: Dict[Tuple[str, Optional[int], int], Trace] = {}


def build_trace(name: str, length: Optional[int] = None,
                seed: int = 1) -> Trace:
    """Build (or fetch from cache) the dynamic trace for workload *name*.

    For synthetic workloads *length* is the number of instructions to
    generate (default: the scaled Table 2 count).  For mini-C programs it
    is an execution budget: the program runs to completion or until the
    budget is exhausted, whichever comes first.
    """
    key = (name, length, seed)
    cached = _CACHE.get(key)
    if cached is not None:
        return cached
    if name.startswith("mini."):
        trace = _build_minic(name, length)
    else:
        trace = generate_trace(get_spec(name), length, seed)
    _CACHE[key] = trace
    return trace


def build_trace_uncached(name: str, length: Optional[int] = None,
                         seed: int = 1) -> Trace:
    """Build the trace for *name*, bypassing (and not filling) the memo.

    Trace capture and benchmarking use this: capture must serialize a
    stream no other caller can have mutated, and the execution-driven
    benchmark must pay the honest build cost replay is measured against.
    """
    if name.startswith("mini."):
        return _build_minic(name, length)
    return generate_trace(get_spec(name), length, seed)


def _build_minic(name: str, length: Optional[int]) -> Trace:
    if name not in MINIC_PROGRAMS:
        raise WorkloadError(f"unknown mini-C program {name!r}")
    source = MINIC_PROGRAMS[name][0]
    program = compile_source(source, CompilerOptions(source_name=name))
    vm = Machine(program, trace=True)
    vm.run(max_instructions=length if length else 5_000_000)
    trace = vm.trace
    assert trace is not None
    trace.name = name
    return trace


def clear_trace_cache() -> None:
    """Drop every cached trace (tests use this to bound memory)."""
    _CACHE.clear()

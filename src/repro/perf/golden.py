"""Golden-equivalence harness: the optimized core vs the frozen seed core.

The tentpole requirement of the performance work is that the optimized
:class:`repro.core.processor.Processor` is **bit-identical** to the seed
model — same cycle counts, same instruction counts, same counter values —
on every workload/configuration pair the experiment suite uses.  This
module runs both cores over a matrix of (workload, config) pairs and
reports every divergence, field by field.

``repro.perf.reference.ReferenceProcessor`` is a frozen, vendored copy of
the seed core; it shares the memory hierarchy, trace, and counter code
with the live core (those layers carry the modelled state machines), so a
comparison here exercises exactly the parts the optimization rewrote: the
pipeline loop, the calendar queue, the issue lanes, and the memory-queue
index maintenance.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Type

from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.core.processor import Processor
from repro.perf.reference import ReferenceProcessor
from repro.vm.trace import DynInst

#: The configuration axes of the paper's evaluation, by notation.  The
#: fig9 pair (2+2 with fast forwarding and combining) is the headline
#: configuration; the rest cover the sweeps the figures run.
GOLDEN_CONFIGS: Tuple[Tuple[str, Dict], ...] = (
    ("2+0", dict(l1_ports=2, lvc_ports=0)),
    ("1+1", dict(l1_ports=1, lvc_ports=1)),
    ("2+2", dict(l1_ports=2, lvc_ports=2)),
    ("4+0", dict(l1_ports=4, lvc_ports=0)),
    ("2+2:opt", dict(l1_ports=2, lvc_ports=2,
                     fast_forwarding=True, combining=2)),
    ("3+1:opt", dict(l1_ports=3, lvc_ports=1,
                     fast_forwarding=True, combining=2)),
)

#: Notation of the paper's Figure 9 configuration.
FIG9_CONFIG = "2+2:opt"


def golden_config(notation: str) -> MachineConfig:
    """The :class:`MachineConfig` for a :data:`GOLDEN_CONFIGS` notation."""
    for name, kwargs in GOLDEN_CONFIGS:
        if name == notation:
            return MachineConfig.baseline(**kwargs)
    raise KeyError(notation)


class Mismatch:
    """One observed divergence between the two cores."""

    __slots__ = ("workload", "config", "field", "expected", "actual")

    def __init__(self, workload: str, config: str, field: str,
                 expected, actual):
        self.workload = workload
        self.config = config
        self.field = field
        self.expected = expected
        self.actual = actual

    def __repr__(self) -> str:
        return (
            f"{self.workload} on {self.config}: {self.field} "
            f"expected {self.expected!r}, got {self.actual!r}"
        )


def diff_results(workload: str, config: str,
                 expected: SimResult, actual: SimResult) -> List[Mismatch]:
    """Field-by-field comparison of two simulation results.

    Cycle and instruction counts must match exactly, and the counter
    dictionaries must be *equal as dictionaries*: a counter absent on one
    side and zero on the other is still a divergence, because the seed
    core only materialises counters it actually bumped.
    """
    mismatches: List[Mismatch] = []
    if actual.cycles != expected.cycles:
        mismatches.append(Mismatch(workload, config, "cycles",
                                   expected.cycles, actual.cycles))
    if actual.instructions != expected.instructions:
        mismatches.append(
            Mismatch(workload, config, "instructions",
                     expected.instructions, actual.instructions))
    want = expected.counters.as_dict()
    got = actual.counters.as_dict()
    if want != got:
        for key in sorted(set(want) | set(got)):
            if want.get(key) != got.get(key):
                mismatches.append(
                    Mismatch(workload, config, f"counters[{key}]",
                             want.get(key), got.get(key)))
    return mismatches


def compare_on_trace(
    insts: Sequence[DynInst],
    config: MachineConfig,
    workload: str = "<trace>",
    config_name: str = "<config>",
    optimized: Type = Processor,
    reference: Type = ReferenceProcessor,
) -> List[Mismatch]:
    """Run both cores over one prepared trace and diff the results."""
    expected = reference(config).run(insts, workload)
    actual = optimized(config).run(insts, workload)
    return diff_results(workload, config_name, expected, actual)


def check_equivalence(
    workloads: Sequence[str],
    configs: Optional[Iterable[Tuple[str, Dict]]] = None,
    length: int = 20_000,
    seed: int = 1,
    optimized: Type = Processor,
    reference: Type = ReferenceProcessor,
) -> List[Mismatch]:
    """Equivalence sweep over a workload/config matrix.

    Returns every mismatch found (an empty list is a pass).  The trace
    for each workload is built once and shared by every configuration —
    the cores must not mutate it.
    """
    from repro.workloads.builder import build_trace

    if configs is None:
        configs = GOLDEN_CONFIGS
    mismatches: List[Mismatch] = []
    for workload in workloads:
        insts = build_trace(workload, length=length, seed=seed).insts
        for config_name, kwargs in configs:
            config = MachineConfig.baseline(**kwargs)
            mismatches.extend(
                compare_on_trace(insts, config, workload, config_name,
                                 optimized=optimized, reference=reference))
    return mismatches

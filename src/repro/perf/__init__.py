"""Performance tooling: golden-equivalence harness and benchmark runner.

``repro.perf.reference`` keeps a frozen copy of the straightforward
simulator core; ``repro.perf.golden`` checks the optimized core against it
bit-for-bit; ``repro.perf.bench`` measures simulated-instructions-per-
second and emits ``BENCH_core.json`` (run via ``repro-cc perf``).
"""

"""Microbenchmark harness for the simulator core (``repro-cc perf``).

Measures simulated-instructions-per-second of the optimized
:class:`repro.core.processor.Processor` and, optionally, of the frozen
seed core, reporting the speedup ratio the performance work is judged by.

Methodology notes, learned the hard way on shared hardware:

* **Interleaved rounds.**  Machine speed drifts on the scale of seconds
  (frequency scaling, co-tenants).  Timing all new-core rounds and then
  all reference rounds folds that drift straight into the ratio.  The
  harness instead alternates new/reference rounds per workload, so both
  cores sample the same drift.
* **Best-of-N.**  A timing run can only be slowed down by interference,
  never sped up, so the minimum over rounds is the best estimate of true
  cost.  Means/medians are reported for context only.
* **Warmup.**  The first round touches cold code objects (and the trace
  builder's caches); warmup rounds are run and discarded.

Results are emitted as ``BENCH_core.json`` so CI can diff throughput
against a committed baseline (:func:`check_regression`).
"""

from __future__ import annotations

import json
import platform
import statistics
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.perf.golden import FIG9_CONFIG, golden_config

#: Schema tag for BENCH_core.json; bump on incompatible layout changes.
SCHEMA = "repro.perf.bench/1"

#: Workloads benchmarked by default: the paper's full SPEC95 subset.
DEFAULT_WORKLOADS = (
    "099.go", "124.m88ksim", "126.gcc", "129.compress",
    "130.li", "132.ijpeg", "134.perl", "147.vortex",
    "101.tomcatv", "102.swim", "103.su2cor", "107.mgrid",
)

#: ``--quick`` subset: one pointer-heavy, one loop-heavy, one FP workload.
QUICK_WORKLOADS = ("129.compress", "130.li", "102.swim")

DEFAULT_LENGTH = 60_000
QUICK_LENGTH = 20_000


def _time_run(processor_cls, insts, config: MachineConfig,
              workload: str) -> int:
    """Wall nanoseconds of one simulation of *insts* on a fresh core."""
    core = processor_cls(config)
    t0 = perf_counter_ns()
    core.run(insts, workload)
    return perf_counter_ns() - t0


def bench_workload(
    workload: str,
    insts,
    config: MachineConfig,
    warmup: int = 1,
    repeat: int = 3,
    compare: bool = True,
) -> Dict:
    """Benchmark one workload; returns its BENCH_core.json entry.

    With ``compare`` the seed core is timed in the same pass, one round
    of each per iteration (see the module docstring for why).
    """
    from repro.perf.reference import ReferenceProcessor

    n_insts = len(insts)
    for _ in range(warmup):
        _time_run(Processor, insts, config, workload)
        if compare:
            _time_run(ReferenceProcessor, insts, config, workload)
    new_ns: List[int] = []
    ref_ns: List[int] = []
    for _ in range(repeat):
        new_ns.append(_time_run(Processor, insts, config, workload))
        if compare:
            ref_ns.append(
                _time_run(ReferenceProcessor, insts, config, workload))

    def _stats(samples: List[int]) -> Dict:
        best = min(samples)
        return {
            "best_ns": best,
            "mean_ns": int(statistics.fmean(samples)),
            "median_ns": int(statistics.median(samples)),
            "stdev_ns": int(statistics.stdev(samples)) if len(samples) > 1
            else 0,
            "kips": round(n_insts / best * 1e6, 1),
        }

    entry = {
        "workload": workload,
        "instructions": n_insts,
        "repeat": repeat,
        "optimized": _stats(new_ns),
    }
    if compare:
        entry["reference"] = _stats(ref_ns)
        entry["speedup"] = round(min(ref_ns) / min(new_ns), 3)
    return entry


def run_benchmark(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    config: Optional[MachineConfig] = None,
    config_name: str = FIG9_CONFIG,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    warmup: int = 1,
    repeat: int = 3,
    compare: bool = True,
    replay: bool = False,
) -> Dict:
    """Full benchmark sweep; returns the BENCH_core.json document.

    The aggregate ``speedup_vs_reference`` is the ratio of summed
    best-round times (total work done per unit time), with the geometric
    mean of per-workload ratios alongside it.
    """
    from repro.workloads.builder import build_trace

    if config is None:
        config = golden_config(config_name)
    entries = []
    for workload in workloads:
        insts = build_trace(workload, length=length, seed=seed).insts
        entries.append(
            bench_workload(workload, insts, config,
                           warmup=warmup, repeat=repeat, compare=compare))

    total_insts = sum(e["instructions"] for e in entries)
    total_new = sum(e["optimized"]["best_ns"] for e in entries)
    aggregate = {
        "instructions": total_insts,
        "kips": round(total_insts / total_new * 1e6, 1),
    }
    if compare:
        total_ref = sum(e["reference"]["best_ns"] for e in entries)
        aggregate["speedup_vs_reference"] = round(total_ref / total_new, 3)
        aggregate["speedup_geomean"] = round(
            statistics.geometric_mean(e["speedup"] for e in entries), 3)

    report = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "config": config_name,
        "length": length,
        "seed": seed,
        "warmup": warmup,
        "repeat": repeat,
        "workloads": entries,
        "aggregate": aggregate,
    }
    if replay:
        report["replay"] = bench_replay(
            workloads=workloads, config=config, config_name=config_name,
            length=length, seed=seed, warmup=warmup, repeat=repeat)
    return report


def bench_replay(
    workloads: Sequence[str] = QUICK_WORKLOADS,
    config: Optional[MachineConfig] = None,
    config_name: str = FIG9_CONFIG,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    warmup: int = 1,
    repeat: int = 3,
) -> Dict:
    """Replay-mode vs execution-driven throughput (the tentpole ratio).

    Both paths are timed end to end, cold per round:

    * **execution-driven** — run the functional frontend (uncached) and
      simulate the stream it produces;
    * **replay** — decode a captured trace's flat tables and simulate.

    kips here is dynamic instructions over *total* wall time, which is
    what an experiment sweep actually pays per point; the replay/
    execution ratio is the speedup the trace subsystem buys.  Rounds
    interleave the two paths (same drift-cancelling argument as
    :func:`bench_workload`).
    """
    from repro.trace.format import decode_trace, encode_trace
    from repro.workloads.builder import build_trace_uncached

    if config is None:
        config = golden_config(config_name)
    entries = []
    for workload in workloads:
        trace = build_trace_uncached(workload, length=length, seed=seed)
        data = encode_trace(trace)
        n_insts = len(trace.insts)

        def _execution_ns() -> int:
            t0 = perf_counter_ns()
            insts = build_trace_uncached(workload, length=length,
                                         seed=seed).insts
            Processor(config).run(insts, workload)
            return perf_counter_ns() - t0

        def _replay_ns() -> int:
            t0 = perf_counter_ns()
            insts = decode_trace(data, origin=workload).insts
            Processor(config).run(insts, workload)
            return perf_counter_ns() - t0

        for _ in range(warmup):
            _execution_ns()
            _replay_ns()
        execution_ns: List[int] = []
        replay_ns: List[int] = []
        for _ in range(repeat):
            execution_ns.append(_execution_ns())
            replay_ns.append(_replay_ns())
        best_execution = min(execution_ns)
        best_replay = min(replay_ns)
        entries.append({
            "workload": workload,
            "instructions": n_insts,
            "execution_driven": {
                "best_ns": best_execution,
                "kips": round(n_insts / best_execution * 1e6, 1),
            },
            "replay": {
                "best_ns": best_replay,
                "kips": round(n_insts / best_replay * 1e6, 1),
            },
            "ratio": round(best_execution / best_replay, 3),
        })

    total_insts = sum(e["instructions"] for e in entries)
    total_execution = sum(e["execution_driven"]["best_ns"]
                          for e in entries)
    total_replay = sum(e["replay"]["best_ns"] for e in entries)
    return {
        "workloads": entries,
        "aggregate": {
            "instructions": total_insts,
            "execution_kips": round(total_insts / total_execution * 1e6,
                                    1),
            "replay_kips": round(total_insts / total_replay * 1e6, 1),
            "ratio": round(total_execution / total_replay, 3),
        },
    }


def check_regression(current: Dict, baseline: Dict,
                     tolerance: float = 0.20) -> List[str]:
    """Throughput-regression check against a committed baseline.

    Compares aggregate kips; a drop of more than ``tolerance`` (fraction)
    fails.  Absolute kips varies across machines, so CI compares a run
    against a baseline produced *in the same job*, or applies a generous
    tolerance to the committed one.  Returns failure messages (empty =
    pass).
    """
    failures: List[str] = []
    base_kips = baseline.get("aggregate", {}).get("kips")
    cur_kips = current.get("aggregate", {}).get("kips")
    if not base_kips or not cur_kips:
        return ["baseline or current report lacks aggregate kips"]
    floor = base_kips * (1.0 - tolerance)
    if cur_kips < floor:
        failures.append(
            f"aggregate throughput regressed: {cur_kips:.0f} kips vs "
            f"baseline {base_kips:.0f} kips "
            f"(floor {floor:.0f} at {tolerance:.0%} tolerance)")
    return failures


def profile_run(workload: str, config: Optional[MachineConfig] = None,
                length: int = DEFAULT_LENGTH, seed: int = 1,
                sort: str = "cumulative", limit: int = 30) -> str:
    """cProfile one simulation; returns the formatted stats table."""
    import cProfile
    import io
    import pstats

    from repro.workloads.builder import build_trace

    if config is None:
        config = golden_config(FIG9_CONFIG)
    insts = build_trace(workload, length=length, seed=seed).insts
    core = Processor(config)
    prof = cProfile.Profile()
    prof.enable()
    core.run(insts, workload)
    prof.disable()
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats(sort).print_stats(limit)
    return buf.getvalue()


def format_report(report: Dict) -> str:
    """Human-readable rendering of a benchmark report."""
    lines = [
        f"core benchmark — config {report['config']}, "
        f"length {report['length']}, "
        f"best of {report['repeat']} (+{report['warmup']} warmup), "
        f"python {report['python']}",
        "",
        f"{'workload':<14} {'insts':>8} {'opt kips':>10} "
        f"{'ref kips':>10} {'speedup':>8}",
    ]
    for e in report["workloads"]:
        ref = e.get("reference")
        lines.append(
            f"{e['workload']:<14} {e['instructions']:>8} "
            f"{e['optimized']['kips']:>10.1f} "
            f"{(ref['kips'] if ref else float('nan')):>10.1f} "
            f"{e.get('speedup', float('nan')):>8.2f}")
    agg = report["aggregate"]
    lines.append("")
    lines.append(f"aggregate: {agg['kips']:.1f} kips"
                 + (f", speedup vs reference {agg['speedup_vs_reference']:.2f}x"
                    f" (geomean {agg['speedup_geomean']:.2f}x)"
                    if "speedup_vs_reference" in agg else ""))
    replay = report.get("replay")
    if replay:
        lines.append("")
        lines.append(f"{'replay-mode':<14} {'insts':>8} {'exec kips':>10} "
                     f"{'rply kips':>10} {'ratio':>8}")
        for e in replay["workloads"]:
            lines.append(
                f"{e['workload']:<14} {e['instructions']:>8} "
                f"{e['execution_driven']['kips']:>10.1f} "
                f"{e['replay']['kips']:>10.1f} "
                f"{e['ratio']:>8.2f}")
        ragg = replay["aggregate"]
        lines.append(
            f"replay aggregate: {ragg['replay_kips']:.1f} kips vs "
            f"{ragg['execution_kips']:.1f} execution-driven "
            f"({ragg['ratio']:.2f}x)")
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    """Write the report as formatted JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_report(path: str) -> Dict:
    """Load a previously written BENCH_core.json."""
    with open(path) as fh:
        return json.load(fh)

"""Microbenchmark harness for the simulator core (``repro-cc perf``).

Measures simulated-instructions-per-second of the optimized
:class:`repro.core.processor.Processor` and, optionally, of the frozen
seed core, reporting the speedup ratio the performance work is judged by.

Methodology notes, learned the hard way on shared hardware:

* **Interleaved rounds.**  Machine speed drifts on the scale of seconds
  (frequency scaling, co-tenants).  Timing all new-core rounds and then
  all reference rounds folds that drift straight into the ratio.  The
  harness instead alternates new/reference rounds per workload, so both
  cores sample the same drift.
* **Best-of-N.**  A timing run can only be slowed down by interference,
  never sped up, so the minimum over rounds is the best estimate of true
  cost.  Means/medians are reported for context only.
* **Warmup.**  The first round touches cold code objects (and the trace
  builder's caches); warmup rounds are run and discarded.
* **Trimmed mean.**  Best-of-N is the right point estimate but says
  nothing about stability; the interquartile-trimmed mean (middle half
  of the sorted rounds) is reported alongside it as the noise-robust
  average the CI gate can compare without chasing outliers.  Raise
  ``--min-repeat`` when stdev is large relative to the mean.

Results are emitted as ``BENCH_core.json`` so CI can diff throughput
against a committed baseline (:func:`check_regression`).
"""

from __future__ import annotations

import json
import platform
import statistics
from time import perf_counter_ns
from typing import Dict, List, Optional, Sequence

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.perf.golden import FIG9_CONFIG, golden_config

#: Schema tag for BENCH_core.json; bump on incompatible layout changes.
SCHEMA = "repro.perf.bench/2"

#: Workloads benchmarked by default: the paper's full SPEC95 subset.
DEFAULT_WORKLOADS = (
    "099.go", "124.m88ksim", "126.gcc", "129.compress",
    "130.li", "132.ijpeg", "134.perl", "147.vortex",
    "101.tomcatv", "102.swim", "103.su2cor", "107.mgrid",
)

#: ``--quick`` subset: one pointer-heavy, one loop-heavy, one FP workload.
QUICK_WORKLOADS = ("129.compress", "130.li", "102.swim")

DEFAULT_LENGTH = 60_000
QUICK_LENGTH = 20_000


def _time_run(processor_cls, insts, config: MachineConfig,
              workload: str) -> int:
    """Wall nanoseconds of one simulation of *insts* on a fresh core."""
    core = processor_cls(config)
    t0 = perf_counter_ns()
    core.run(insts, workload)
    return perf_counter_ns() - t0


def trimmed_mean(samples: Sequence[int]) -> int:
    """Interquartile-trimmed mean: the mean of the middle half.

    The quarter of rounds at each end of the sorted samples is dropped
    (at least one round survives), so a co-tenant spike or a lucky
    quiet round moves the estimate far less than it moves the plain
    mean.  With fewer than four samples nothing can be trimmed.
    """
    ordered = sorted(samples)
    drop = len(ordered) // 4
    kept = ordered[drop:len(ordered) - drop] if drop else ordered
    return int(statistics.fmean(kept))


def bench_workload(
    workload: str,
    insts,
    config: MachineConfig,
    warmup: int = 1,
    repeat: int = 3,
    compare: bool = True,
) -> Dict:
    """Benchmark one workload; returns its BENCH_core.json entry.

    With ``compare`` the seed core is timed in the same pass, one round
    of each per iteration (see the module docstring for why).
    """
    from repro.perf.reference import ReferenceProcessor

    n_insts = len(insts)
    for _ in range(warmup):
        _time_run(Processor, insts, config, workload)
        if compare:
            _time_run(ReferenceProcessor, insts, config, workload)
    new_ns: List[int] = []
    ref_ns: List[int] = []
    for _ in range(repeat):
        new_ns.append(_time_run(Processor, insts, config, workload))
        if compare:
            ref_ns.append(
                _time_run(ReferenceProcessor, insts, config, workload))

    def _stats(samples: List[int]) -> Dict:
        best = min(samples)
        trimmed = trimmed_mean(samples)
        return {
            "best_ns": best,
            "mean_ns": int(statistics.fmean(samples)),
            "trimmed_mean_ns": trimmed,
            "median_ns": int(statistics.median(samples)),
            "stdev_ns": int(statistics.stdev(samples)) if len(samples) > 1
            else 0,
            "kips": round(n_insts / best * 1e6, 1),
            "trimmed_kips": round(n_insts / trimmed * 1e6, 1),
        }

    entry = {
        "workload": workload,
        "instructions": n_insts,
        "repeat": repeat,
        "optimized": _stats(new_ns),
    }
    if compare:
        entry["reference"] = _stats(ref_ns)
        entry["speedup"] = round(min(ref_ns) / min(new_ns), 3)
    return entry


def run_benchmark(
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    config: Optional[MachineConfig] = None,
    config_name: str = FIG9_CONFIG,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    warmup: int = 1,
    repeat: int = 3,
    compare: bool = True,
    replay: bool = False,
    min_repeat: int = 0,
) -> Dict:
    """Full benchmark sweep; returns the BENCH_core.json document.

    The aggregate ``speedup_vs_reference`` is the ratio of summed
    best-round times (total work done per unit time), with the geometric
    mean of per-workload ratios alongside it.  ``min_repeat`` raises the
    round count floor (``--min-repeat``) so noisy machines can buy
    stability without editing every call site's ``repeat``.
    """
    from repro.workloads.builder import build_trace

    repeat = max(repeat, min_repeat)
    if config is None:
        config = golden_config(config_name)
    entries = []
    for workload in workloads:
        insts = build_trace(workload, length=length, seed=seed).insts
        entries.append(
            bench_workload(workload, insts, config,
                           warmup=warmup, repeat=repeat, compare=compare))

    total_insts = sum(e["instructions"] for e in entries)
    total_new = sum(e["optimized"]["best_ns"] for e in entries)
    total_new_trimmed = sum(e["optimized"]["trimmed_mean_ns"]
                            for e in entries)
    aggregate = {
        "instructions": total_insts,
        "kips": round(total_insts / total_new * 1e6, 1),
        "trimmed_kips": round(total_insts / total_new_trimmed * 1e6, 1),
    }
    if compare:
        total_ref = sum(e["reference"]["best_ns"] for e in entries)
        aggregate["speedup_vs_reference"] = round(total_ref / total_new, 3)
        aggregate["speedup_geomean"] = round(
            statistics.geometric_mean(e["speedup"] for e in entries), 3)

    report = {
        "schema": SCHEMA,
        "python": platform.python_version(),
        "config": config_name,
        "length": length,
        "seed": seed,
        "warmup": warmup,
        "repeat": repeat,
        "workloads": entries,
        "aggregate": aggregate,
    }
    if replay:
        report["replay"] = bench_replay(
            workloads=workloads, config=config, config_name=config_name,
            length=length, seed=seed, warmup=warmup, repeat=repeat,
            min_repeat=min_repeat)
    return report


def bench_replay(
    workloads: Sequence[str] = QUICK_WORKLOADS,
    config: Optional[MachineConfig] = None,
    config_name: str = FIG9_CONFIG,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    warmup: int = 1,
    repeat: int = 3,
    min_repeat: int = 0,
) -> Dict:
    """Replay-mode vs execution-driven throughput (the tentpole ratio).

    Three lanes, timed end to end and interleaved per round (same
    drift-cancelling argument as :func:`bench_workload`):

    * **execution-driven** — run the functional frontend (uncached) and
      simulate the stream it produces;
    * **replay** — decode a captured trace's flat tables, cold each
      round, and simulate;
    * **replay_fast** — :func:`repro.trace.replay.replay_fast` against
      the stored trace + pre-decoded sidecar: after the warmup round
      the materialized stream is a per-process memo hit, which is
      exactly what a benchmark repeat or a config sweep pays per point.

    kips here is dynamic instructions over *total* wall time per point;
    the replay/execution ratios are the speedups the trace subsystem
    buys.
    """
    import os
    import tempfile

    from repro.trace import predecode as _predecode
    from repro.trace.format import decode_trace, encode_trace, write_trace
    from repro.trace.replay import replay_fast
    from repro.workloads.builder import build_trace_uncached

    repeat = max(repeat, min_repeat)
    if config is None:
        config = golden_config(config_name)
    entries = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmpdir:
        for workload in workloads:
            trace = build_trace_uncached(workload, length=length,
                                         seed=seed)
            data = encode_trace(trace)
            n_insts = len(trace.insts)
            path = os.path.join(tmpdir, workload + ".trace")
            write_trace(trace, path)
            _predecode.write_predecoded(
                _predecode.predecode_trace(data, origin=path),
                path[:-len(".trace")] + ".pdt")

            def _execution_ns() -> int:
                t0 = perf_counter_ns()
                insts = build_trace_uncached(workload, length=length,
                                             seed=seed).insts
                Processor(config).run(insts, workload)
                return perf_counter_ns() - t0

            def _replay_ns() -> int:
                t0 = perf_counter_ns()
                insts = decode_trace(data, origin=workload).insts
                Processor(config).run(insts, workload)
                return perf_counter_ns() - t0

            def _fast_ns() -> int:
                t0 = perf_counter_ns()
                replay_fast(path, config, workload)
                return perf_counter_ns() - t0

            for _ in range(warmup):
                _execution_ns()
                _replay_ns()
                _fast_ns()
            execution_ns: List[int] = []
            replay_ns: List[int] = []
            fast_ns: List[int] = []
            for _ in range(repeat):
                execution_ns.append(_execution_ns())
                replay_ns.append(_replay_ns())
                fast_ns.append(_fast_ns())
            best_execution = min(execution_ns)
            best_replay = min(replay_ns)
            best_fast = min(fast_ns)
            entries.append({
                "workload": workload,
                "instructions": n_insts,
                "execution_driven": {
                    "best_ns": best_execution,
                    "trimmed_mean_ns": trimmed_mean(execution_ns),
                    "kips": round(n_insts / best_execution * 1e6, 1),
                },
                "replay": {
                    "best_ns": best_replay,
                    "trimmed_mean_ns": trimmed_mean(replay_ns),
                    "kips": round(n_insts / best_replay * 1e6, 1),
                },
                "replay_fast": {
                    "best_ns": best_fast,
                    "trimmed_mean_ns": trimmed_mean(fast_ns),
                    "kips": round(n_insts / best_fast * 1e6, 1),
                },
                "ratio": round(best_execution / best_replay, 3),
                "fast_ratio": round(best_execution / best_fast, 3),
            })

    total_insts = sum(e["instructions"] for e in entries)
    total_execution = sum(e["execution_driven"]["best_ns"]
                          for e in entries)
    total_replay = sum(e["replay"]["best_ns"] for e in entries)
    total_fast = sum(e["replay_fast"]["best_ns"] for e in entries)
    return {
        "workloads": entries,
        "aggregate": {
            "instructions": total_insts,
            "execution_kips": round(total_insts / total_execution * 1e6,
                                    1),
            "replay_kips": round(total_insts / total_replay * 1e6, 1),
            "replay_fast_kips": round(total_insts / total_fast * 1e6, 1),
            "ratio": round(total_execution / total_replay, 3),
            "fast_ratio": round(total_execution / total_fast, 3),
        },
    }


def check_regression(current: Dict, baseline: Dict,
                     tolerance: float = 0.20) -> List[str]:
    """Throughput-regression check against a committed baseline.

    Compares aggregate kips; a drop of more than ``tolerance`` (fraction)
    fails.  Absolute kips varies across machines, so CI compares a run
    against a baseline produced *in the same job*, or applies a generous
    tolerance to the committed one.  Returns failure messages (empty =
    pass).
    """
    failures: List[str] = []
    base_kips = baseline.get("aggregate", {}).get("kips")
    cur_kips = current.get("aggregate", {}).get("kips")
    if not base_kips or not cur_kips:
        return ["baseline or current report lacks aggregate kips"]
    floor = base_kips * (1.0 - tolerance)
    if cur_kips < floor:
        failures.append(
            f"aggregate throughput regressed: {cur_kips:.0f} kips vs "
            f"baseline {base_kips:.0f} kips "
            f"(floor {floor:.0f} at {tolerance:.0%} tolerance)")
    # The replay lanes are gated too whenever both reports carry them,
    # so the fast path cannot silently regress while execution-driven
    # throughput holds.
    base_replay = baseline.get("replay", {}).get("aggregate", {})
    cur_replay = current.get("replay", {}).get("aggregate", {})
    for lane in ("replay_kips", "replay_fast_kips"):
        base_lane = base_replay.get(lane)
        cur_lane = cur_replay.get(lane)
        if not base_lane or not cur_lane:
            continue
        floor = base_lane * (1.0 - tolerance)
        if cur_lane < floor:
            failures.append(
                f"{lane.replace('_kips', '')} throughput regressed: "
                f"{cur_lane:.0f} kips vs baseline {base_lane:.0f} kips "
                f"(floor {floor:.0f} at {tolerance:.0%} tolerance)")
    return failures


def profile_run(workload: str, config: Optional[MachineConfig] = None,
                length: int = DEFAULT_LENGTH, seed: int = 1,
                sort: str = "cumulative", limit: int = 30) -> str:
    """cProfile one simulation; returns the formatted stats table."""
    import cProfile
    import io
    import pstats

    from repro.workloads.builder import build_trace

    if config is None:
        config = golden_config(FIG9_CONFIG)
    insts = build_trace(workload, length=length, seed=seed).insts
    core = Processor(config)
    prof = cProfile.Profile()
    prof.enable()
    core.run(insts, workload)
    prof.disable()
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats(sort).print_stats(limit)
    return buf.getvalue()


def format_report(report: Dict) -> str:
    """Human-readable rendering of a benchmark report."""
    lines = [
        f"core benchmark — config {report['config']}, "
        f"length {report['length']}, "
        f"best of {report['repeat']} (+{report['warmup']} warmup), "
        f"python {report['python']}",
        "",
        f"{'workload':<14} {'insts':>8} {'opt kips':>10} "
        f"{'ref kips':>10} {'speedup':>8}",
    ]
    for e in report["workloads"]:
        ref = e.get("reference")
        lines.append(
            f"{e['workload']:<14} {e['instructions']:>8} "
            f"{e['optimized']['kips']:>10.1f} "
            f"{(ref['kips'] if ref else float('nan')):>10.1f} "
            f"{e.get('speedup', float('nan')):>8.2f}")
    agg = report["aggregate"]
    lines.append("")
    lines.append(f"aggregate: {agg['kips']:.1f} kips"
                 + (f", speedup vs reference {agg['speedup_vs_reference']:.2f}x"
                    f" (geomean {agg['speedup_geomean']:.2f}x)"
                    if "speedup_vs_reference" in agg else ""))
    replay = report.get("replay")
    if replay:
        lines.append("")
        lines.append(f"{'replay-mode':<14} {'insts':>8} {'exec kips':>10} "
                     f"{'rply kips':>10} {'fast kips':>10} {'ratio':>8}")
        for e in replay["workloads"]:
            fast = e.get("replay_fast", {}).get("kips", float("nan"))
            lines.append(
                f"{e['workload']:<14} {e['instructions']:>8} "
                f"{e['execution_driven']['kips']:>10.1f} "
                f"{e['replay']['kips']:>10.1f} "
                f"{fast:>10.1f} "
                f"{e.get('fast_ratio', e['ratio']):>8.2f}")
        ragg = replay["aggregate"]
        lines.append(
            f"replay aggregate: {ragg['replay_kips']:.1f} kips "
            f"(fast path {ragg.get('replay_fast_kips', float('nan')):.1f}) "
            f"vs {ragg['execution_kips']:.1f} execution-driven "
            f"({ragg['ratio']:.2f}x"
            + (f", fast {ragg['fast_ratio']:.2f}x"
               if "fast_ratio" in ragg else "") + ")")
    return "\n".join(lines)


def write_report(report: Dict, path: str) -> None:
    """Write the report as formatted JSON."""
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=False)
        fh.write("\n")


def load_report(path: str) -> Dict:
    """Load a previously written BENCH_core.json."""
    with open(path) as fh:
        return json.load(fh)

"""The frozen pre-optimization simulation core (golden reference).

This module is a verbatim capture of ``repro.core.processor`` (and the
scan-based ``repro.pipeline.memqueue`` / ``repro.pipeline.fu`` logic it
relied on) as it stood *before* the profile-guided optimization of the
cycle-stepped core.  It exists so the golden-equivalence harness
(:mod:`repro.perf.golden`) can prove — workload by workload, config by
config — that the optimized :class:`repro.core.processor.Processor`
reproduces the seed model's exact cycle counts and counter values.

Do **not** optimize this file.  It is deliberately the slow, obviously
correct O(queue)-rescan implementation: every per-cycle structure is
recomputed from first principles.  If the live core and this reference
ever disagree, the live core is wrong (or the machine *model* changed, in
which case this file must be re-frozen in the same commit and the change
called out as a semantics change, never slipped in as an "optimization").

Shared with the live core (deliberately): :class:`RobEntry`,
:class:`MemQueueEntry`, the port arbiters, and the stream partitioner —
pure state holders whose semantics the optimization did not touch.  The
memory hierarchy (cache tags, MSHRs, latency chain) IS vendored below
(``_RefCache`` / ``_RefMshrFile`` / ``_RefMemoryHierarchy``): the
optimization pass rewrote those hot paths too, so sharing them would
both weaken the equivalence check and credit the reference with
speedups that belong to the optimized build.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigError, SimulationError
from repro.isa.opcodes import FuClass, LATENCY
from repro.core.classify import StreamPartitioner
from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.mem.cache import CacheGeometry
from repro.mem.hierarchy import AccessResult, MemSystemConfig
from repro.mem.ports import PortArbiter, make_ports
from repro.pipeline.memqueue import INF_SEQ, MemQueueEntry
from repro.pipeline.rob import (
    COMMITTED,
    COMPLETED,
    DISPATCHED,
    ISSUED,
    Rob,
    RobEntry,
)
from repro.stats.counters import CounterSet
from repro.vm.trace import DynInst

_LOAD = int(FuClass.LOAD)
_STORE = int(FuClass.STORE)


class _RefCache:
    """Seed-era tag cache: counter names rebuilt (f-string) per access."""

    def __init__(self, name: str, geometry: CacheGeometry,
                 counters: Optional[CounterSet] = None):
        self.name = name
        self.geom = geometry
        self.counters = counters if counters is not None else CounterSet()
        self._sets: List[List[int]] = [[] for _ in range(geometry.num_sets)]
        self._dirty: Set[int] = set()

    def access(self, addr: int, is_store: bool) -> bool:
        geom = self.geom
        line = geom.line_of(addr)
        ways = self._sets[geom.set_of(line)]
        counters = self.counters
        counters.add(f"{self.name}.accesses")
        if line in ways:
            counters.add(f"{self.name}.hits")
            if ways[0] != line:
                ways.remove(line)
                ways.insert(0, line)
            if is_store:
                self._dirty.add(line)
            return True
        counters.add(f"{self.name}.misses")
        self._fill(line, ways)
        if is_store:
            self._dirty.add(line)
        return False

    def _fill(self, line: int, ways: List[int]) -> None:
        if len(ways) >= self.geom.assoc:
            victim = ways.pop()
            if victim in self._dirty:
                self._dirty.discard(victim)
                self.counters.add(f"{self.name}.writebacks")
        ways.insert(0, line)


class _RefMshrFile:
    """Seed-era MSHR file: eager expiry scan on every operation."""

    def __init__(self, entries: int = 8):
        if entries <= 0:
            raise ConfigError(f"MSHR count must be positive: {entries}")
        self.entries = entries
        self._pending: Dict[int, int] = {}
        self.merged = 0
        self.allocations = 0
        self.full_events = 0

    def _expire(self, now: int) -> None:
        if self._pending:
            done = [line for line, t in self._pending.items() if t <= now]
            for line in done:
                del self._pending[line]

    def lookup(self, line: int, now: int) -> Optional[int]:
        self._expire(now)
        ready = self._pending.get(line)
        if ready is not None:
            self.merged += 1
        return ready

    def allocate(self, line: int, ready: int, now: int) -> bool:
        self._expire(now)
        if len(self._pending) >= self.entries:
            self.full_events += 1
            return False
        self._pending[line] = ready
        self.allocations += 1
        return True


class _RefMemoryHierarchy:
    """Seed-era memory hierarchy: result objects on every access."""

    def __init__(self, config: MemSystemConfig,
                 counters: Optional[CounterSet] = None):
        self.config = config
        self.counters = counters if counters is not None else CounterSet()
        self.l1 = _RefCache(
            "l1",
            CacheGeometry(config.l1_size, config.l1_assoc, config.line_bytes),
            self.counters,
        )
        self.l2 = _RefCache(
            "l2",
            CacheGeometry(config.l2_size, config.l2_assoc, config.line_bytes),
            self.counters,
        )
        self.lvc: Optional[_RefCache] = None
        self.lvc_mshr: Optional[_RefMshrFile] = None
        self.lvc_ports: Optional[PortArbiter] = None
        if config.lvc_enabled:
            self.lvc = _RefCache(
                "lvc",
                CacheGeometry(config.lvc_size, config.lvc_assoc,
                              config.line_bytes),
                self.counters,
            )
            self.lvc_mshr = _RefMshrFile(config.mshr_entries)
            self.lvc_ports = PortArbiter(config.lvc_ports)
        self.l1_mshr = _RefMshrFile(config.mshr_entries)
        self.l1_ports = make_ports(config.l1_port_policy, config.l1_ports)
        self._bus_busy_until = 0

    def new_cycle(self) -> None:
        self.l1_ports.new_cycle()
        if self.lvc_ports is not None:
            self.lvc_ports.new_cycle()

    def access_l1(self, addr: int, is_store: bool, now: int) -> AccessResult:
        return self._access(self.l1, self.l1_mshr,
                            self.config.l1_hit_latency, addr, is_store, now)

    def access_lvc(self, addr: int, is_store: bool, now: int) -> AccessResult:
        if self.lvc is None or self.lvc_mshr is None:
            raise ConfigError("this configuration has no LVC")
        return self._access(self.lvc, self.lvc_mshr,
                            self.config.lvc_hit_latency, addr, is_store, now)

    def _access(self, cache: _RefCache, mshr: _RefMshrFile, hit_latency: int,
                addr: int, is_store: bool, now: int) -> AccessResult:
        line = cache.geom.line_of(addr)
        pending = mshr.lookup(line, now)
        if cache.access(addr, is_store):
            if pending is not None:
                return AccessResult(max(pending, now + hit_latency), False)
            return AccessResult(now + hit_latency, True)
        ready = self._miss(now + hit_latency, addr, is_store)
        if not mshr.allocate(line, ready, now):
            ready += 1
        return AccessResult(ready, False)

    def _miss(self, start: int, addr: int, is_store: bool) -> int:
        bus_at = max(start, self._bus_busy_until)
        self._bus_busy_until = bus_at + self.config.bus_occupancy
        self.counters.add("bus.transactions")
        if self.l2.access(addr, is_store):
            return bus_at + self.config.l2_latency
        return bus_at + self.config.l2_latency + self.config.mem_latency


class _RefUnitPool:
    """A pool of units with individual busy-until times (seed copy)."""

    __slots__ = ("free_at",)

    def __init__(self, count: int):
        self.free_at: List[int] = [0] * count

    def try_take(self, now: int, occupy_until: int) -> bool:
        free_at = self.free_at
        for i, t in enumerate(free_at):
            if t <= now:
                free_at[i] = occupy_until
                return True
        return False


class _RefFuPool:
    """Seed-era functional-unit pool (enum-comparison dispatch)."""

    def __init__(self, ialu: int = 16, falu: int = 16,
                 imultdiv: int = 4, fmultdiv: int = 4):
        if min(ialu, falu, imultdiv, fmultdiv) <= 0:
            raise ConfigError("every functional-unit count must be positive")
        self.ialu = ialu
        self.falu = falu
        self._ialu_left = ialu
        self._falu_left = falu
        self._imult = _RefUnitPool(imultdiv)
        self._fmult = _RefUnitPool(fmultdiv)

    def new_cycle(self) -> None:
        self._ialu_left = self.ialu
        self._falu_left = self.falu

    def try_take(self, fu: int, now: int) -> bool:
        if fu == FuClass.IALU or fu == FuClass.LOAD or fu == FuClass.STORE \
                or fu == FuClass.BRANCH or fu == FuClass.SYSCALL \
                or fu == FuClass.NONE:
            if self._ialu_left > 0:
                self._ialu_left -= 1
                return True
            return False
        if fu == FuClass.FADD:
            if self._falu_left > 0:
                self._falu_left -= 1
                return True
            return False
        if fu == FuClass.FMUL:
            return self._fmult.try_take(now, now + 1)
        if fu == FuClass.IMULT:
            return self._imult.try_take(now, now + 1)
        if fu == FuClass.IDIV:
            return self._imult.try_take(now, now + LATENCY[FuClass.IDIV])
        if fu == FuClass.FDIV:
            return self._fmult.try_take(now, now + LATENCY[FuClass.FDIV])
        raise ConfigError(f"unknown functional-unit class {fu}")


class _RefMemQueue:
    """Seed-era memory queue: every query is a fresh O(queue) scan."""

    def __init__(self, size: int, name: str = "lsq"):
        if size <= 0:
            raise SimulationError("memory queue size must be positive")
        self.size = size
        self.name = name
        self.entries: List[MemQueueEntry] = []

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.size

    def append(self, entry: MemQueueEntry) -> None:
        if self.full:
            raise SimulationError(f"dispatch into a full {self.name}")
        self.entries.append(entry)

    def retire_committed(self) -> None:
        entries = self.entries
        drop = 0
        while drop < len(entries) and entries[drop].rob.state == COMMITTED:
            drop += 1
        if drop:
            del entries[:drop]

    def oldest_unknown_store_seq(self) -> int:
        for entry in self.entries:
            if entry.is_store and not entry.addr_known:
                return entry.rob.seq
        return INF_SEQ

    def oldest_unknown_nonsp_store_seq(self) -> int:
        for entry in self.entries:
            if entry.is_store and not entry.addr_known and not entry.sp_based:
                return entry.rob.seq
        return INF_SEQ

    def forward_source(self, load: MemQueueEntry) -> Optional[MemQueueEntry]:
        entries = self.entries
        idx = entries.index(load)
        for i in range(idx - 1, -1, -1):
            entry = entries[i]
            if entry.is_store and entry.word == load.word:
                return entry
        return None

    def fast_forward_source(
        self, load: MemQueueEntry
    ) -> Tuple[Optional[MemQueueEntry], bool]:
        if not load.sp_based or load.frame_key is None:
            return None, False
        entries = self.entries
        idx = entries.index(load)
        for i in range(idx - 1, -1, -1):
            entry = entries[i]
            if not entry.is_store:
                continue
            if entry.sp_based and entry.frame_key == load.frame_key:
                return entry, True
            if not entry.sp_based and not entry.addr_known:
                return None, False
            if not entry.sp_based and entry.addr_known \
                    and entry.word == load.word:
                return None, False
        return None, True

    def occupancy(self) -> int:
        return len(self.entries)

    def __len__(self) -> int:
        return len(self.entries)


class ReferenceProcessor:
    """The seed cycle-stepped core, frozen for golden-equivalence checks.

    Construct a fresh instance per workload run, exactly like the live
    :class:`repro.core.processor.Processor` (whose API this mirrors).
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        self.counters = CounterSet()
        self.hierarchy = _RefMemoryHierarchy(config.mem, self.counters)
        self.rob = Rob(config.rob_size)
        self.lsq = _RefMemQueue(config.lsq_size, "lsq")
        self.lvaq = _RefMemQueue(config.lvaq_size, "lvaq")
        self.fus = _RefFuPool(config.ialu_units, config.falu_units,
                              config.imultdiv_units, config.fmultdiv_units)
        self.partitioner = StreamPartitioner(
            config.decoupled, config.decouple.predictor
        )
        self.now = 0
        self._events: Dict[int, List[RobEntry]] = {}
        self._issuable: List[RobEntry] = []
        self._producer: List[Optional[RobEntry]] = [None] * 64
        self._seq = 0
        self._committed = 0

    # ------------------------------------------------------------------ run

    def run(self, insts: Sequence[DynInst],
            workload_name: str = "<trace>") -> SimResult:
        total = len(insts)
        index = 0
        limit = total * 80 + 1000
        decoupled = self.config.decoupled
        while self._committed < total:
            self.now += 1
            if self.now > limit:
                raise SimulationError(
                    f"cycle limit exceeded ({limit}) at "
                    f"{self._committed}/{total} committed"
                )
            self.hierarchy.new_cycle()
            self.fus.new_cycle()
            self._commit()
            self._writeback()
            if decoupled:
                self._memory(self.lvaq, lvc_side=True)
            self._memory(self.lsq, lvc_side=False)
            self._issue()
            index = self._dispatch(insts, index, total)
        self.counters.set("cycles", self.now)
        self.counters.set("instructions", total)
        return SimResult(self.config.notation(), workload_name,
                         self.now, total, self.counters)

    # ----------------------------------------------------------------- commit

    def _commit(self) -> None:
        budget = self.config.issue_width
        now = self.now
        counters = self.counters
        hierarchy = self.hierarchy
        combining = self.config.decouple.combining
        combine_side: Optional[bool] = None
        combine_line = -1
        combine_left = 0
        retired_mem = False
        while budget > 0:
            entry = self.rob.head()
            if entry is None or entry.state != COMPLETED:
                break
            qe = entry.mem
            if qe is not None and qe.is_store:
                use_lvc = qe.use_lvc
                combined = (
                    combining > 1
                    and use_lvc
                    and combine_side == use_lvc
                    and combine_line == qe.line
                    and combine_left > 0
                )
                if combined:
                    combine_left -= 1
                    counters.add("lvaq.store_combined")
                else:
                    ports = (hierarchy.lvc_ports if use_lvc
                             else hierarchy.l1_ports)
                    if ports is None or not ports.try_take(
                            1, line=qe.line, is_store=True):
                        counters.add("stall.store_port")
                        break
                    combine_side = use_lvc
                    combine_line = qe.line
                    combine_left = combining - 1
                if use_lvc:
                    hierarchy.access_lvc(qe.word << 2, True, now)
                else:
                    hierarchy.access_l1(qe.word << 2, True, now)
                retired_mem = True
            elif qe is not None:
                retired_mem = True
            self.rob.pop_head()
            inst = entry.inst
            if inst.dst >= 0 and self._producer[inst.dst] is entry:
                self._producer[inst.dst] = None
            entry.consumers = []
            self._committed += 1
            budget -= 1
        if retired_mem:
            self.lsq.retire_committed()
            self.lvaq.retire_committed()

    # -------------------------------------------------------------- writeback

    def _writeback(self) -> None:
        completing = self._events.pop(self.now, None)
        if not completing:
            return
        now = self.now
        issuable = self._issuable
        for entry in completing:
            entry.state = COMPLETED
            entry.complete_time = now
            produced = entry.inst.dst
            for consumer in entry.consumers:
                consumer.pending -= 1
                qe = consumer.mem
                if (qe is not None and qe.is_store and not qe.addr_known
                        and consumer.inst.srcs
                        and consumer.inst.srcs[0] == produced):
                    qe.addr_known_time = now + 1
                    qe.word = consumer.inst.addr >> 2
                    qe.line = consumer.inst.addr >> 5
                if consumer.pending == 0 and consumer.state == DISPATCHED:
                    if consumer.earliest < now:
                        consumer.earliest = now
                    if not consumer.in_issuable:
                        consumer.in_issuable = True
                        issuable.append(consumer)
            entry.consumers = []

    def _schedule(self, entry: RobEntry, when: int) -> None:
        self._events.setdefault(when, []).append(entry)

    # ----------------------------------------------------------------- memory

    def _memory(self, queue: _RefMemQueue, lvc_side: bool) -> None:
        entries = queue.entries
        if not entries:
            return
        now = self.now
        counters = self.counters
        hierarchy = self.hierarchy
        ports = hierarchy.lvc_ports if lvc_side else hierarchy.l1_ports
        fast_fwd = (lvc_side and self.config.decouple.fast_forwarding)
        combining = (self.config.decouple.combining
                     if lvc_side else 1)
        unknown_seq = queue.oldest_unknown_store_seq()
        nonsp_unknown_seq = (queue.oldest_unknown_nonsp_store_seq()
                             if fast_fwd else unknown_seq)
        qname = queue.name
        ports_exhausted = ports is None or ports.available == 0

        i = 0
        n = len(entries)
        while i < n:
            qe = entries[i]
            i += 1
            if qe.serviced or qe.is_store:
                continue
            entry = qe.rob
            if entry.state == COMPLETED:
                continue

            blocking_seq = unknown_seq
            if fast_fwd and qe.sp_based:
                source, conclusive = queue.fast_forward_source(qe)
                if source is not None and entry.state == DISPATCHED:
                    src_rob = source.rob
                    if src_rob.pending == 0 and src_rob.earliest <= now:
                        if ports_exhausted or not ports.try_take(
                                1, line=qe.line, is_store=False):
                            counters.add(f"stall.{qname}_port")
                            ports_exhausted = True
                            continue
                        qe.serviced = True
                        entry.state = ISSUED
                        entry.issue_time = now
                        self._schedule(entry, now + 1)
                        counters.add("lvaq.fast_forwards")
                        continue
                    continue
                if conclusive:
                    blocking_seq = nonsp_unknown_seq

            if not qe.addr_known or qe.addr_known_time > now:
                continue
            if entry.seq > blocking_seq:
                continue
            if qe.penalty and now < qe.addr_known_time + qe.penalty:
                continue
            source = queue.forward_source(qe)
            if source is not None:
                if ports_exhausted or not ports.try_take(
                        1, line=qe.line, is_store=False):
                    counters.add(f"stall.{qname}_port")
                    ports_exhausted = True
                    continue
                qe.serviced = True
                self._schedule(entry, now + 1)
                counters.add(f"{qname}.forwards")
                continue
            if ports_exhausted or not ports.try_take(
                    1, line=qe.line, is_store=False):
                counters.add(f"stall.{qname}_port")
                ports_exhausted = True
                continue
            addr = qe.word << 2
            if lvc_side:
                result = hierarchy.access_lvc(addr, False, now)
            else:
                result = hierarchy.access_l1(addr, False, now)
            qe.serviced = True
            self._schedule(entry, result.ready)
            if combining > 1:
                j = i
                while j < n and j < i + combining - 1:
                    cand = entries[j]
                    j += 1
                    if (cand.is_store or cand.serviced
                            or not cand.addr_known
                            or cand.addr_known_time > now
                            or cand.line != qe.line
                            or cand.rob.seq > unknown_seq
                            or cand.penalty
                            or cand.rob.state == COMPLETED):
                        continue
                    if queue.forward_source(cand) is not None:
                        continue
                    cand.serviced = True
                    self._schedule(cand.rob, result.ready)
                    counters.add("lvaq.load_combined")

    # ------------------------------------------------------------------ issue

    def _issue(self) -> None:
        issuable = self._issuable
        if not issuable:
            return
        now = self.now
        budget = self.config.issue_width
        fus = self.fus
        keep: List[RobEntry] = []
        issuable.sort(key=lambda e: e.seq)
        for entry in issuable:
            if entry.state != DISPATCHED:
                entry.in_issuable = False
                continue
            if budget == 0 or entry.earliest > now:
                keep.append(entry)
                continue
            fu = entry.inst.fu
            if not fus.try_take(fu, now):
                keep.append(entry)
                self.counters.add("stall.fu")
                continue
            budget -= 1
            entry.state = ISSUED
            entry.issue_time = now
            entry.in_issuable = False
            qe = entry.mem
            if qe is not None:
                if not qe.addr_known:
                    qe.addr_known_time = now + 1
                    inst = entry.inst
                    qe.word = inst.addr >> 2
                    qe.line = inst.addr >> 5
                if qe.is_store:
                    self._schedule(entry, now + 1)
            else:
                self._schedule(entry, now + LATENCY[FuClass(entry.inst.fu)])
        self._issuable = keep

    # --------------------------------------------------------------- dispatch

    def _dispatch(self, insts: Sequence[DynInst], index: int,
                  total: int) -> int:
        rob = self.rob
        counters = self.counters
        now = self.now
        penalty = self.config.decouple.mispredict_penalty
        producer = self._producer
        issuable = self._issuable
        for _ in range(self.config.issue_width):
            if index >= total:
                break
            if rob.full:
                counters.add("stall.rob_full")
                break
            inst = insts[index]
            fu = inst.fu
            is_mem = fu == _LOAD or fu == _STORE
            to_lvaq = False
            mispredicted = False
            if is_mem:
                to_lvaq, mispredicted = self.partitioner.steer(inst)
                queue = self.lvaq if to_lvaq else self.lsq
                if queue.full:
                    counters.add(f"stall.{queue.name}_full")
                    break
            entry = RobEntry(self._seq, inst)
            self._seq += 1
            pending = 0
            for reg in inst.srcs:
                if reg <= 0:
                    continue
                prod = producer[reg]
                if prod is not None and prod.state != COMPLETED:
                    prod.consumers.append(entry)
                    pending += 1
            entry.pending = pending
            entry.earliest = now + 1
            dst = inst.dst
            if dst > 0:
                producer[dst] = entry
            rob.push(entry)
            if is_mem:
                frame_key = None
                if inst.sp_based:
                    frame_key = (inst.frame_id, inst.offset)
                qe = MemQueueEntry(
                    entry,
                    fu == _STORE,
                    now,
                    sp_based=inst.sp_based,
                    frame_key=frame_key,
                    use_lvc=to_lvaq,
                    penalty=penalty if mispredicted else 0,
                )
                entry.mem = qe
                queue.append(qe)
                if qe.is_store:
                    base_reg = inst.srcs[0] if inst.srcs else 0
                    prod = producer[base_reg] if base_reg > 0 else None
                    if prod is None or prod.state == COMPLETED:
                        qe.addr_known_time = now + 1
                        qe.word = inst.addr >> 2
                        qe.line = inst.addr >> 5
                side = "lvaq" if to_lvaq else "lsq"
                counters.add(f"{side}.stores" if qe.is_store
                             else f"{side}.loads")
                if mispredicted:
                    counters.add("classify.mispredictions")
            if pending == 0:
                entry.in_issuable = True
                issuable.append(entry)
            index += 1
        return index

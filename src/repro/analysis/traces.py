"""Dynamic-trace analyses.

These reproduce the *measurements* the paper's motivation rests on:

* **reuse distance** — how soon a stored word is reloaded, which bounds
  how often an LVAQ can forward (Section 4.2.3's 50-90% figure);
* **working set** — distinct words touched, split local/non-local
  (why a 2 KB LVC suffices, Figure 3 / Section 2.2.1);
* **burstiness** — the distribution of consecutive same-kind memory runs
  (why access combining works, Section 2.2.2);
* **classification** — how the compile-time bits and the dynamic truth
  line up (the Section 2.2.3 hybrid-classification argument).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.stats.histogram import Histogram
from repro.vm.trace import DynInst


def reuse_distance_profile(insts: Iterable[DynInst],
                           local_only: bool = True) -> Histogram:
    """Instruction distance from each load back to the last store of the
    same word.

    Only loads that have seen a prior store are recorded.  Short distances
    are forwardable from the LVAQ; long ones must hit the cache.
    """
    last_store_at: Dict[int, int] = {}
    profile = Histogram()
    for index, inst in enumerate(insts):
        if not inst.is_mem:
            continue
        if local_only and not inst.is_local:
            continue
        word = inst.addr >> 2
        if inst.is_store:
            last_store_at[word] = index
        else:
            stored = last_store_at.get(word)
            if stored is not None:
                profile.add(index - stored)
    return profile


def working_set_words(insts: Iterable[DynInst]) -> Tuple[int, int]:
    """(local, non-local) distinct words touched by the trace."""
    local = set()
    other = set()
    for inst in insts:
        if not inst.is_mem:
            continue
        word = inst.addr >> 2
        if inst.is_local:
            local.add(word)
        else:
            other.add(word)
    return len(local), len(other)


def burstiness_profile(insts: Iterable[DynInst]) -> Histogram:
    """Lengths of consecutive runs of local memory references.

    A run is a maximal sequence of local loads/stores not interrupted by
    a non-local memory reference (compute instructions do not break a
    run: they don't compete for cache ports).  Long runs are what access
    combining and multi-ported LVCs exist for.
    """
    profile = Histogram()
    run = 0
    for inst in insts:
        if not inst.is_mem:
            continue
        if inst.is_local:
            run += 1
        else:
            if run:
                profile.add(run)
            run = 0
    if run:
        profile.add(run)
    return profile


class ClassificationReport:
    """How compile-time hints relate to the dynamic ground truth."""

    def __init__(self) -> None:
        self.hinted_local = 0
        self.hinted_nonlocal = 0
        self.ambiguous = 0
        self.hint_wrong = 0
        self.ambiguous_actually_local = 0

    @property
    def total(self) -> int:
        """All classified memory references."""
        return self.hinted_local + self.hinted_nonlocal + self.ambiguous

    @property
    def ambiguous_fraction(self) -> float:
        """Share of references the compiler could not classify."""
        return self.ambiguous / self.total if self.total else 0.0

    @property
    def hint_accuracy(self) -> float:
        """Correctness of the non-ambiguous compile-time bits."""
        hinted = self.hinted_local + self.hinted_nonlocal
        if not hinted:
            return 1.0
        return 1.0 - self.hint_wrong / hinted

    def __repr__(self) -> str:
        return (
            f"ClassificationReport(total={self.total}, "
            f"ambiguous={self.ambiguous_fraction:.3%}, "
            f"hint_accuracy={self.hint_accuracy:.3%})"
        )


def classification_report(insts: Iterable[DynInst]) -> ClassificationReport:
    """Audit the compile-time classification against dynamic addresses."""
    report = ClassificationReport()
    for inst in insts:
        if not inst.is_mem:
            continue
        hint: Optional[bool] = inst.local_hint
        if hint is None:
            report.ambiguous += 1
            if inst.is_local:
                report.ambiguous_actually_local += 1
        elif hint:
            report.hinted_local += 1
            if not inst.is_local:
                report.hint_wrong += 1
        else:
            report.hinted_nonlocal += 1
            if inst.is_local:
                report.hint_wrong += 1
    return report

"""Trace analysis tools: the measurements behind the paper's Section 2."""

from repro.analysis.traces import (
    burstiness_profile,
    classification_report,
    reuse_distance_profile,
    working_set_words,
)

__all__ = [
    "burstiness_profile",
    "classification_report",
    "reuse_distance_profile",
    "working_set_words",
]

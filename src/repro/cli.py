"""Command-line toolchain driver: ``repro-cc``.

Subcommands:

* ``run file.mc``      — compile a mini-C file and execute it on the VM;
* ``disasm file.mc``   — compile and print the generated assembly;
* ``sim file.mc``      — compile, execute, and time the committed stream
  on one or more ``(N+M)`` machine configurations;
* ``stats file.mc``    — trace characterisation (local fraction, frames,
  reuse, classification);
* ``perf``             — benchmark the simulator core itself against the
  frozen seed model (see :mod:`repro.perf`);
* ``fuzz``             — differential fuzzing campaign: random programs
  checked by the ``opt``/``timing``/``golden``/``analyze``/``replay``/
  ``tv`` oracles (see :mod:`repro.fuzz`);
* ``trace``            — capture, inspect, replay, and mix serialized
  traces (see :mod:`repro.trace` and docs/trace.md);
* ``analyze``          — static verification: stack discipline, frame
  metadata, ``local_hint`` soundness, IR lints, a dynamic cross-check,
  and (with ``--tv``) translation validation of the SSA optimization
  pipeline (see :mod:`repro.analyze` and docs/static_analysis.md).

``file.mc`` may be ``-`` to read from stdin.  Assembly files (``.s``) are
accepted everywhere a ``.mc`` file is.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Tuple

from repro.analysis import classification_report, reuse_distance_profile
from repro.asm import assemble
from repro.core import MachineConfig, Processor
from repro.errors import ReproError
from repro.isa.disasm import disassemble_program
from repro.isa.program import Program
from repro.lang import CompilerOptions, compile_source
from repro.lang.frontend import CompileStats
from repro.vm.machine import Machine


def _load_source(path: str) -> Tuple[str, str]:
    if path == "-":
        return sys.stdin.read(), "<stdin>"
    with open(path, "r") as handle:
        return handle.read(), path


def _build_text(source: str, name: str, optimize: bool = True,
                opt_level=None) -> Tuple[Program, CompileStats]:
    stats = CompileStats()
    if name.endswith(".s"):
        program = assemble(source, source_name=name)
    else:
        program = compile_source(
            source, CompilerOptions(source_name=name, optimize=optimize,
                                    opt_level=opt_level),
            stats=stats,
        )
    return program, stats


def _build(path: str, optimize: bool = True,
           opt_level=None) -> Tuple[Program, CompileStats]:
    source, name = _load_source(path)
    return _build_text(source, name, optimize, opt_level)


def _opt_level(args):
    """Resolve -O / --no-opt into the CompilerOptions opt_level."""
    if args.opt_level is not None:
        return args.opt_level
    return 0 if args.no_opt else None  # None -> compiler default (O2)


def _parse_config(text: str) -> MachineConfig:
    """Parse "N+M[:opt]" — e.g. "2+0", "3+2", "2+2:opt"."""
    from repro.runtime.job import parse_notation

    return parse_notation(text)


def cmd_run(args) -> int:
    program, _ = _build(args.file, optimize=not args.no_opt,
                        opt_level=_opt_level(args))
    vm = Machine(program, trace=False)
    code = vm.run(max_instructions=args.max_instructions)
    sys.stdout.write(vm.stdout)
    if code == -1:
        print(f"\n[stopped after {args.max_instructions} instructions]",
              file=sys.stderr)
        return 2
    return code


def cmd_disasm(args) -> int:
    program, stats = _build(args.file, optimize=not args.no_opt,
                            opt_level=_opt_level(args))
    print(disassemble_program(program))
    if stats.functions:
        print(f"\n# {stats.functions} functions, "
              f"{stats.instructions} instructions, "
              f"{stats.spilled_vregs} spilled vregs", file=sys.stderr)
    return 0


def cmd_sim(args) -> int:
    source, name = _load_source(args.file)
    program, _ = _build_text(source, name, optimize=not args.no_opt,
                             opt_level=_opt_level(args))
    vm = Machine(program, trace=True)
    vm.run(max_instructions=args.max_instructions)
    trace = vm.trace
    assert trace is not None
    print(f"{len(trace)} dynamic instructions "
          f"({trace.stats.local_fraction:.0%} of memory refs local)")
    configs = [(text, _parse_config(text)) for text in args.config]
    for _text, config in configs:
        if args.ports:
            config.mem.l1_port_policy = args.ports
            config.mem.lvc_port_policy = args.ports
        if args.frontend:
            config.frontend.policy = args.frontend
    results: List[Tuple[str, float]] = []
    for text, result in _sim_results(args, source, trace, configs):
        results.append((text, result.ipc))
        print(f"  ({text:8s}) IPC {result.ipc:6.3f}   "
              f"cycles {result.cycles}")
    if len(results) > 1:
        base = results[0][1]
        best = max(results[1:], key=lambda r: r[1])
        print(f"best vs {results[0][0]}: {best[0]} "
              f"({best[1] / base - 1:+.1%})")
    return 0


def _sim_results(args, source, trace, configs):
    """Yield (config text, SimResult) — on a worker pool when --jobs > 1."""
    if getattr(args, "jobs", 1) > 1 and len(configs) > 1:
        from repro.runtime.engine import JobEngine
        from repro.runtime.job import SimJob
        from repro.runtime.worker import seed_source_trace

        jobs = {}
        for text, config in configs:
            job = SimJob(args.file, config, source_text=source,
                         optimize=not args.no_opt,
                         opt_level=_opt_level(args),
                         max_instructions=args.max_instructions)
            # Fork-started workers inherit this memo, so they skip the
            # recompile/re-execute and go straight to timing simulation.
            seed_source_trace(job, trace)
            jobs[text] = job
        report = JobEngine(jobs=args.jobs).run(jobs.values())
        for outcome in report.failed:
            raise ReproError(
                f"simulation failed for {outcome.job.label()}: "
                f"{outcome.error}")
        for text, _config in configs:
            yield text, report.outcomes[jobs[text].key].result
    else:
        for text, config in configs:
            yield text, Processor(config).run(trace.insts, args.file)


def cmd_stats(args) -> int:
    program, _ = _build(args.file, optimize=not args.no_opt,
                        opt_level=_opt_level(args))
    vm = Machine(program, trace=True)
    vm.run(max_instructions=args.max_instructions)
    trace = vm.trace
    assert trace is not None
    stats = trace.stats
    print(f"instructions : {stats.instructions}")
    print(f"loads/stores : {stats.loads}/{stats.stores}")
    print(f"local refs   : {stats.local_refs} "
          f"({stats.local_fraction:.1%} of memory refs)")
    print(f"calls        : {stats.calls} (max depth {stats.max_call_depth})")
    if stats.frame_sizes.total:
        print(f"frame words  : mean {stats.frame_sizes.mean():.1f}, "
              f"max {stats.frame_sizes.max()}")
    reuse = reuse_distance_profile(trace.insts)
    if reuse.total:
        print(f"reuse dist   : p50 {reuse.percentile(0.5)} instructions")
    report = classification_report(trace.insts)
    print(f"ambiguous    : {report.ambiguous_fraction:.2%} of refs "
          f"(hints {report.hint_accuracy:.2%} correct)")
    return 0


def cmd_perf(args) -> int:
    from repro.perf import bench

    if args.emit_kernel:
        from repro.core.stages.specialize import emit_source
        from repro.perf.golden import golden_config

        print(emit_source(golden_config(args.emit_kernel)))
        return 0
    if args.profile:
        print(bench.profile_run(args.profile, length=args.length,
                                seed=args.seed))
        return 0
    workloads = args.workloads or (
        bench.QUICK_WORKLOADS if args.quick else bench.DEFAULT_WORKLOADS)
    length = args.length
    if length is None:
        length = bench.QUICK_LENGTH if args.quick else bench.DEFAULT_LENGTH
    report = bench.run_benchmark(
        workloads=workloads,
        config_name=args.config,
        length=length,
        seed=args.seed,
        warmup=args.warmup,
        repeat=args.repeat,
        compare=not args.no_compare,
        replay=args.replay,
        min_repeat=args.min_repeat,
    )
    print(bench.format_report(report))
    if args.output:
        bench.write_report(report, args.output)
        print(f"\nwrote {args.output}")
    if args.check:
        baseline = bench.load_report(args.check)
        failures = bench.check_regression(report, baseline,
                                          tolerance=args.tolerance)
        for failure in failures:
            print(f"repro-cc perf: {failure}", file=sys.stderr)
        if failures:
            return 1
    return 0


def cmd_fuzz(args) -> int:
    import os

    from repro.fuzz import (ALL_ORACLES, generate_program, run_campaign,
                            run_oracles, shrink)

    oracles = tuple(args.oracle) if args.oracle else ALL_ORACLES

    def progress(status, outcome, done, total):
        if not args.quiet:
            print(f"  [{done}/{total}] {outcome.job.label()}: {status}",
                  file=sys.stderr)

    report = run_campaign(
        seed=args.seed, count=args.count, jobs=args.jobs, oracles=oracles,
        size=args.size, shard_size=args.shard_size,
        max_instructions=args.max_instructions, cache_dir=args.cache_dir,
        no_cache=args.no_cache, progress=progress,
    )
    engine = report.engine_report
    print(f"fuzzed {args.count} seeds from {args.seed} "
          f"({'+'.join(oracles)}): {len(report.divergences)} divergences, "
          f"{engine.ran} shards ran, {engine.cached} cached, "
          f"{len(engine.failed)} failed, {engine.elapsed:.1f}s")
    for outcome in engine.failed:
        print(f"repro-cc fuzz: shard {outcome.job.label()} "
              f"{outcome.status}: {outcome.error}", file=sys.stderr)
    for div in report.divergences:
        print(f"  seed {div.seed} [{div.oracle}] {div.detail}")
    if report.clean:
        return 0

    # The shrink predicate ignores "budget" findings: a candidate edit that
    # turns a miscompile into an infinite loop must be rejected, not kept.
    # The tight budget also makes those runaway candidates cheap to reject
    # (generated programs retire well under 100k instructions).
    shrink_budget = min(args.max_instructions, 200_000)

    def diverges(program) -> bool:
        try:
            found = run_oracles(program.source(), oracles=oracles,
                                max_instructions=shrink_budget)
        except Exception:  # noqa: BLE001 - broken candidate = not diverging
            return False
        return any(d.oracle != "budget" for d in found)

    for seed in report.diverging_seeds():
        program = generate_program(seed, size=args.size)
        if args.shrink:
            before = program.statement_count()
            program = shrink(program, diverges)
            print(f"\nseed {seed}: shrunk {before} -> "
                  f"{program.statement_count()} statements")
            print(program.source())
        if args.save_repros:
            os.makedirs(args.save_repros, exist_ok=True)
            path = os.path.join(args.save_repros, f"fuzz_{seed}.mc")
            header = (f"// repro-cc fuzz --seed {seed} --count 1"
                      f"{' (shrunk)' if args.shrink else ''}\n"
                      f"// oracles: {'+'.join(oracles)}\n")
            with open(path, "w") as handle:
                handle.write(header + program.source())
            print(f"wrote {path}")
    return 1


def cmd_trace(args) -> int:
    import json

    if args.verb == "capture":
        from repro.trace.capture import TraceJob, capture_trace
        from repro.trace.format import write_trace

        job = TraceJob(args.workload, scale=args.scale, seed=args.seed)
        if args.output:
            from repro.trace.capture import build_capture

            write_trace(build_capture(job), args.output,
                        meta=job.describe())
            print(f"captured {args.workload} -> {args.output}")
            return 0
        path, cached = capture_trace(job, cache_dir=args.cache_dir,
                                     force=args.force)
        print(f"{'cached' if cached else 'captured'} {args.workload} "
              f"-> {path}")
        return 0

    if args.verb == "info":
        from repro.trace.format import trace_info

        print(json.dumps(trace_info(args.path), indent=2))
        return 0

    if args.verb == "replay":
        from repro.perf.golden import diff_results
        from repro.trace.capture import TraceJob, build_capture
        from repro.trace.replay import load_trace, replay

        trace = load_trace(args.path)
        print(f"{trace.name}: {len(trace)} dynamic instructions")
        failures = 0
        for text in (args.config or ["2+0", "2+2:opt"]):
            config = _parse_config(text)
            result = replay(trace, config)
            print(f"  ({text:8s}) IPC {result.ipc:6.3f}   "
                  f"cycles {result.cycles}")
            if args.check:
                job = TraceJob(trace.name, scale=args.scale,
                               seed=args.seed)
                direct = Processor(_parse_config(text)).run(
                    build_capture(job).insts, trace.name)
                mismatches = diff_results(trace.name, text, direct, result)
                for mismatch in mismatches:
                    print(f"    MISMATCH {mismatch!r}", file=sys.stderr)
                failures += len(mismatches)
                if not mismatches:
                    print(f"    bit-identical to execution-driven run")
        return 1 if failures else 0

    # verb == "mix"
    from repro.runtime.job import MixJob
    from repro.trace.mix import run_mix_jobs

    config = _parse_config(args.config)
    job = MixJob(tuple(args.workloads), config, scale=args.scale,
                 seed=args.seed)
    (_job, result), = run_mix_jobs(
        [job], engine_jobs=1, cache_dir=args.cache_dir)
    print(f"mix of {len(result.programs)} programs on ({args.config}): "
          f"{result.cycles} cycles")
    for program in result.programs:
        counters = program.counters
        print(f"  {program.workload_name:15s} IPC {program.ipc:6.3f}  "
              f"cycles {program.cycles:8d}  "
              f"bus-conflict stalls {counters.get('mix.bus_conflict_stalls')}  "
              f"L2 evictions caused/suffered "
              f"{counters.get('mix.l2_evictions_caused')}/"
              f"{counters.get('mix.l2_evictions_suffered')}")
    return 0


def cmd_analyze(args) -> int:
    import json

    from repro.analyze import (analyze_program, analyze_source,
                               analyze_workload)
    from repro.workloads.minic import MINIC_PROGRAMS

    targets = list(args.targets)
    if args.workloads:
        targets.extend(sorted(MINIC_PROGRAMS))
    if not targets:
        print("repro-cc analyze: no targets (give files, workload names, "
              "or --workloads)", file=sys.stderr)
        return 2

    reports = []
    verify = "tv" if args.tv else "off"
    for target in targets:
        if target in MINIC_PROGRAMS:
            report = analyze_workload(
                target, optimize=not args.no_opt,
                opt_level=_opt_level(args),
                static_only=args.static_only,
                max_instructions=args.max_instructions,
                verify=verify)
        else:
            source, name = _load_source(target)
            if name.endswith(".s"):
                # Hand-written assembly carries no frame metadata; the
                # analyzer degrades to a note and skips machine checks.
                program = assemble(source, source_name=name)
                report = analyze_program(program, name=name)
            else:
                report = analyze_source(
                    source, name=name, optimize=not args.no_opt,
                    opt_level=_opt_level(args),
                    static_only=args.static_only,
                    max_instructions=args.max_instructions,
                    verify=verify)
        reports.append(report)

    if args.json:
        print(json.dumps([r.describe() for r in reports], indent=2))
    else:
        for report in reports:
            print(report.render_text(verbose=args.verbose))
    failed = [r for r in reports if not r.ok]
    if args.strict:
        failed = [r for r in reports if not r.ok or r.warnings]
    return 1 if failed else 0


def cmd_serve(args) -> int:
    from repro.runtime.service import serve_forever

    return serve_forever(
        host=args.host, port=args.port, jobs=args.jobs,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        timeout=args.timeout, retries=args.retries, batch=args.batch)


def cmd_sweep(args) -> int:
    from repro.runtime.sweep import (SweepSpec, expand, format_report,
                                     run_sweep)

    spec = SweepSpec(
        workloads=args.workloads,
        configs=args.config or ["2+0", "2+2:opt"],
        frontends=args.frontend or [None],
        lvaq_sizes=args.lvaq or [None],
        opt_levels=args.opt_levels or [None],
        scale=args.scale, seed=args.seed)
    if args.dry_run:
        import json

        for payload in expand(spec):
            print(json.dumps(payload, sort_keys=True))
        return 0

    def progress(status, outcome, done, total):
        if not args.quiet:
            print(f"  [{done}/{total}] {outcome.job.label()}: {status}",
                  file=sys.stderr)

    report = run_sweep(
        spec, jobs=args.jobs, cache_dir=args.cache_dir,
        no_cache=args.no_cache, timeout=args.timeout,
        budget_points=args.budget_points,
        budget_seconds=args.budget_seconds,
        manifest_path=args.manifest, service_url=args.service,
        chunk=args.chunk, progress=progress)
    print(format_report(spec, report))
    return 0 if report.failed == 0 else 1


def _human_bytes(count: int) -> str:
    size = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            return f"{size:.1f}{unit}" if unit != "B" else f"{int(size)}B"
        size /= 1024
    return f"{count}B"


def _parse_bytes(text: str) -> int:
    """Parse "500M"/"2G"/"100K"/plain-integer size arguments."""
    body = text.strip().upper().rstrip("IB")
    factor = 1
    for suffix, mult in (("K", 1024), ("M", 1024 ** 2), ("G", 1024 ** 3)):
        if body.endswith(suffix):
            factor = mult
            body = body[:-1]
            break
    try:
        return int(float(body) * factor)
    except ValueError:
        raise ReproError(f"bad size {text!r}; expected e.g. "
                         f"500M, 2G, or a byte count") from None


def cmd_cache(args) -> int:
    import json as _json

    from repro.runtime.store import ResultStore, default_cache_dir
    from repro.runtime.signature import code_salt

    root = args.cache_dir or default_cache_dir()
    store = ResultStore(root, args.salt or code_salt())

    if args.verb == "stats":
        stats = store.disk_stats()
        print(f"store    : {stats['dir']}")
        print(f"entries  : {stats['entries']} "
              f"({_human_bytes(stats['bytes'])}, "
              f"{stats['hits']} recorded hits)")
        for kind, count in sorted(stats["kinds"].items()):
            print(f"  kind {kind:8s}: {count}")
        if args.verbose:
            for shard, agg in sorted(stats["shards"].items()):
                print(f"  shard {shard}: {agg['entries']} entries, "
                      f"{_human_bytes(agg['bytes'])}, "
                      f"{agg['hits']} hits")
        return 0

    if args.verb == "verify":
        problems = store.verify()
        checked = store.disk_stats()["entries"]
        if not problems:
            print(f"verified {checked} entries: all payloads hash, "
                  f"unpickle, and type-check")
            return 0
        for problem in problems:
            print(f"repro-cc cache: {problem.shard}/{problem.key[:12]}: "
                  f"{problem.issue}", file=sys.stderr)
        print(f"verified {checked} entries: {len(problems)} corrupt")
        return 1

    # verb == "gc"
    budget = _parse_bytes(args.budget)
    report = store.gc(budget, dry_run=args.dry_run)
    verb = "would evict" if args.dry_run else "evicted"
    print(f"{verb} {len(report['evicted'])} entries "
          f"({_human_bytes(report['freed_bytes'])}); "
          f"{report['kept']} kept, "
          f"{_human_bytes(report['bytes_after'])} / "
          f"{_human_bytes(budget)} budget")
    if args.json:
        print(_json.dumps(report, indent=2, sort_keys=True))
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cc",
        description="mini-C toolchain driver for the repro library",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("file", help="mini-C source (.mc), assembly (.s), "
                                    "or - for stdin")
        p.add_argument("--no-opt", action="store_true",
                       help="disable the IR optimizer (same as -O0)")
        p.add_argument("-O", dest="opt_level", metavar="LEVEL",
                       default=None,
                       help="optimization level O0/O1/O2: 0=none, "
                            "1=local folder, 2=full SSA pipeline "
                            "(default 2); unknown levels are rejected")
        p.add_argument("--max-instructions", type=int, default=5_000_000,
                       help="execution budget (default 5M)")

    run_p = sub.add_parser("run", help="compile and execute")
    add_common(run_p)
    run_p.set_defaults(func=cmd_run)

    dis_p = sub.add_parser("disasm", help="compile and print assembly")
    add_common(dis_p)
    dis_p.set_defaults(func=cmd_disasm)

    sim_p = sub.add_parser("sim", help="compile, execute, and time")
    add_common(sim_p)
    sim_p.add_argument(
        "--config", action="append",
        default=None,
        help="machine config N+M[:opt]; repeatable "
             "(default: 2+0 and 2+2:opt)",
    )
    sim_p.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="simulate the configs on N worker processes",
    )
    from repro.core.frontend import FRONTEND_POLICIES
    from repro.mem.ports import PORT_POLICIES
    sim_p.add_argument(
        "--ports", choices=sorted(PORT_POLICIES), default=None,
        help="port-arbitration policy for every config "
             "(default: each config's own, normally ideal)",
    )
    sim_p.add_argument(
        "--frontend", choices=sorted(FRONTEND_POLICIES), default=None,
        help="frontend timing policy for every config "
             "(default: perfect)",
    )
    sim_p.set_defaults(func=cmd_sim)

    stats_p = sub.add_parser("stats", help="trace characterisation")
    add_common(stats_p)
    stats_p.set_defaults(func=cmd_stats)

    perf_p = sub.add_parser(
        "perf", help="benchmark the simulator core vs the seed model")
    perf_p.add_argument("--quick", action="store_true",
                        help="small workload subset at a shorter length")
    perf_p.add_argument("--workloads", nargs="+", metavar="NAME",
                        help="explicit workload list (default: SPEC95 set)")
    perf_p.add_argument("--config", default="2+2:opt",
                        help="golden config notation (default 2+2:opt, "
                             "the paper's Figure 9 machine)")
    perf_p.add_argument("--length", type=int, default=None,
                        help="dynamic instructions per workload")
    perf_p.add_argument("--seed", type=int, default=1,
                        help="trace-generation seed")
    perf_p.add_argument("--warmup", type=int, default=1,
                        help="discarded rounds per workload (default 1)")
    perf_p.add_argument("--repeat", type=int, default=3,
                        help="timed rounds per workload (default 3)")
    perf_p.add_argument("--min-repeat", type=int, default=0,
                        help="floor on timed rounds (reduces noise in the "
                             "trimmed-mean numbers without editing "
                             "--repeat everywhere)")
    perf_p.add_argument("--no-compare", action="store_true",
                        help="time only the optimized core")
    perf_p.add_argument("--replay", action="store_true",
                        help="also benchmark trace replay vs "
                             "execution-driven simulation")
    perf_p.add_argument("--output", metavar="PATH",
                        help="write BENCH_core.json here")
    perf_p.add_argument("--check", metavar="BASELINE",
                        help="fail if throughput regresses vs this "
                             "BENCH_core.json")
    perf_p.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional regression for --check "
                             "(default 0.20)")
    perf_p.add_argument("--profile", metavar="WORKLOAD",
                        help="cProfile one workload instead of benchmarking")
    perf_p.add_argument("--emit-kernel", metavar="CONFIG",
                        help="print the constant-folded kernel source "
                             "generated for a golden config notation "
                             "(e.g. 2+2:opt) and exit")
    perf_p.set_defaults(func=cmd_perf)

    fuzz_p = sub.add_parser(
        "fuzz", help="differential fuzzing campaign over random programs")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="first generator seed (default 0)")
    fuzz_p.add_argument("--count", type=int, default=200,
                        help="number of seeds to fuzz (default 200)")
    fuzz_p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="run shards on N worker processes")
    fuzz_p.add_argument("--oracle", action="append", metavar="NAME",
                        choices=("opt", "timing", "golden", "analyze",
                                 "replay", "tv"),
                        help="oracle to run (repeatable; default: all)")
    fuzz_p.add_argument("--shrink", action="store_true",
                        help="minimize each diverging program and print it")
    fuzz_p.add_argument("--save-repros", metavar="DIR",
                        help="write diverging programs to DIR as .mc files")
    fuzz_p.add_argument("--size", type=int, default=12,
                        help="generator size budget per program (default 12)")
    fuzz_p.add_argument("--shard-size", type=int, default=25,
                        help="seeds per engine job (default 25)")
    fuzz_p.add_argument("--max-instructions", type=int, default=2_000_000,
                        help="VM budget per build (default 2M)")
    fuzz_p.add_argument("--cache-dir", metavar="DIR",
                        help="shard result cache (default: $REPRO_CACHE_DIR "
                             "if set, else uncached)")
    fuzz_p.add_argument("--no-cache", action="store_true",
                        help="ignore any cache")
    fuzz_p.add_argument("--quiet", action="store_true",
                        help="suppress per-shard progress on stderr")
    fuzz_p.set_defaults(func=cmd_fuzz)

    trace_p = sub.add_parser(
        "trace",
        help="capture, inspect, replay, and mix serialized traces")
    trace_sub = trace_p.add_subparsers(dest="verb", required=True)

    cap_p = trace_sub.add_parser(
        "capture", help="run the functional frontend once, serialize")
    cap_p.add_argument("workload", help="workload name (e.g. 130.li, "
                                        "mini.qsort)")
    cap_p.add_argument("--scale", type=float, default=1.0,
                       help="workload length scale (default 1.0)")
    cap_p.add_argument("--seed", type=int, default=1,
                       help="trace-generation seed (default 1)")
    cap_p.add_argument("--cache-dir", metavar="DIR",
                       help="trace store root (default: $REPRO_CACHE_DIR "
                            "or ~/.cache/repro)")
    cap_p.add_argument("--force", action="store_true",
                       help="re-capture even when the store has it")
    cap_p.add_argument("--output", metavar="PATH",
                       help="write to PATH instead of the store")
    cap_p.set_defaults(func=cmd_trace)

    info_p = trace_sub.add_parser(
        "info", help="dump a trace file's header (version, sections)")
    info_p.add_argument("path", help="trace file")
    info_p.set_defaults(func=cmd_trace)

    rep_p = trace_sub.add_parser(
        "replay", help="trace-driven simulation from a captured file")
    rep_p.add_argument("path", help="trace file")
    rep_p.add_argument("--config", action="append",
                       default=None,
                       help="machine config N+M[:opt]; repeatable "
                            "(default: 2+0 and 2+2:opt)")
    rep_p.add_argument("--check", action="store_true",
                       help="also run execution-driven and require "
                            "bit-identical results")
    rep_p.add_argument("--scale", type=float, default=1.0,
                       help="workload scale for --check rebuilds")
    rep_p.add_argument("--seed", type=int, default=1,
                       help="workload seed for --check rebuilds")
    rep_p.set_defaults(func=cmd_trace)

    mix_p = trace_sub.add_parser(
        "mix", help="co-schedule N programs sharing the L2 and bus")
    mix_p.add_argument("workloads", nargs="+", metavar="WORKLOAD",
                       help="two or more workload names")
    mix_p.add_argument("--config", default="2+2:opt",
                       help="machine config N+M[:opt] (default 2+2:opt)")
    mix_p.add_argument("--scale", type=float, default=1.0,
                       help="workload length scale (default 1.0)")
    mix_p.add_argument("--seed", type=int, default=1,
                       help="trace-generation seed (default 1)")
    mix_p.add_argument("--cache-dir", metavar="DIR",
                       help="mix result cache (default: $REPRO_CACHE_DIR "
                            "if set, else uncached)")
    mix_p.set_defaults(func=cmd_trace)

    ana_p = sub.add_parser(
        "analyze",
        help="verify stack discipline, frame metadata, and local hints")
    ana_p.add_argument("targets", nargs="*", metavar="TARGET",
                       help="mini-C file (.mc), assembly (.s), - for "
                            "stdin, or a workload name (e.g. mini.qsort)")
    ana_p.add_argument("--workloads", action="store_true",
                       help="also verify every built-in mini workload")
    ana_p.add_argument("--no-opt", action="store_true",
                       help="disable the IR optimizer (same as -O0)")
    ana_p.add_argument("-O", dest="opt_level", metavar="LEVEL",
                       default=None,
                       help="optimization level O0/O1/O2: 0=none, "
                            "1=local folder, 2=full SSA pipeline "
                            "(default 2); unknown levels are rejected")
    ana_p.add_argument("--tv", action="store_true",
                       help="translation validation: certify every SSA "
                            "pass application (adds tv.* metrics; "
                            "findings are errors)")
    ana_p.add_argument("--static-only", action="store_true",
                       help="skip the VM run / dynamic cross-check")
    ana_p.add_argument("--max-instructions", type=int, default=20_000_000,
                       help="VM budget for the cross-check (default 20M)")
    ana_p.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")
    ana_p.add_argument("--verbose", action="store_true",
                       help="include note-severity diagnostics")
    ana_p.add_argument("--strict", action="store_true",
                       help="treat warnings as failures")
    ana_p.set_defaults(func=cmd_analyze)

    serve_p = sub.add_parser(
        "serve", help="run the local async job service (see docs/runtime.md)")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=7399,
                         help="TCP port (default 7399; 0 = ephemeral)")
    serve_p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                         help="warm worker-pool size (default 1)")
    serve_p.add_argument("--cache-dir", metavar="DIR",
                         help="result store root (default: "
                              "$REPRO_CACHE_DIR if set, else uncached)")
    serve_p.add_argument("--no-cache", action="store_true",
                         help="disable the result store")
    serve_p.add_argument("--timeout", type=float, default=None,
                         help="per-job deadline in seconds")
    serve_p.add_argument("--retries", type=int, default=1,
                         help="retries per failed job (default 1)")
    serve_p.add_argument("--batch", type=int, default=1,
                         help="jobs per worker round trip (default 1)")
    serve_p.set_defaults(func=cmd_serve)

    sweep_p = sub.add_parser(
        "sweep",
        help="budgeted design-space sweep: ports x frontend x LVAQ x opt")
    sweep_p.add_argument("workloads", nargs="+", metavar="WORKLOAD",
                         help="workload names (e.g. mini.qsort 130.li)")
    sweep_p.add_argument("--config", action="append", metavar="N+M[:opt]",
                         help="port configuration axis; repeatable "
                              "(default: 2+0 and 2+2:opt)")
    sweep_p.add_argument("--frontend", action="append", metavar="POLICY",
                         help="frontend-policy axis; repeatable "
                              "(default: each config's own)")
    sweep_p.add_argument("--lvaq", action="append", type=int,
                         metavar="SIZE",
                         help="LVAQ-size axis; repeatable "
                              "(default: each config's own)")
    sweep_p.add_argument("--opt-level", action="append", type=int,
                         dest="opt_levels", metavar="LEVEL",
                         help="compiler opt-level axis (mini-C only); "
                              "repeatable")
    sweep_p.add_argument("--scale", type=float, default=1.0,
                         help="workload length scale (default 1.0)")
    sweep_p.add_argument("--seed", type=int, default=1,
                         help="trace-generation seed (default 1)")
    sweep_p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                         help="worker processes for the local engine")
    sweep_p.add_argument("--cache-dir", metavar="DIR",
                         help="result store root (default: "
                              "$REPRO_CACHE_DIR if set, else uncached)")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="ignore the result store")
    sweep_p.add_argument("--timeout", type=float, default=None,
                         help="per-point deadline in seconds")
    sweep_p.add_argument("--budget-points", type=int, default=None,
                         help="stop after this many executed points")
    sweep_p.add_argument("--budget-seconds", type=float, default=None,
                         help="stop starting new work after this long")
    sweep_p.add_argument("--manifest", metavar="PATH",
                         help="resumable sweep manifest (JSON); re-run "
                              "with the same path to continue")
    sweep_p.add_argument("--service", metavar="URL",
                         help="submit points to a running repro-cc serve "
                              "instead of simulating locally")
    sweep_p.add_argument("--chunk", type=int, default=8,
                         help="points per engine/service batch (default 8)")
    sweep_p.add_argument("--dry-run", action="store_true",
                         help="print the expanded job payloads and exit")
    sweep_p.add_argument("--quiet", action="store_true",
                         help="suppress per-point progress on stderr")
    sweep_p.set_defaults(func=cmd_sweep)

    cache_p = sub.add_parser(
        "cache", help="inspect, verify, and garbage-collect the result store")
    cache_sub = cache_p.add_subparsers(dest="verb", required=True)

    def add_cache_common(p):
        p.add_argument("--cache-dir", metavar="DIR",
                       help="store root (default: $REPRO_CACHE_DIR or "
                            "~/.cache/repro)")
        p.add_argument("--salt", metavar="SALT",
                       help="code-salt tree to operate on "
                            "(default: the current code salt)")

    cstats_p = cache_sub.add_parser(
        "stats", help="shard sizes, entry counts, per-kind breakdown")
    add_cache_common(cstats_p)
    cstats_p.add_argument("--verbose", action="store_true",
                          help="per-shard breakdown")
    cstats_p.set_defaults(func=cmd_cache)

    cverify_p = cache_sub.add_parser(
        "verify", help="integrity-check every payload (hash, unpickle, "
                       "type); corrupt entries reported, not fatal")
    add_cache_common(cverify_p)
    cverify_p.set_defaults(func=cmd_cache)

    cgc_p = cache_sub.add_parser(
        "gc", help="evict least-recently-used entries to a size budget")
    add_cache_common(cgc_p)
    cgc_p.add_argument("--budget", required=True, metavar="SIZE",
                       help="target store size, e.g. 500M, 2G, or bytes")
    cgc_p.add_argument("--dry-run", action="store_true",
                       help="report what would be evicted; delete nothing")
    cgc_p.add_argument("--json", action="store_true",
                       help="also print the full GC report as JSON")
    cgc_p.set_defaults(func=cmd_cache)
    return parser


def main(argv=None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    if getattr(args, "config", None) is None and args.command == "sim":
        args.config = ["2+0", "2+2:opt"]
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"repro-cc: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"repro-cc: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())

"""Greedy test-case minimization for diverging fuzz programs.

Given a :class:`~repro.fuzz.generator.FuzzProgram` and a predicate that
answers "does this program still diverge?", the shrinker repeatedly
applies the cheapest simplification that preserves the divergence:

1. **statement deletion** — every statement position, innermost blocks
   included, is tried once per round;
2. **block flattening** — an ``if`` is replaced by one of its branches, a
   loop's trip count is cut to 1;
3. **expression simplification** — a binary node collapses to one of its
   children, calls and loads collapse to a literal;
4. **dead helper removal** — functions no longer called are dropped.

Every edit is applied in place and undone when the predicate stops
holding, so one round costs one compile+run per candidate edit.  Programs
that stop *compiling* (a deleted declaration, say) simply fail the
predicate — callers should wrap their divergence test to treat any
toolchain error as "not diverging".

The loop runs to a fixpoint: a round that changes nothing ends the
shrink.  Greedy first-fit is not optimal, but on folder-style miscompiles
it reliably turns a ~60-statement program into a handful of lines.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator, List, Tuple

from repro.fuzz.generator import FuzzFunction, FuzzProgram

Predicate = Callable[[FuzzProgram], bool]

#: Expression slots per statement kind (index into the statement list).
_EXPR_SLOTS = {
    "decl": (2,), "assign": (2,), "astore": (2, 3), "print": (1,),
    "if": (1,), "ret": (1,),
}


def shrink(program: FuzzProgram, diverges: Predicate,
           max_rounds: int = 12) -> FuzzProgram:
    """A minimized copy of *program* that still satisfies *diverges*."""
    program = copy.deepcopy(program)
    if not diverges(program):
        raise ValueError("program does not diverge to begin with")
    for _ in range(max_rounds):
        changed = (_pass_delete_statements(program, diverges)
                   + _pass_flatten_blocks(program, diverges)
                   + _pass_simplify_expressions(program, diverges)
                   + _pass_drop_dead_functions(program, diverges)
                   + _pass_drop_dead_globals(program, diverges))
        if not changed:
            break
    return program


# -- statement-level passes ----------------------------------------------------


def _blocks(program: FuzzProgram) -> Iterator[List[list]]:
    """Every statement list, innermost first (deletion cascades upward)."""
    stack: List[List[list]] = list(program.bodies())
    ordered: List[List[list]] = []
    while stack:
        body = stack.pop()
        ordered.append(body)
        for stmt in body:
            if stmt[0] == "if":
                stack.extend((stmt[2], stmt[3]))
            elif stmt[0] == "loop":
                stack.append(stmt[3])
    return reversed(ordered)


def _pass_delete_statements(program: FuzzProgram,
                            diverges: Predicate) -> int:
    removed = 0
    for body in _blocks(program):
        index = len(body) - 1
        while index >= 0:
            stmt = body[index]
            if stmt[0] == "ret":
                index -= 1  # a helper must keep its final return
                continue
            del body[index]
            if diverges(program):
                removed += 1
            else:
                body.insert(index, stmt)
            index -= 1
    return removed


def _pass_flatten_blocks(program: FuzzProgram, diverges: Predicate) -> int:
    changed = 0
    for body in _blocks(program):
        for index, stmt in enumerate(list(body)):
            if index >= len(body) or body[index] is not stmt:
                continue
            if stmt[0] == "if":
                for branch in (stmt[2], stmt[3]):
                    body[index:index + 1] = branch or []
                    if diverges(program):
                        changed += 1
                        break
                    body[index:index + len(branch or [])] = [stmt]
            elif stmt[0] == "loop" and stmt[2] > 1:
                original = stmt[2]
                stmt[2] = 1
                if diverges(program):
                    changed += 1
                else:
                    stmt[2] = original
    return changed


def _pass_drop_dead_functions(program: FuzzProgram,
                              diverges: Predicate) -> int:
    called = set()
    for body in _blocks(program):
        for stmt in body:
            for slot in _EXPR_SLOTS.get(stmt[0], ()):
                _collect_calls(stmt[slot], called)
    dropped = 0
    for func in list(program.functions):
        if func.name in called:
            continue
        index = program.functions.index(func)
        program.functions.remove(func)
        if diverges(program):
            dropped += 1
        else:  # pragma: no cover - only if the predicate is call-sensitive
            program.functions.insert(index, func)
    return dropped


def _pass_drop_dead_globals(program: FuzzProgram,
                            diverges: Predicate) -> int:
    dropped = 0
    for names in (program.arrays, program.globals):
        for name in list(names):
            index = names.index(name)
            names.remove(name)
            if diverges(program):
                dropped += 1
            else:
                names.insert(index, name)
    return dropped


def _collect_calls(expr: tuple, into: set) -> None:
    kind = expr[0]
    if kind == "call":
        into.add(expr[1])
        for arg in expr[2]:
            _collect_calls(arg, into)
    elif kind == "bin":
        _collect_calls(expr[2], into)
        _collect_calls(expr[3], into)
    elif kind in ("neg", "not"):
        _collect_calls(expr[1], into)
    elif kind == "aload":
        _collect_calls(expr[2], into)


# -- expression-level pass -----------------------------------------------------


def _subexpr_paths(expr: tuple) -> List[Tuple[int, ...]]:
    """Paths to every *reducible* node, longest (deepest) first."""
    paths: List[Tuple[int, ...]] = []

    def walk(node: tuple, path: Tuple[int, ...]) -> None:
        kind = node[0]
        if kind in ("bin", "neg", "not", "call", "aload"):
            paths.append(path)
        if kind == "bin":
            walk(node[2], path + (2,))
            walk(node[3], path + (3,))
        elif kind in ("neg", "not"):
            walk(node[1], path + (1,))
        elif kind == "aload":
            walk(node[2], path + (2,))
        elif kind == "call":
            for i, arg in enumerate(node[2]):
                walk(arg, path + (2, i))

    walk(expr, ())
    return sorted(paths, key=len, reverse=True)


def _get_at(expr: tuple, path: Tuple[int, ...]) -> tuple:
    for step in path:
        expr = expr[step]
    return expr


def _replace_at(expr: tuple, path: Tuple[int, ...], new: tuple) -> tuple:
    if not path:
        return new
    parts = list(expr)
    parts[path[0]] = _replace_at(expr[path[0]], path[1:], new)
    return tuple(parts)


def _replacements(node: tuple) -> List[tuple]:
    kind = node[0]
    if kind == "bin":
        return [node[2], node[3], ("lit", 0), ("lit", 1)]
    if kind in ("neg", "not"):
        return [node[1]]
    if kind in ("call", "aload"):
        return [("lit", 1), ("lit", 0)]
    return []


def _pass_simplify_expressions(program: FuzzProgram,
                               diverges: Predicate) -> int:
    changed = 0
    for body in _blocks(program):
        for stmt in body:
            for slot in _EXPR_SLOTS.get(stmt[0], ()):
                changed += _simplify_slot(program, stmt, slot, diverges)
    return changed


def _simplify_slot(program: FuzzProgram, stmt: list, slot: int,
                   diverges: Predicate) -> int:
    changed = 0
    progress = True
    while progress:
        progress = False
        for path in _subexpr_paths(stmt[slot]):
            node = _get_at(stmt[slot], path)
            original = stmt[slot]
            for replacement in _replacements(node):
                if replacement == node:
                    continue
                stmt[slot] = _replace_at(original, path, replacement)
                if diverges(program):
                    changed += 1
                    progress = True
                    break
                stmt[slot] = original
            if progress:
                break  # paths are stale after an accepted rewrite
    return changed

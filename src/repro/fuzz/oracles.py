"""The differential oracles: six independent ways to catch a bug.

``opt``
    Compile the program at ``-O0`` and with the optimizer on, run both on
    the VM, and compare *architectural* results: exit code, everything
    printed, and the final memory words of every named global.  Register
    contents are deliberately excluded — allocation differs between the
    two builds — so this is exactly the state a correct compiler must
    preserve.  This is the oracle that catches constant-folding
    miscompiles.

``timing``
    Run the timing core over the optimized build's trace and check the
    retired-state invariants that hold for *any* correct core: it retires
    exactly the committed instruction stream, in no fewer cycles than the
    issue width allows, and its committed load/store counters agree with
    the trace it was fed.

``golden``
    Run both the optimized :class:`repro.core.processor.Processor` and the
    frozen :class:`repro.perf.reference.ReferenceProcessor` over the same
    trace and require bit-identical results (cycles, instructions, every
    counter) — the standing gate every performance PR must keep green.

``analyze``
    Run the :mod:`repro.analyze` static verifier over the optimized build
    — stack discipline, frame metadata, ``local_hint`` soundness — plus
    its dynamic cross-check against the trace.  Generated programs must
    verify clean; any error-severity diagnostic is a divergence.

``replay``
    Push the committed trace through the full :mod:`repro.trace` round
    trip (encode → decode) and require the replayed stream to simulate
    bit-identically to the execution-driven one — same cycles, same
    counters.  Every fuzz campaign thereby exercises the serialized
    trace format against freshly generated programs, not just the
    golden workloads.

``tv``
    Recompile at ``-O2`` with full translation validation
    (``CompilerOptions(verify="tv")``, see :mod:`repro.analyze.tv`):
    every SSA pass application is snapshot-diffed and its claimed
    rewrites are re-proved against the pre/post states.  Any
    certificate finding is a divergence — this is the oracle that
    catches a pass that *lies* about what it did, even when the
    miscompile happens not to change architectural results.

A divergence is **data**, not an exception: campaigns collect and report
them; only infrastructure failures raise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.errors import ReproError
from repro.lang import CompilerOptions, compile_source
from repro.vm.machine import Machine

#: Every oracle, in the order campaigns run them.
ALL_ORACLES = ("opt", "timing", "golden", "analyze", "replay", "tv")

#: The paper's Figure 9 machine — fast forwarding and combining on, which
#: exercises the most timing-core machinery per fuzzed trace.
DEFAULT_CONFIG_NOTATION = "2+2:opt"


class Divergence:
    """One observed disagreement between two views of the same program."""

    __slots__ = ("oracle", "seed", "detail")

    def __init__(self, oracle: str, detail: str, seed: Optional[int] = None):
        self.oracle = oracle
        self.detail = detail
        self.seed = seed

    def __repr__(self) -> str:
        tag = f"seed={self.seed} " if self.seed is not None else ""
        return f"<{tag}{self.oracle}: {self.detail}>"


def default_config() -> MachineConfig:
    """The machine configuration fuzzed timing runs use."""
    from repro.perf.golden import golden_config

    return golden_config(DEFAULT_CONFIG_NOTATION)


def realism_config() -> MachineConfig:
    """The default machine under contended ports and a gshare frontend.

    The timing oracle runs this alongside the ideal configuration so the
    realism counters (``ports.conflict_stalls``, the ``frontend.*``
    bubbles) stay covered by the fuzzer's conservation invariants.
    """
    config = default_config()
    config.mem.l1_port_policy = "finite"
    if config.decoupled:
        config.mem.lvc_port_policy = "finite"
    config.frontend.policy = "gshare"
    return config


def _globals_snapshot(vm: Machine) -> Dict[str, Tuple[int, ...]]:
    """Final memory words of every named (non-pool) global."""
    snapshot: Dict[str, Tuple[int, ...]] = {}
    for item in vm.program.data:
        if item.name.startswith("__flt"):
            continue  # float-literal pool: immutable, layout-dependent
        addr = vm.program.data_address(item.name)
        words = tuple(int(vm.memory.load_word(addr + 4 * i))
                      for i in range(len(item.values)))
        snapshot[item.name] = words
    return snapshot


def _run(source: str, name: str, optimize: bool, trace: bool,
         max_instructions: int) -> Machine:
    program = compile_source(
        source, CompilerOptions(source_name=name, optimize=optimize))
    vm = Machine(program, trace=trace)
    vm.run(max_instructions=max_instructions)
    return vm


def check_opt(vm_opt: Machine, vm_noopt: Machine) -> List[Divergence]:
    """Compare the two builds' architectural results."""
    out: List[Divergence] = []
    if vm_opt.exit_code != vm_noopt.exit_code:
        out.append(Divergence(
            "opt", f"exit code {vm_opt.exit_code} (optimized) != "
                   f"{vm_noopt.exit_code} (-O0)"))
    if vm_opt.stdout != vm_noopt.stdout:
        out.append(Divergence(
            "opt", f"output {_clip(vm_opt.stdout)!r} (optimized) != "
                   f"{_clip(vm_noopt.stdout)!r} (-O0)"))
    mem_opt = _globals_snapshot(vm_opt)
    mem_noopt = _globals_snapshot(vm_noopt)
    for gname in sorted(set(mem_opt) | set(mem_noopt)):
        if mem_opt.get(gname) != mem_noopt.get(gname):
            out.append(Divergence(
                "opt", f"global {gname!r} ends as {mem_opt.get(gname)} "
                       f"(optimized) vs {mem_noopt.get(gname)} (-O0)"))
    return out


def check_timing(vm: Machine, config: MachineConfig,
                 name: str) -> List[Divergence]:
    """Retired-state/counter invariants of the timing core on *vm*'s trace."""
    trace = vm.trace
    assert trace is not None
    result = Processor(config).run(trace.insts, name)
    out: List[Divergence] = []
    committed = len(trace.insts)
    if result.instructions != committed:
        out.append(Divergence(
            "timing", f"core retired {result.instructions} instructions, "
                      f"trace committed {committed}"))
    if committed:
        floor = -(-committed // config.issue_width)  # ceil division
        if result.cycles < floor:
            out.append(Divergence(
                "timing", f"{result.cycles} cycles retires {committed} "
                          f"instructions past the {config.issue_width}-wide "
                          f"issue limit (floor {floor})"))
    counters = result.counters
    # Conservation: every committed load/store enters exactly one of the
    # two queues, and every cache tracks accesses = hits + misses.
    queued_loads = counters.get("lsq.loads") + counters.get("lvaq.loads")
    if queued_loads != trace.stats.loads:
        out.append(Divergence(
            "timing", f"LSQ+LVAQ queued {queued_loads} loads, trace "
                      f"committed {trace.stats.loads}"))
    queued_stores = counters.get("lsq.stores") + counters.get("lvaq.stores")
    if queued_stores != trace.stats.stores:
        out.append(Divergence(
            "timing", f"LSQ+LVAQ queued {queued_stores} stores, trace "
                      f"committed {trace.stats.stores}"))
    for cache in ("l1", "lvc"):
        split = (counters.get(f"{cache}.hits")
                 + counters.get(f"{cache}.misses"))
        accesses = counters.get(f"{cache}.accesses")
        if split != accesses:
            out.append(Divergence(
                "timing", f"{cache} hits+misses = {split} but "
                          f"{accesses} accesses"))
    # Realism conservation: the contended-port and frontend counters are
    # bounded by the events that can charge them.  Every first-level
    # port conflict is a failed take at a site that also charges one of
    # the three named port stalls; every redirect stall run is at most
    # 1 + redirect_penalty cycles per mispredicted branch; every fetch
    # stall run is at most icache_miss_latency cycles per I-cache miss.
    conflicts = counters.get("ports.conflict_stalls")
    port_stalls = (counters.get("stall.store_port")
                   + counters.get("stall.lsq_port")
                   + counters.get("stall.lvaq_port"))
    if conflicts > port_stalls:
        out.append(Divergence(
            "timing", f"{conflicts} port conflicts exceed the "
                      f"{port_stalls} port stalls that can cause them"))
    redirect_cap = (counters.get("frontend.mispredicts")
                    * (1 + config.frontend.redirect_penalty))
    if counters.get("frontend.redirect_bubbles") > redirect_cap:
        out.append(Divergence(
            "timing", f"{counters.get('frontend.redirect_bubbles')} "
                      f"redirect bubbles exceed "
                      f"{redirect_cap} (mispredicts x (1 + penalty))"))
    fetch_cap = (counters.get("frontend.icache_misses")
                 * config.frontend.icache_miss_latency)
    if counters.get("frontend.fetch_bubbles") > fetch_cap:
        out.append(Divergence(
            "timing", f"{counters.get('frontend.fetch_bubbles')} fetch "
                      f"bubbles exceed {fetch_cap} "
                      f"(icache misses x miss latency)"))
    return out


def check_golden(vm: Machine, config: MachineConfig, name: str,
                 config_name: str = DEFAULT_CONFIG_NOTATION
                 ) -> List[Divergence]:
    """Optimized core vs the frozen reference core, bit for bit."""
    from repro.perf.golden import compare_on_trace

    trace = vm.trace
    assert trace is not None
    mismatches = compare_on_trace(trace.insts, config, workload=name,
                                  config_name=config_name)
    return [Divergence("golden", repr(m)) for m in mismatches]


def check_replay(vm: Machine, config: MachineConfig, name: str,
                 config_name: str = DEFAULT_CONFIG_NOTATION
                 ) -> List[Divergence]:
    """Serialize → decode → replay, bit for bit vs execution-driven.

    Reuses the golden plumbing: the replayed stream must produce the
    exact SimResult of the direct stream.  A round trip that *fails to
    decode* is also a divergence — the format must accept every trace
    the VM can emit.
    """
    from repro.errors import TraceError
    from repro.perf.golden import diff_results
    from repro.trace.format import decode_trace, encode_trace

    trace = vm.trace
    assert trace is not None
    try:
        replayed = decode_trace(encode_trace(trace),
                                origin=f"<fuzz:{name}>")
    except TraceError as exc:
        return [Divergence("replay", f"round trip failed: {exc}")]
    expected = Processor(config).run(trace.insts, name)
    actual = Processor(config).run(replayed.insts, name)
    return [Divergence("replay", repr(m))
            for m in diff_results(name, config_name, expected, actual)]


def check_analyze(source: str, vm: Machine, name: str) -> List[Divergence]:
    """Static verification + dynamic cross-check of the optimized build.

    Recompiles with IR capture (cheap next to the VM run the caller
    already paid for) so the IR lints see what codegen consumed, then
    reuses *vm*'s committed trace for the dynamic hint cross-check.
    """
    from repro.analyze import analyze_program

    ir_map: Dict[str, object] = {}
    program = compile_source(
        source, CompilerOptions(source_name=name, optimize=True),
        ir_out=ir_map)
    report = analyze_program(program, ir_map=ir_map, trace=vm.trace,
                             name=name)
    return [Divergence("analyze", diag.render()) for diag in report.errors]


def check_tv(source: str, name: str) -> List[Divergence]:
    """Full translation validation of the ``-O2`` pipeline on *source*.

    Recompiles with ``verify="tv"`` (compile-only — no VM run needed)
    and surfaces every pass-certificate finding.  The certificate log
    itself must also be non-trivial: a fuzzed compile that produced no
    certificates at all means the verification hook silently fell off.
    """
    from repro.lang import CompileStats

    stats = CompileStats()
    compile_source(
        source, CompilerOptions(source_name=name, optimize=True,
                                verify="tv"),
        stats=stats)
    out = [Divergence("tv", diag.render())
           for _fname, cert in stats.certificates
           for diag in cert.findings]
    if not stats.certificates:
        out.append(Divergence(
            "tv", "verified compile produced no pass certificates"))
    return out


def run_oracles(
    source: str,
    name: str = "<fuzz>",
    oracles: Sequence[str] = ALL_ORACLES,
    config: Optional[MachineConfig] = None,
    max_instructions: int = 2_000_000,
) -> List[Divergence]:
    """Run the selected oracles over one program; divergences returned.

    A program that exhausts its instruction budget yields a single
    ``budget`` divergence: generated programs terminate by construction,
    so hitting the budget is itself a finding worth surfacing.
    """
    for oracle in oracles:
        if oracle not in ALL_ORACLES:
            raise ReproError(f"unknown oracle {oracle!r}; "
                             f"expected one of {ALL_ORACLES}")
    need_trace = ("timing" in oracles or "golden" in oracles
                  or "analyze" in oracles or "replay" in oracles)
    vm_opt = _run(source, name, optimize=True, trace=need_trace,
                  max_instructions=max_instructions)
    if vm_opt.exit_code == -1:
        return [Divergence("budget",
                           f"optimized build still running after "
                           f"{max_instructions} instructions")]
    divergences: List[Divergence] = []
    if "opt" in oracles:
        vm_noopt = _run(source, name, optimize=False, trace=False,
                        max_instructions=max_instructions)
        if vm_noopt.exit_code == -1:
            divergences.append(Divergence(
                "budget", f"-O0 build still running after "
                          f"{max_instructions} instructions"))
        else:
            divergences.extend(check_opt(vm_opt, vm_noopt))
    if ("timing" in oracles or "golden" in oracles
            or "replay" in oracles):
        machine_config = config if config is not None else default_config()
        if "timing" in oracles:
            divergences.extend(check_timing(vm_opt, machine_config, name))
            if config is None:
                # Same trace under contended ports + gshare frontend:
                # keeps the realism counters under the invariants above.
                divergences.extend(
                    check_timing(vm_opt, realism_config(), name))
        if "golden" in oracles:
            divergences.extend(check_golden(vm_opt, machine_config, name))
        if "replay" in oracles:
            divergences.extend(check_replay(vm_opt, machine_config, name))
    if "analyze" in oracles:
        divergences.extend(check_analyze(source, vm_opt, name))
    if "tv" in oracles:
        divergences.extend(check_tv(source, name))
    return divergences


def _clip(text: str, limit: int = 160) -> str:
    return text if len(text) <= limit else text[:limit] + "..."

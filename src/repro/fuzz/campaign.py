"""Campaign orchestration: seed-sharded fuzzing on the runtime job engine.

A campaign partitions a seed range into :class:`FuzzJob` shards and runs
them through :class:`repro.runtime.engine.JobEngine` — the same engine
the experiment suite uses — inheriting its dedup, process-pool fan-out,
timeouts, retries, and the content-addressed on-disk result cache.  A
shard is a pure function of its description (seed range, generator size,
oracle set, budget) and the code salt covers ``repro.fuzz`` itself, so
re-running a green campaign after an unrelated edit is all cache hits,
while touching the compiler, VM, cores, or the fuzzer re-runs honestly.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.fuzz.generator import generate_program
from repro.fuzz.oracles import ALL_ORACLES, Divergence, run_oracles
from repro.runtime.engine import EngineReport, JobEngine, ProgressFn
from repro.runtime.registry import JobKind, register_kind
from repro.runtime.signature import canonical_json, digest

#: Seeds per shard: large enough to amortize worker-process startup,
#: small enough that a campaign of a few hundred seeds still fans out.
DEFAULT_SHARD_SIZE = 25


class FuzzJob:
    """One shard of a campaign: ``count`` consecutive seeds, all oracles.

    Carries the same scheduling surface as ``SimJob`` (``key``,
    ``workload``/``scale``/``seed`` ordering hints, ``describe``,
    ``label``) so the job engine treats it like any other unit of work.
    """

    __slots__ = ("seed_start", "count", "oracles", "size",
                 "max_instructions", "_key")

    kind = "fuzz"
    workload = "fuzz"
    scale = 1.0

    def __init__(self, seed_start: int, count: int,
                 oracles: Sequence[str] = ALL_ORACLES, size: int = 12,
                 max_instructions: int = 2_000_000):
        self.seed_start = seed_start
        self.count = count
        self.oracles = tuple(oracles)
        self.size = size
        self.max_instructions = max_instructions
        self._key: Optional[str] = None

    @property
    def seed(self) -> int:
        return self.seed_start

    def describe(self) -> Dict[str, Any]:
        return {
            "fuzz": {
                "seed_start": self.seed_start,
                "count": self.count,
                "oracles": list(self.oracles),
                "size": self.size,
                "max_instructions": self.max_instructions,
            }
        }

    @property
    def key(self) -> str:
        if self._key is None:
            self._key = digest(canonical_json(self.describe()))
        return self._key

    def label(self) -> str:
        end = self.seed_start + self.count
        return f"fuzz[{self.seed_start}:{end}] {'+'.join(self.oracles)}"

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__
                if name != "_key"}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)
        self._key = None

    def __repr__(self) -> str:
        return f"FuzzJob({self.label()})"


class FuzzShardResult:
    """What one executed shard observed."""

    __slots__ = ("seed_start", "count", "divergences")

    def __init__(self, seed_start: int, count: int,
                 divergences: List[Divergence]):
        self.seed_start = seed_start
        self.count = count
        self.divergences = divergences

    @property
    def clean(self) -> bool:
        return not self.divergences

    def __repr__(self) -> str:
        return (f"FuzzShardResult([{self.seed_start}:"
                f"{self.seed_start + self.count}], "
                f"{len(self.divergences)} divergences)")


def execute_fuzz_job(job: FuzzJob) -> FuzzShardResult:
    """Run one shard (top-level so process pools can pickle it)."""
    divergences: List[Divergence] = []
    for seed in range(job.seed_start, job.seed_start + job.count):
        program = generate_program(seed, size=job.size)
        for div in run_oracles(program.source(), name=f"fuzz.{seed}",
                               oracles=job.oracles,
                               max_instructions=job.max_instructions):
            div.seed = seed
            divergences.append(div)
    return FuzzShardResult(job.seed_start, job.count, divergences)


class CampaignReport:
    """Aggregate of one fuzzing campaign."""

    def __init__(self, seeds: int, divergences: List[Divergence],
                 engine_report: EngineReport):
        self.seeds = seeds
        self.divergences = divergences
        self.engine_report = engine_report

    @property
    def clean(self) -> bool:
        return not self.divergences and not self.engine_report.failed

    def diverging_seeds(self) -> List[int]:
        """Sorted unique seeds with at least one divergence."""
        return sorted({d.seed for d in self.divergences
                       if d.seed is not None})


def make_shards(seed: int, count: int,
                shard_size: int = DEFAULT_SHARD_SIZE,
                oracles: Sequence[str] = ALL_ORACLES, size: int = 12,
                max_instructions: int = 2_000_000) -> List[FuzzJob]:
    """Partition ``[seed, seed + count)`` into engine-schedulable shards."""
    if count < 1:
        raise ValueError("seed count must be >= 1")
    if shard_size < 1:
        raise ValueError("shard size must be >= 1")
    shards = []
    start = seed
    while start < seed + count:
        span = min(shard_size, seed + count - start)
        shards.append(FuzzJob(start, span, oracles=oracles, size=size,
                              max_instructions=max_instructions))
        start += span
    return shards


def fuzz_cache(cache_dir: Optional[str] = None):
    """The campaign result store (None when caching is off).

    Mirrors ``RuntimeSession``'s policy: an explicit directory wins, then
    ``$REPRO_CACHE_DIR``, else no store — fuzzing stays side-effect-free
    unless the caller opts in.  Fuzz shards share the sharded
    :class:`repro.runtime.store.ResultStore` with every other job kind;
    the registered ``result_type`` keeps families from cross-hitting.
    """
    from repro.runtime.store import runtime_store

    return runtime_store(cache_dir)


def run_campaign(
    seed: int = 0,
    count: int = 200,
    jobs: int = 1,
    oracles: Sequence[str] = ALL_ORACLES,
    size: int = 12,
    shard_size: int = DEFAULT_SHARD_SIZE,
    max_instructions: int = 2_000_000,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    timeout: Optional[float] = None,
    progress: Optional[ProgressFn] = None,
) -> CampaignReport:
    """Fuzz ``count`` seeds starting at *seed*; returns the full report.

    Engine failures (a shard that died or timed out repeatedly) surface
    through ``report.engine_report.failed`` and make the campaign
    unclean — a crash is never a pass.
    """
    shards = make_shards(seed, count, shard_size=shard_size,
                         oracles=oracles, size=size,
                         max_instructions=max_instructions)
    cache = None if no_cache else fuzz_cache(cache_dir)
    engine = JobEngine(jobs=jobs, cache=cache, timeout=timeout,
                       progress=progress)
    report = engine.run(shards, execute=execute_fuzz_job)
    divergences: List[Divergence] = []
    for outcome in report.outcomes.values():
        if outcome.result is not None:
            divergences.extend(outcome.result.divergences)
    divergences.sort(key=lambda d: (d.seed if d.seed is not None else -1,
                                    d.oracle))
    return CampaignReport(count, divergences, report)


def fuzz_job_from_payload(payload: Dict[str, Any]) -> FuzzJob:
    """The ``fuzz`` kind's submission decoder (one shard per payload)."""
    return FuzzJob(
        int(payload.get("seed_start", 0)),
        int(payload.get("count", DEFAULT_SHARD_SIZE)),
        oracles=tuple(payload.get("oracles", ALL_ORACLES)),
        size=int(payload.get("size", 12)),
        max_instructions=int(payload.get("max_instructions", 2_000_000)),
    )


def encode_fuzz_result(result: FuzzShardResult) -> Dict[str, Any]:
    """The ``fuzz`` kind's JSON rendering: shard span plus divergences."""
    return {
        "seed_start": result.seed_start,
        "count": result.count,
        "clean": result.clean,
        "divergences": [
            {"seed": d.seed, "oracle": d.oracle, "detail": d.detail}
            for d in result.divergences
        ],
    }


register_kind(JobKind(
    "fuzz", FuzzJob, FuzzShardResult, execute_fuzz_job,
    decode_spec=fuzz_job_from_payload,
    encode_result=encode_fuzz_result,
))

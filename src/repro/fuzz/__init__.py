"""Differential fuzzing for the Mini-C toolchain and timing cores.

Four pieces:

- :mod:`repro.fuzz.generator` — seeded random Mini-C programs that are
  safe by construction (counted loops, guarded division, masked array
  indices, bounded recursion) and deterministic per seed;
- :mod:`repro.fuzz.oracles` — the four differential oracles (``opt``,
  ``timing``, ``golden``, ``analyze``) that decide whether a program
  diverges;
- :mod:`repro.fuzz.shrink` — greedy minimization of a diverging program;
- :mod:`repro.fuzz.campaign` — seed-sharded campaigns on the runtime
  job engine (parallel, cached).

``repro-cc fuzz`` is the CLI front end; see ``docs/fuzzing.md``.
"""

from repro.fuzz.campaign import (CampaignReport, FuzzJob, FuzzShardResult,
                                 execute_fuzz_job, make_shards, run_campaign)
from repro.fuzz.generator import FuzzProgram, generate_program
from repro.fuzz.oracles import ALL_ORACLES, Divergence, run_oracles
from repro.fuzz.shrink import shrink

__all__ = [
    "ALL_ORACLES",
    "CampaignReport",
    "Divergence",
    "FuzzJob",
    "FuzzProgram",
    "FuzzShardResult",
    "execute_fuzz_job",
    "generate_program",
    "make_shards",
    "run_campaign",
    "run_oracles",
    "shrink",
]

"""Seeded random mini-C program generator.

Produces closed, deterministic, guaranteed-terminating programs that
exercise the parts of the toolchain where miscompiles hide: mixed signed
arithmetic (wrap-around), logical/arithmetic shifts, truncating division
and remainder, nested calls (argument plumbing, callee-saved traffic),
bounded recursion, arrays and enough live locals to force spill code.

Safety is *by construction*, never by filtering:

* every loop is a counted ``for`` over a small literal bound;
* recursion decrements an explicit depth argument with a ``<= 0`` base
  case, entered with a small literal depth;
* divisors are rendered as ``(expr | 1)`` — odd, hence never zero;
* array indices are rendered as ``(expr) & (len - 1)`` with power-of-two
  array lengths;
* shift counts need no guard: the ISA masks them to five bits.

The output is a :class:`FuzzProgram` — a structural representation the
shrinker can edit (statements are mutable lists, expressions immutable
tuples) — whose :meth:`FuzzProgram.source` renders compilable mini-C.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

#: Power-of-two array length so any index can be masked safely.
ARRAY_LEN = 16

#: Literals the generator draws from: boundary values first (the folder
#: bugs this subsystem exists to catch live at the edges of the 32-bit
#: range), plus small values that keep comparisons and shifts interesting.
INTERESTING_LITERALS = (
    0, 1, 2, 3, 5, 7, 8, 15, 16, 31, 32, 33, 100, 255, 4096, 65535, 65536,
    1103515, 2147483647, -1, -2, -3, -8, -100, -32768, -65536, -2147483647,
)

#: Binary operators by weight class.  ``/`` and ``%`` get their divisor
#: guarded at render time.
_COMMON_OPS = ("+", "-", "*", "&", "|", "^", "<<", ">>")
_RARE_OPS = ("/", "%", "<", "<=", ">", ">=", "==", "!=")


class FuzzFunction:
    """One generated helper function (int params, int return)."""

    __slots__ = ("name", "params", "body")

    def __init__(self, name: str, params: List[str], body: List[list]):
        self.name = name
        self.params = params
        self.body = body


class FuzzProgram:
    """A structurally editable generated program.

    Statements are mutable lists so the shrinker can splice them::

        ["decl", name, expr]          int name = expr;
        ["adecl", name]               int name[ARRAY_LEN];   (local array)
        ["assign", name, expr]        name = expr;
        ["astore", arr, idx, expr]    arr[(idx) & mask] = expr;
        ["print", expr]               print(expr); printc(10);
        ["if", cond, then, else_]     if (cond) { then } else { else_ }
        ["loop", var, count, body]    int var; for (var = 0; var < count; ...)
        ["ret", expr]                 return expr;

    Expressions are immutable tuples::

        ("lit", value) | ("var", name) | ("aload", arr, idx)
        | ("bin", op, left, right) | ("neg", e) | ("not", e)
        | ("call", fname, (args...))
    """

    def __init__(self, seed: int):
        self.seed = seed
        self.arrays: List[str] = []
        self.globals: List[str] = []
        self.functions: List[FuzzFunction] = []
        self.main_body: List[list] = []

    # -- rendering -----------------------------------------------------------

    def source(self) -> str:
        lines: List[str] = [f"// fuzz seed {self.seed}"]
        for name in self.arrays:
            lines.append(f"int {name}[{ARRAY_LEN}];")
        for name in self.globals:
            lines.append(f"int {name};")
        for func in self.functions:
            params = ", ".join(f"int {p}" for p in func.params)
            lines.append(f"int {func.name}({params}) {{")
            _render_block(func.body, lines, 1)
            lines.append("}")
        lines.append("int main() {")
        _render_block(self.main_body, lines, 1)
        lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def statement_count(self) -> int:
        """Number of statement nodes (nested blocks included)."""
        return sum(_count_stmts(body) for body in self.bodies())

    def bodies(self) -> List[List[list]]:
        """Every top-level statement list (main plus each helper)."""
        return [func.body for func in self.functions] + [self.main_body]

    def __repr__(self) -> str:
        return (f"FuzzProgram(seed={self.seed}, "
                f"stmts={self.statement_count()})")


# -- rendering helpers ---------------------------------------------------------


def render_expr(expr: tuple) -> str:
    """*expr* as mini-C source (guards applied here)."""
    kind = expr[0]
    if kind == "lit":
        value = expr[1]
        return str(value) if value >= 0 else f"(0 - {-value})"
    if kind == "var":
        return expr[1]
    if kind == "aload":
        return f"{expr[1]}[({render_expr(expr[2])}) & {ARRAY_LEN - 1}]"
    if kind == "neg":
        return f"(0 - {render_expr(expr[1])})"
    if kind == "not":
        return f"(!{render_expr(expr[1])})"
    if kind == "call":
        args = ", ".join(render_expr(a) for a in expr[2])
        return f"{expr[1]}({args})"
    assert kind == "bin", expr
    op, left, right = expr[1], expr[2], expr[3]
    if op in ("/", "%"):
        return f"({render_expr(left)} {op} ({render_expr(right)} | 1))"
    return f"({render_expr(left)} {op} {render_expr(right)})"


def _render_block(body: Sequence[list], lines: List[str], depth: int) -> None:
    pad = "    " * depth
    for stmt in body:
        kind = stmt[0]
        if kind == "decl":
            lines.append(f"{pad}int {stmt[1]} = {render_expr(stmt[2])};")
        elif kind == "adecl":
            lines.append(f"{pad}int {stmt[1]}[{ARRAY_LEN}];")
        elif kind == "assign":
            lines.append(f"{pad}{stmt[1]} = {render_expr(stmt[2])};")
        elif kind == "astore":
            lines.append(
                f"{pad}{stmt[1]}[({render_expr(stmt[2])}) & "
                f"{ARRAY_LEN - 1}] = {render_expr(stmt[3])};")
        elif kind == "print":
            lines.append(f"{pad}print({render_expr(stmt[1])});")
            lines.append(f"{pad}printc(10);")
        elif kind == "if":
            lines.append(f"{pad}if ({render_expr(stmt[1])}) {{")
            _render_block(stmt[2], lines, depth + 1)
            if stmt[3]:
                lines.append(f"{pad}}} else {{")
                _render_block(stmt[3], lines, depth + 1)
            lines.append(f"{pad}}}")
        elif kind == "loop":
            var, count = stmt[1], stmt[2]
            lines.append(f"{pad}int {var};")
            lines.append(
                f"{pad}for ({var} = 0; {var} < {count}; {var}++) {{")
            _render_block(stmt[3], lines, depth + 1)
            lines.append(f"{pad}}}")
        elif kind == "ret":
            lines.append(f"{pad}return {render_expr(stmt[1])};")
        else:  # pragma: no cover - generator invariant
            raise AssertionError(f"unknown statement {stmt!r}")


def _count_stmts(body: Sequence[list]) -> int:
    total = 0
    for stmt in body:
        total += 1
        if stmt[0] == "if":
            total += _count_stmts(stmt[2]) + _count_stmts(stmt[3])
        elif stmt[0] == "loop":
            total += _count_stmts(stmt[3])
    return total


# -- generation ----------------------------------------------------------------


class _Generator:
    """One generation run; all randomness flows through ``self.rng``."""

    def __init__(self, seed: int, size: int):
        self.rng = random.Random(seed)
        self.size = size
        self.program = FuzzProgram(seed)
        #: Arrays declared in the function body under construction.
        #: Stressing the SSA mid-end needs *frame* arrays: store
        #: forwarding and dead-store elimination only reason about
        #: unescaped frame slots, which globals never are.
        self.local_arrays: List[str] = []

    def _arrays(self) -> List[str]:
        return self.program.arrays + self.local_arrays

    # -- expressions ---------------------------------------------------------

    def _literal(self) -> tuple:
        rng = self.rng
        if rng.random() < 0.7:
            return ("lit", rng.choice(INTERESTING_LITERALS))
        return ("lit", rng.randint(-10_000, 10_000))

    def _leaf(self, scope: Sequence[str]) -> tuple:
        rng = self.rng
        roll = rng.random()
        if scope and roll < 0.55:
            return ("var", rng.choice(list(scope)))
        arrays = self._arrays()
        if arrays and roll < 0.65:
            # the index must be a *simple* expression: anything recursive
            # here has no depth budget and could run away
            index = (("var", rng.choice(list(scope)))
                     if scope and rng.random() < 0.5 else self._literal())
            return ("aload", rng.choice(arrays), index)
        return self._literal()

    def _expr(self, scope: Sequence[str], depth: int,
              callees: Sequence[FuzzFunction] = ()) -> tuple:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.25:
            return self._leaf(scope)
        roll = rng.random()
        if callees and roll < 0.15:
            func = rng.choice(list(callees))
            args = tuple(self._expr(scope, depth - 1) for _ in func.params)
            return ("call", func.name, args)
        if roll < 0.22:
            return ("neg", self._expr(scope, depth - 1, callees))
        if roll < 0.28:
            return ("not", self._expr(scope, depth - 1, callees))
        ops = _COMMON_OPS if rng.random() < 0.75 else _RARE_OPS
        return ("bin", rng.choice(ops),
                self._expr(scope, depth - 1, callees),
                self._expr(scope, depth - 1, callees))

    # -- statements ----------------------------------------------------------

    def _simple_stmt(self, scope: List[str], writable: List[str],
                     callees: Sequence[FuzzFunction]) -> list:
        rng = self.rng
        roll = rng.random()
        expr = self._expr(scope, 3, callees)
        arrays = self._arrays()
        if arrays and roll < 0.2:
            return ["astore", rng.choice(arrays),
                    self._expr(scope, 2), expr]
        targets = writable + self.program.globals
        if targets and roll < 0.75:
            return ["assign", rng.choice(targets), expr]
        return ["print", expr]

    def _block(self, scope: List[str], writable: List[str],
               callees: Sequence[FuzzFunction],
               count: int, loop_depth: int) -> List[list]:
        # ``writable`` excludes loop variables: assigning to one from
        # inside its own body could stretch a counted loop arbitrarily.
        rng = self.rng
        body: List[list] = []
        for _ in range(count):
            roll = rng.random()
            if roll < 0.12 and loop_depth < 2:
                var = f"i{self._fresh()}"
                inner = self._block(scope + [var], writable, callees,
                                    rng.randint(1, 3), loop_depth + 1)
                body.append(["loop", var, rng.randint(1, 4), inner])
            elif roll < 0.18 and loop_depth < 2:
                body.extend(self._hoistable_loop(scope, writable, callees,
                                                 loop_depth))
            elif roll < 0.30:
                cond = self._expr(scope, 2, callees)
                then = self._block(scope, writable, callees,
                                   rng.randint(1, 2), loop_depth)
                else_ = (self._block(scope, writable, callees, 1, loop_depth)
                         if rng.random() < 0.5 else [])
                body.append(["if", cond, then, else_])
            elif writable and roll < 0.37:
                body.append(self._diamond(scope, writable, callees))
            elif self._arrays() and writable and roll < 0.44:
                body.extend(self._store_load_pair(scope, writable, callees))
            else:
                body.append(self._simple_stmt(scope, writable, callees))
        return body

    # -- pass-stressing shapes -----------------------------------------------

    def _fresh_local_array(self, scope: Sequence[str],
                           callees: Sequence[FuzzFunction]) -> List[list]:
        """Declare a frame array and initialize every slot.

        Frame layouts differ across optimization levels, so a read of an
        uninitialized slot would let the opt oracle diverge on stale
        stack bytes rather than a real miscompile — full initialization
        keeps safety by construction.
        """
        name = f"la{self._fresh()}"
        index = f"i{self._fresh()}"
        seed_expr = self._expr(list(scope), 2, callees)
        init = ["loop", index, ARRAY_LEN,
                [["astore", name, ("var", index),
                  ("bin", "^", seed_expr, ("var", index))]]]
        self.local_arrays.append(name)
        return [["adecl", name], init]

    def _hoistable_loop(self, scope: List[str], writable: List[str],
                        callees: Sequence[FuzzFunction],
                        loop_depth: int) -> List[list]:
        """A loop whose body opens with a computation over values the loop
        never writes — exactly what LICM must hoist (and must *not* hoist
        wrongly when the folder turns it into a trapping ``/``/``%``)."""
        rng = self.rng
        hold = f"h{self._fresh()}"
        body: List[list] = [["decl", hold, self._expr(scope, 2, callees)]]
        var = f"i{self._fresh()}"
        inner_writable = [w for w in writable if w != hold]
        inv = ("bin", rng.choice(_COMMON_OPS + ("/", "%")),
               ("var", hold),
               ("bin", rng.choice(_COMMON_OPS), ("var", hold),
                self._literal()))
        temp = f"t{self._fresh()}"
        inner: List[list] = [["decl", temp, inv]]
        if inner_writable:
            inner.append(["assign", rng.choice(inner_writable),
                          ("bin", "+", ("var", temp), ("var", var))])
        inner.extend(self._block(scope + [hold, var], inner_writable,
                                 callees, rng.randint(1, 2),
                                 loop_depth + 1))
        return body + [["loop", var, rng.randint(2, 4), inner]]

    def _diamond(self, scope: List[str], writable: List[str],
                 callees: Sequence[FuzzFunction]) -> list:
        """``if/else`` assigning the same variable in both arms — the join
        is a phi, and with literal arms a partially- or fully-constant one
        (sparse conditional constant propagation's favourite food)."""
        rng = self.rng
        target = rng.choice(writable)
        then_val = (self._literal() if rng.random() < 0.7
                    else self._expr(scope, 2, callees))
        else_val = (then_val if rng.random() < 0.3
                    else self._literal() if rng.random() < 0.5
                    else self._expr(scope, 2, callees))
        return ["if", self._expr(scope, 2, callees),
                [["assign", target, then_val]],
                [["assign", target, else_val]]]

    def _store_load_pair(self, scope: List[str], writable: List[str],
                         callees: Sequence[FuzzFunction]) -> List[list]:
        """A store immediately re-loaded at the same literal index (store
        forwarding), optionally overwritten first (a dead store)."""
        rng = self.rng
        arr = rng.choice(self._arrays())
        index = ("lit", rng.randrange(ARRAY_LEN))
        out: List[list] = []
        if rng.random() < 0.4:
            out.append(["astore", arr, index, self._expr(scope, 2, callees)])
        out.append(["astore", arr, index, self._expr(scope, 2, callees)])
        out.append(["assign", rng.choice(writable), ("aload", arr, index)])
        return out

    _counter = 0

    def _fresh(self) -> int:
        self._counter += 1
        return self._counter

    # -- functions -----------------------------------------------------------

    def _make_helper(self, index: int,
                     callees: Sequence[FuzzFunction]) -> FuzzFunction:
        rng = self.rng
        params = [f"a{i}" for i in range(rng.randint(1, 3))]
        scope = list(params)
        body: List[list] = []
        self.local_arrays = []
        if rng.random() < 0.4:
            body.extend(self._fresh_local_array(scope, callees))
        for i in range(rng.randint(1, 3)):
            name = f"t{self._fresh()}"
            body.append(["decl", name, self._expr(scope, 2, callees)])
            scope.append(name)
        body.extend(self._block(scope, list(scope), callees,
                                rng.randint(1, 3), 0))
        body.append(["ret", self._expr(scope, 3, callees)])
        self.local_arrays = []
        return FuzzFunction(f"fn{index}", params, body)

    def _make_recursive(self, index: int,
                        callees: Sequence[FuzzFunction]) -> FuzzFunction:
        """A self-recursive helper with a strictly decreasing depth arg."""
        name = f"fn{index}"
        scope = ["n", "x"]
        base = ["ret", self._expr(scope, 2)]
        step = ("call", name,
                (("bin", "-", ("var", "n"), ("lit", 1)),
                 self._expr(scope, 2, callees)))
        recurse = ["ret", ("bin", self.rng.choice(("+", "-", "^")),
                           step, self._expr(scope, 2))]
        body = [["if", ("bin", "<=", ("var", "n"), ("lit", 0)),
                 [base], []],
                recurse]
        return FuzzFunction(name, ["n", "x"], body)

    # -- the program ---------------------------------------------------------

    def generate(self) -> FuzzProgram:
        rng = self.rng
        program = self.program
        for i in range(rng.randint(1, 2)):
            program.arrays.append(f"ga{i}")
        for i in range(rng.randint(0, 2)):
            program.globals.append(f"g{i}")

        helpers: List[FuzzFunction] = []
        for i in range(rng.randint(1, 1 + self.size // 6)):
            helpers.append(self._make_helper(i, helpers[-2:]))
        if rng.random() < 0.6:
            helpers.append(self._make_recursive(len(helpers), helpers[-1:]))
        program.functions = helpers

        # Recursive helpers are excluded from expression callees — their
        # termination depends on the depth argument, so the only call site
        # is the explicit one below, seeded with a small literal depth.
        plain = [f for f in helpers if f.params != ["n", "x"]]
        scope: List[str] = []
        main: List[list] = []
        self.local_arrays = []
        if rng.random() < 0.7:
            main.extend(self._fresh_local_array(scope, plain))
        for i in range(rng.randint(4, 4 + self.size // 3)):
            name = f"v{i}"
            main.append(["decl", name, self._expr(scope, 3, plain)])
            scope.append(name)
        if helpers and helpers[-1].params == ["n", "x"]:
            depth = ("lit", rng.randint(1, 6))
            main.append(["assign", scope[0],
                         ("call", helpers[-1].name,
                          (depth, self._expr(scope, 2)))])
        main.extend(self._block(scope, list(scope), plain,
                                rng.randint(4, 4 + self.size // 2), 0))
        # Make every local and array observable so silent miscompiles in
        # dead-looking code still change the output.
        for name in scope:
            main.append(["print", ("var", name)])
        for name in program.globals:
            main.append(["print", ("var", name)])
        for arr in program.arrays + self.local_arrays:
            var = f"ck_{arr}"
            main.append(["decl", var, ("lit", 0)])
            idx = f"i{self._fresh()}"
            main.append(["loop", idx, ARRAY_LEN,
                         [["assign", var,
                           ("bin", "+",
                            ("bin", "*", ("var", var), ("lit", 31)),
                            ("aload", arr, ("var", idx)))]]])
            main.append(["print", ("var", var)])
        program.main_body = main
        return program


def generate_program(seed: int, size: int = 12) -> FuzzProgram:
    """The deterministic program for *seed* (``size`` scales statement
    counts; the default targets a few thousand dynamic instructions)."""
    return _Generator(seed, size).generate()

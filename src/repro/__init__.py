"""repro — a reproduction of "Decoupling Local Variable Accesses in a
Wide-Issue Superscalar Processor" (Cho, Yew, Lee — ISCA 1999).

Public API highlights:

* :class:`repro.MachineConfig` / :class:`repro.Processor` — the timing
  simulator with the paper's ``(N+M)`` configurations.
* :func:`repro.lang.compile_source` — the mini-C compiler.
* :func:`repro.assemble` / :func:`repro.run_program` — assembler + VM.
* ``repro.workloads`` — the SPEC95-like workload suite.
* ``repro.experiments`` — one module per paper figure/table.
"""

from repro.core import (
    DecoupleConfig,
    MachineConfig,
    Processor,
    SimResult,
)
from repro.asm import assemble
from repro.vm import Machine, Trace, run_program

__version__ = "1.0.0"

__all__ = [
    "DecoupleConfig",
    "MachineConfig",
    "Processor",
    "SimResult",
    "assemble",
    "Machine",
    "Trace",
    "run_program",
    "__version__",
]

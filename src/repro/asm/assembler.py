"""A two-pass assembler for the repro ISA.

Accepted syntax mirrors :func:`repro.isa.disasm.disassemble`::

    .data
    table:  .word 1, 2, 3
    buffer: .space 64
    .text
    main:
        li   $t0, 10
        sw   $t0, 0($sp)      # local
        jal  helper
        syscall 0

Comments start with ``#``.  A trailing ``# local``, ``# nonlocal`` or
``# ambiguous`` comment on a memory instruction sets its classification
annotation (compile-time stream-partitioning bit).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import BY_MNEMONIC, Fmt, Opcode
from repro.isa.program import DataItem, Program
from repro.isa.registers import parse_reg

_MEM_OPERAND = re.compile(r"^(-?\d+)\((\$\w+(?:\.\w+)?)\)$")
_LABEL_DEF = re.compile(r"^([A-Za-z_.$][\w.$]*):$")
_ANNOTATIONS = {"local": True, "nonlocal": False, "ambiguous": None}


def _split_comment(line: str) -> Tuple[str, Optional[str]]:
    """Strip a comment, returning (code, annotation-or-None)."""
    if "#" not in line:
        return line.strip(), None
    code, comment = line.split("#", 1)
    annotation = comment.strip().lower()
    return code.strip(), annotation if annotation in _ANNOTATIONS else None


def _parse_int(text: str, line_no: int) -> int:
    try:
        return int(text, 0)
    except ValueError:
        raise AssemblerError(f"bad integer literal {text!r}", line_no) from None


def _parse_operands(text: str) -> List[str]:
    return [part.strip() for part in text.split(",")] if text else []


class _Assembler:
    """State for one assembly run."""

    def __init__(self, source: str, source_name: str):
        self.source = source
        self.source_name = source_name
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.data: List[DataItem] = []
        self.in_data = False
        self.pending_data_label: Optional[str] = None

    def run(self, entry: str) -> Program:
        for line_no, raw in enumerate(self.source.splitlines(), start=1):
            code, annotation = _split_comment(raw)
            if not code:
                continue
            self._line(code, annotation, line_no)
        program = Program(
            self.instructions,
            labels=self.labels,
            data=self.data,
            entry=entry,
            source_name=self.source_name,
        )
        program.resolve()
        return program

    # -- directives / labels --------------------------------------------

    def _line(self, code: str, annotation: Optional[str], line_no: int) -> None:
        if code == ".data":
            self.in_data = True
            return
        if code == ".text":
            self.in_data = False
            return
        # A label can share a line with an instruction or directive.
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", code)
            if not match:
                break
            self._define_label(match.group(1), line_no)
            code = match.group(2).strip()
            if not code:
                return
        if self.in_data:
            self._data_line(code, line_no)
        else:
            self._text_line(code, annotation, line_no)

    def _define_label(self, name: str, line_no: int) -> None:
        if self.in_data:
            self.pending_data_label = name
            return
        if name in self.labels:
            raise AssemblerError(f"duplicate label {name!r}", line_no)
        self.labels[name] = len(self.instructions)

    def _data_line(self, code: str, line_no: int) -> None:
        parts = code.split(None, 1)
        directive = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        name = self.pending_data_label
        self.pending_data_label = None
        if name is None:
            raise AssemblerError("data directive without a label", line_no)
        if directive == ".word":
            values = [_parse_int(v.strip(), line_no)
                      for v in rest.split(",") if v.strip()]
            self.data.append(DataItem(name, values))
        elif directive == ".byte":
            values = [_parse_int(v.strip(), line_no)
                      for v in rest.split(",") if v.strip()]
            self.data.append(DataItem(name, values, element_size=1))
        elif directive == ".space":
            nbytes = _parse_int(rest.strip(), line_no)
            if nbytes <= 0:
                raise AssemblerError(".space size must be positive", line_no)
            self.data.append(DataItem(name, [0] * nbytes, element_size=1))
        elif directive == ".float":
            values = [float(v.strip()) for v in rest.split(",") if v.strip()]
            self.data.append(DataItem(name, values))
        else:
            raise AssemblerError(f"unknown directive {directive!r}", line_no)

    # -- instructions -------------------------------------------------------

    def _text_line(self, code: str, annotation: Optional[str],
                   line_no: int) -> None:
        parts = code.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        op = BY_MNEMONIC.get(mnemonic)
        if op is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line_no)
        operands = _parse_operands(operand_text)
        try:
            ins = self._build(op, operands, annotation, line_no)
        except (ValueError, AssemblerError) as exc:
            raise AssemblerError(str(exc), line_no) from None
        self.instructions.append(ins)

    def _build(self, op: Opcode, ops: List[str],
               annotation: Optional[str], line_no: int) -> Instruction:
        fmt = op.fmt
        local = _ANNOTATIONS[annotation] if annotation else None

        def need(n: int) -> None:
            if len(ops) != n:
                raise AssemblerError(
                    f"{op.mnemonic} expects {n} operands, got {len(ops)}",
                    line_no,
                )

        if fmt is Fmt.NONE:
            need(0)
            return Instruction(op)
        if fmt is Fmt.RRR:
            need(3)
            return Instruction(op, rd=parse_reg(ops[0]), rs=parse_reg(ops[1]),
                               rt=parse_reg(ops[2]))
        if fmt is Fmt.RRI:
            need(3)
            return Instruction(op, rd=parse_reg(ops[0]), rs=parse_reg(ops[1]),
                               imm=_parse_int(ops[2], line_no))
        if fmt is Fmt.RI:
            need(2)
            rd = parse_reg(ops[0])
            if op is Opcode.LA and not ops[1].lstrip("-").isdigit():
                return Instruction(op, rd=rd, label=ops[1], imm=0)
            return Instruction(op, rd=rd, imm=_parse_int(ops[1], line_no))
        if fmt is Fmt.RR:
            need(2)
            return Instruction(op, rd=parse_reg(ops[0]), rs=parse_reg(ops[1]))
        if fmt is Fmt.MEM:
            need(2)
            match = _MEM_OPERAND.match(ops[1].replace(" ", ""))
            if not match:
                raise AssemblerError(
                    f"bad memory operand {ops[1]!r}", line_no
                )
            offset = int(match.group(1))
            base = parse_reg(match.group(2))
            value = parse_reg(ops[0])
            if op.is_load:
                return Instruction(op, rd=value, rs=base, imm=offset,
                                   local=local)
            return Instruction(op, rt=value, rs=base, imm=offset, local=local)
        if fmt is Fmt.BR2:
            need(3)
            return Instruction(op, rs=parse_reg(ops[0]), rt=parse_reg(ops[1]),
                               label=ops[2], imm=0)
        if fmt is Fmt.BR1:
            need(2)
            return Instruction(op, rs=parse_reg(ops[0]), label=ops[1], imm=0)
        if fmt is Fmt.J:
            need(1)
            return Instruction(op, label=ops[0], imm=0)
        if fmt is Fmt.JR:
            need(1)
            return Instruction(op, rs=parse_reg(ops[0]))
        if fmt is Fmt.SYS:
            need(1)
            return Instruction(op, imm=_parse_int(ops[0], line_no))
        raise AssemblerError(f"unhandled format {fmt}", line_no)


def assemble(source: str, entry: str = "main",
             source_name: str = "<asm>") -> Program:
    """Assemble *source* text into a resolved :class:`Program`."""
    return _Assembler(source, source_name).run(entry)

"""Assembler: textual assembly -> :class:`repro.isa.Program`."""

from repro.asm.assembler import assemble

__all__ = ["assemble"]

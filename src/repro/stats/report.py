"""Plain-text table formatting for experiment output.

Every experiment prints its rows through :class:`Table` so the benchmark
harness output looks like the tables/figures in the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def _render(cell: Cell, precision: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{precision}f}"
    return str(cell)


class Table:
    """A simple column-aligned text table."""

    def __init__(self, headers: Sequence[str], precision: int = 3, title: str = ""):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.title = title
        self.headers = list(headers)
        self.precision = precision
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Cell) -> None:
        """Append one row; cell count must match the header count."""
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_render(c, self.precision) for c in cells])

    def render(self) -> str:
        """Render the table to a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def format_duration(seconds: float) -> str:
    """Humanised wall time: ``"87ms"``, ``"4.6s"``, ``"2m06s"``."""
    if seconds < 0:
        raise ValueError("durations cannot be negative")
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    if seconds < 60.0:
        return f"{seconds:.1f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:02.0f}s"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    precision: int = 3,
    title: str = "",
) -> str:
    """One-shot helper building and rendering a :class:`Table`."""
    table = Table(headers, precision=precision, title=title)
    for row in rows:
        table.add_row(*row)
    return table.render()

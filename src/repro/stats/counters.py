"""A lightweight named-counter container used by the simulators.

The timing simulator bumps counters on hot paths, so this is deliberately a
thin wrapper over a dict rather than anything clever.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class CounterSet:
    """A set of named integer counters with safe rate helpers."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        """Increment counter *name* by *amount* (creating it at zero)."""
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        """Current value of counter *name* (0 if never bumped)."""
        return self._counts.get(name, 0)

    def set(self, name: str, value: int) -> None:
        """Set counter *name* to an absolute value."""
        self._counts[name] = value

    def rate(self, numer: str, denom: str, default: float = 0.0) -> float:
        """Ratio of two counters, or *default* when the denominator is zero."""
        d = self.get(denom)
        return self.get(numer) / d if d else default

    def merge(self, other: "CounterSet") -> None:
        """Add every counter of *other* into this set."""
        for name, value in other.items():
            self.add(name, value)

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate (name, value) pairs in sorted name order."""
        return iter(sorted(self._counts.items()))

    def as_dict(self) -> Dict[str, int]:
        """A copy of the raw counter mapping."""
        return dict(self._counts)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"CounterSet({body})"

"""Statistics utilities: counters, histograms, and table formatting."""

from repro.stats.counters import CounterSet
from repro.stats.histogram import Histogram
from repro.stats.report import Table, format_table

__all__ = ["CounterSet", "Histogram", "Table", "format_table"]

"""Integer histogram with percentile queries.

Used for the dynamic frame-size distribution (paper Figure 3), queue
occupancy statistics, and reuse-distance profiles.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple


class Histogram:
    """Counts occurrences of integer-valued samples."""

    __slots__ = ("_bins", "_total")

    def __init__(self) -> None:
        self._bins: Dict[int, int] = {}
        self._total = 0

    def add(self, value: int, count: int = 1) -> None:
        """Record *count* occurrences of *value*."""
        if count < 0:
            raise ValueError("count must be non-negative")
        self._bins[value] = self._bins.get(value, 0) + count
        self._total += count

    @property
    def total(self) -> int:
        """Total number of samples recorded."""
        return self._total

    def count(self, value: int) -> int:
        """Number of samples equal to *value*."""
        return self._bins.get(value, 0)

    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        if not self._total:
            return 0.0
        return sum(v * c for v, c in self._bins.items()) / self._total

    def min(self) -> int:
        """Smallest recorded value; raises ValueError when empty."""
        if not self._bins:
            raise ValueError("empty histogram")
        return min(self._bins)

    def max(self) -> int:
        """Largest recorded value; raises ValueError when empty."""
        if not self._bins:
            raise ValueError("empty histogram")
        return max(self._bins)

    def percentile(self, fraction: float) -> int:
        """Smallest value v such that at least ``fraction`` of samples <= v.

        ``fraction`` is in (0, 1]; raises ValueError on an empty histogram.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if not self._total:
            raise ValueError("empty histogram")
        threshold = fraction * self._total
        seen = 0
        for value in sorted(self._bins):
            seen += self._bins[value]
            if seen >= threshold:
                return value
        return max(self._bins)  # unreachable given the loop, kept for safety

    def cumulative(self) -> List[Tuple[int, float]]:
        """Sorted (value, cumulative fraction) pairs."""
        if not self._total:
            return []
        out: List[Tuple[int, float]] = []
        seen = 0
        for value in sorted(self._bins):
            seen += self._bins[value]
            out.append((value, seen / self._total))
        return out

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate (value, count) pairs in increasing value order."""
        return iter(sorted(self._bins.items()))

    def merge(self, other: "Histogram") -> None:
        """Fold all samples of *other* into this histogram."""
        for value, count in other.items():
            self.add(value, count)

    def __len__(self) -> int:
        return len(self._bins)

    def __repr__(self) -> str:
        return f"Histogram(total={self._total}, distinct={len(self._bins)})"

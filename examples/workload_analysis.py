"""Reproduce the paper's workload characterisation (Section 2.2) on any
trace with the analysis toolbox.

For a chosen workload this prints the four measurements the decoupling
argument rests on: how much of the reference stream is local, how small
its footprint is, how bursty it arrives, and how reliably it can be
classified — then cross-checks them against a real compiled program.

Run:  python examples/workload_analysis.py [workload]
"""

import sys

from repro.analysis import (
    burstiness_profile,
    classification_report,
    reuse_distance_profile,
    working_set_words,
)
from repro.workloads import build_trace


def characterise(name: str, length: int = 60_000) -> None:
    trace = build_trace(name, length=length)
    stats = trace.stats
    print(f"== {name} ({stats.instructions} instructions)")

    # 1. Volume (paper Figure 2)
    print(f"   local references      : {stats.local_fraction:.0%} of "
          f"{stats.mem_refs} memory refs")

    # 2. Footprint (paper Figure 3 / Section 2.2.1)
    local_words, other_words = working_set_words(trace.insts)
    print(f"   working set           : {local_words * 4} B local vs "
          f"{other_words * 4} B non-local")
    if stats.frame_sizes.total:
        print(f"   frames                : mean "
              f"{stats.frame_sizes.mean():.1f} words, "
              f"p99 {stats.frame_sizes.percentile(0.99)} words "
              f"(paper: ~7 static / ~3 dynamic)")

    # 3. Burstiness (why access combining pays off, Section 2.2.2)
    bursts = burstiness_profile(trace.insts)
    if bursts.total:
        print(f"   local-run lengths     : p50 {bursts.percentile(0.5)}, "
              f"p99 {bursts.percentile(0.99)} "
              "(save/restore bursts feed access combining)")

    # 4. Forwardability (Section 4.2.3)
    reuse = reuse_distance_profile(trace.insts)
    if reuse.total:
        window = 128  # ~ROB residency: the LVAQ forwarding horizon
        forwardable = sum(c for d, c in reuse.items() if d <= window)
        print(f"   store->reload reuse   : p50 "
              f"{reuse.percentile(0.5)} insts; "
              f"{forwardable / reuse.total:.0%} within the LVAQ window")

    # 5. Classifiability (Section 2.2.3)
    report = classification_report(trace.insts)
    print(f"   classification        : {report.ambiguous_fraction:.2%} "
          f"ambiguous, hints {report.hint_accuracy:.2%} correct "
          "(paper: ~99.9% classified correctly)")
    print()


def main() -> None:
    names = sys.argv[1:] or ["147.vortex", "129.compress", "mini.hashdb"]
    for name in names:
        characterise(name)


if __name__ == "__main__":
    main()

"""Drive the whole toolchain on your own mini-C program.

Shows every stage the paper's evaluation rests on: compile (with graph-
coloring register allocation producing real spill code), execute on the
functional VM, inspect the local/non-local classification of each memory
access, and finally run the timing simulator on the committed stream.

Run:  python examples/compiler_pipeline.py
"""

from repro import MachineConfig, Processor, run_program
from repro.isa.disasm import disassemble_program
from repro.lang import compile_source
from repro.lang.frontend import CompileStats

SOURCE = """
// A toy workload: a histogram over pseudo-random keys, with a helper
// function so the compiler emits real call/save/restore traffic.
int histogram[64];

int next_key(int state) {
    return state * 1103515 + 12345;
}

int bucket(int key) {
    int folded = (key >> 8) ^ key;
    if (folded < 0) folded = -folded;
    return folded % 64;
}

int main() {
    int state = 7;
    int i;
    for (i = 0; i < 3000; i++) {
        state = next_key(state);
        histogram[bucket(state)]++;
    }
    int heaviest = 0;
    for (i = 1; i < 64; i++) {
        if (histogram[i] > histogram[heaviest]) heaviest = i;
    }
    print(heaviest);
    printc('\\n');
    return 0;
}
"""


def main() -> None:
    # 1. Compile.  CompileStats exposes what the register allocator did.
    stats = CompileStats()
    program = compile_source(SOURCE, stats=stats)
    print(f"compiled {stats.functions} functions, "
          f"{stats.instructions} instructions")
    print(f"  spilled virtual registers : {stats.spilled_vregs}")
    print(f"  frame sizes (bytes)       : {stats.frame_bytes}")
    print()

    # 2. A peek at the generated code (first 25 instructions).
    listing = disassemble_program(program).splitlines()
    print("generated code (head):")
    for line in listing[:25]:
        print("   ", line)
    print("    ...")
    print()

    # 3. Execute on the functional VM; the trace records every committed
    #    instruction with its memory classification.
    vm, trace = run_program(program)
    print(f"program output: {vm.stdout.strip()!r} (exit {vm.exit_code})")
    tstats = trace.stats
    print(f"dynamic instructions : {tstats.instructions}")
    print(f"  local refs         : {tstats.local_refs} "
          f"({tstats.local_fraction:.0%} of memory refs)")
    print(f"  ambiguous refs     : {tstats.ambiguous_refs} "
          "(classified by the 1-bit region predictor at dispatch)")
    print(f"  calls / max depth  : {tstats.calls} / {tstats.max_call_depth}")
    print(f"  mean frame size    : {tstats.frame_sizes.mean():.1f} words")
    print()

    # 4. Time it on a decoupled machine.
    config = MachineConfig.baseline(l1_ports=2, lvc_ports=2,
                                    fast_forwarding=True, combining=2)
    result = Processor(config).run(trace.insts, "histogram")
    print(f"timing on (2+2): {result.cycles} cycles, IPC {result.ipc:.2f}")
    print(f"  LVC serviced {result.counters.get('lvc.accesses')} accesses "
          f"at {1 - result.lvc_miss_rate:.1%} hit rate")


if __name__ == "__main__":
    main()

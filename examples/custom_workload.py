"""Define a new calibrated workload and reproduce the paper's analysis
pipeline on it.

WorkloadSpec is the library's workload-description language: if you know a
program's stream statistics (memory mix, local fraction, frame behaviour,
reuse distances), you can study how it would behave on a data-decoupled
machine without ever having the program itself.  Here we model a
"database-server-like" workload and a "streaming-kernel-like" one.

Run:  python examples/custom_workload.py
"""

from repro import MachineConfig, Processor
from repro.mem.cache import Cache, CacheGeometry
from repro.stats.report import Table
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import generate_trace

SERVER = WorkloadSpec(
    "custom.server", paper_minst=100,
    load_frac=0.27, store_frac=0.13,
    local_load_frac=0.55, local_store_frac=0.75,
    frame_mean=5.0, frame_tail_prob=0.03, frame_tail_words=64,
    max_depth=18, call_rate=0.02, reuse_distance=50, ws_words=6_000,
    description="call-heavy pointer-chasing server code",
)

STREAMER = WorkloadSpec(
    "custom.streamer", paper_minst=100,
    load_frac=0.30, store_frac=0.10,
    local_load_frac=0.05, local_store_frac=0.10,
    frame_mean=2.0, frame_tail_prob=0.0, frame_tail_words=0,
    max_depth=3, call_rate=0.001, reuse_distance=200, ws_words=40_000,
    fp_frac=0.3, interleave=0.1, is_fp=True,
    description="streaming FP kernel, almost no stack traffic",
)


def analyse(spec: WorkloadSpec, length: int = 50_000) -> None:
    trace = generate_trace(spec, length)
    stats = trace.stats
    print(f"== {spec.name}: {spec.description}")
    print(f"   local refs {stats.local_fraction:.0%}, "
          f"mean frame {stats.frame_sizes.mean():.1f} words, "
          f"max call depth {stats.max_call_depth}")

    # Would a 2KB LVC hold this workload's stack? (paper Figure 6 analysis)
    lvc = Cache("lvc", CacheGeometry(2048, 1, 32))
    for inst in trace:
        if inst.is_mem and inst.is_local:
            lvc.access(inst.addr, inst.is_store)
    if lvc.accesses:
        print(f"   2KB LVC hit rate: {1 - lvc.miss_rate:.2%}")
    else:
        print("   (no local traffic: an LVC would sit idle)")

    # Timing across the interesting configurations.
    table = Table(["config", "IPC", "vs (2+0)"], precision=3)
    base = None
    for n, m in [(2, 0), (2, 2), (4, 0)]:
        config = MachineConfig.baseline(
            l1_ports=n, lvc_ports=m,
            fast_forwarding=m > 0, combining=2 if m else 1,
        )
        result = Processor(config).run(trace.insts, spec.name)
        if base is None:
            base = result
        table.add_row(f"({n}+{m})", result.ipc,
                      result.ipc / base.ipc)
    print("\n".join("   " + line for line in table.render().splitlines()))
    print()


def main() -> None:
    analyse(SERVER)
    analyse(STREAMER)
    print("Reading: the server workload behaves like 147.vortex "
          "(decoupling wins);")
    print("the streamer behaves like 102.swim (spend ports on the L1 "
          "instead).")


if __name__ == "__main__":
    main()

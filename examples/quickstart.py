"""Quickstart: simulate one workload on a conventional and a decoupled
machine and compare.

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, Processor
from repro.workloads import build_trace


def main() -> None:
    # 1. Build a dynamic instruction trace.  "147.vortex" is the suite's
    #    most local-variable-heavy program (~70% of its memory references
    #    target the run-time stack).
    trace = build_trace("147.vortex", length=60_000)
    stats = trace.stats
    print(f"workload: {trace.name}")
    print(f"  instructions : {stats.instructions}")
    print(f"  loads/stores : {stats.loads}/{stats.stores}")
    print(f"  local refs   : {stats.local_fraction:.0%} of memory refs")
    print()

    # 2. A conventional machine: one unified L1 with two ideal ports.
    conventional = MachineConfig.baseline(l1_ports=2, lvc_ports=0)
    base = Processor(conventional).run(trace.insts, trace.name)
    print(f"(2+0) conventional : IPC {base.ipc:.2f}")

    # 3. The paper's data-decoupled machine: local variable accesses are
    #    steered at dispatch into a separate queue (LVAQ) and cache (LVC),
    #    with fast data forwarding and two-way access combining.
    decoupled = MachineConfig.baseline(
        l1_ports=2, lvc_ports=2, fast_forwarding=True, combining=2
    )
    result = Processor(decoupled).run(trace.insts, trace.name)
    print(f"(2+2) decoupled    : IPC {result.ipc:.2f} "
          f"({result.ipc / base.ipc - 1:+.1%})")
    print()

    # 4. What happened inside the decoupled machine.
    c = result.counters
    print("decoupled machine details:")
    print(f"  LVAQ loads/stores  : {c.get('lvaq.loads')}/"
          f"{c.get('lvaq.stores')}")
    print(f"  LVC hit rate       : {1 - result.lvc_miss_rate:.2%}")
    print(f"  in-queue forwards  : {c.get('lvaq.forwards')} "
          f"(+{c.get('lvaq.fast_forwards')} fast)")
    print(f"  combined accesses  : {c.get('lvaq.load_combined')} loads, "
          f"{c.get('lvaq.store_combined')} stores")
    print(f"  L2 bus traffic     : {result.l2_traffic} "
          f"(vs {base.l2_traffic} without the LVC)")


if __name__ == "__main__":
    main()

"""Design-space exploration: pick a memory system under a port budget.

The paper's core argument is that splitting the memory ports between a
conventional L1 and a small LVC can beat spending them all on one big
multi-ported cache.  This example sweeps every way to spend a total port
budget and reports which split wins per workload — the kind of study a
microarchitect would run with this library.

Run:  python examples/design_space.py [total_ports] [workload ...]
"""

import sys

from repro import MachineConfig, Processor
from repro.stats.report import Table
from repro.workloads import build_trace

DEFAULT_WORKLOADS = ("130.li", "147.vortex", "129.compress", "102.swim")


def sweep(workload: str, total_ports: int, length: int = 50_000):
    """All (N+M) splits with N+M == total_ports; returns {(n, m): ipc}."""
    trace = build_trace(workload, length=length)
    results = {}
    for lvc_ports in range(total_ports):
        l1_ports = total_ports - lvc_ports
        config = MachineConfig.baseline(
            l1_ports=l1_ports, lvc_ports=lvc_ports,
            fast_forwarding=lvc_ports > 0, combining=2 if lvc_ports else 1,
        )
        result = Processor(config).run(trace.insts, workload)
        results[(l1_ports, lvc_ports)] = result.ipc
    return results


def main() -> None:
    args = sys.argv[1:]
    total_ports = int(args[0]) if args else 4
    workloads = tuple(args[1:]) or DEFAULT_WORKLOADS

    splits = [(total_ports - m, m) for m in range(total_ports)]
    table = Table(
        ["workload"] + [f"({n}+{m})" for n, m in splits] + ["winner"],
        precision=2,
        title=f"Best way to spend {total_ports} cache ports (IPC)",
    )
    for workload in workloads:
        results = sweep(workload, total_ports)
        best = max(results, key=results.get)
        table.add_row(
            workload,
            *[results[split] for split in splits],
            f"({best[0]}+{best[1]})",
        )
    print(table.render())
    print()
    print("Reading: integer programs with heavy stack traffic prefer "
          "giving ports to an LVC;")
    print("FP codes (poorly interleaved local accesses) prefer the "
          "unified cache.")


if __name__ == "__main__":
    main()

"""Figure 6: LVC miss rate vs LVC size (0.5-4 KB, direct-mapped).

Paper shape: a 2 KB LVC exceeds 99% hit rate for every program except
126.gcc; 4 KB reaches 99.5%+ for all.  Also reports the Section 4.2.1 L2
traffic change from adding a 2 KB LVC (li/vortex see real reductions).
"""

from conftest import SCALE, save_result

from repro.experiments import fig6_lvc_miss
from repro.stats.report import Table


def bench_fig6_lvc_miss(benchmark):
    rows = benchmark.pedantic(fig6_lvc_miss.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("fig6_lvc_miss", fig6_lvc_miss.render(rows))

    # Short traces inflate cold-miss rates; only hold the paper's 99% line
    # at (near-)full scale.
    hit99_bound = 0.01 if SCALE >= 0.8 else 0.02
    for name, curve in rows.items():
        # monotone non-increasing with size
        assert curve[512] >= curve[1024] >= curve[2048] >= curve[4096]
        if name != "126.gcc":
            assert curve[2048] < hit99_bound, name
    assert rows["126.gcc"][2048] > 0.005
    assert rows["126.gcc"][512] == max(r[512] for r in rows.values())


def bench_fig6_l2_traffic(benchmark):
    change = benchmark.pedantic(fig6_lvc_miss.l2_traffic_change,
                                kwargs={"scale": SCALE},
                                rounds=1, iterations=1)
    table = Table(["program", "L2 traffic (3+2)/(3+0)"], precision=3,
                  title="Section 4.2.1: relative L2 traffic with a 2KB LVC")
    for name, value in change.items():
        table.add_row(name, value)
    save_result("fig6_l2_traffic", table.render())
    assert change["130.li"] <= 1.05
    assert change["147.vortex"] <= 1.05

"""Figure 5: relative performance of (N+0) configurations vs (16+0).

Paper shape: performance saturates by 3-4 ports; li/vortex are the most
bandwidth-sensitive programs.
"""

from conftest import SCALE, save_result

from repro.experiments import fig5_bandwidth


def bench_fig5_bandwidth(benchmark):
    rows = benchmark.pedantic(fig5_bandwidth.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("fig5_bandwidth", fig5_bandwidth.render(rows))

    average = fig5_bandwidth.average_curve(rows)
    # monotone saturation
    assert average[1] < average[2] < average[3] <= average[4] + 0.01
    assert average[4] > 0.85
    # li and vortex most sensitive at one port
    most_sensitive = min(rows, key=lambda p: rows[p][1])
    assert most_sensitive in ("130.li", "147.vortex")

"""Table 2: benchmark inventory with measured trace statistics."""

from conftest import SCALE, save_result

from repro.experiments import table2_workloads


def bench_table2_workloads(benchmark):
    rows = benchmark.pedantic(table2_workloads.run,
                              kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("table2_workloads", table2_workloads.render(rows))
    assert len(rows) == 12
    for row in rows:
        assert row.trace_len > 0

"""Figure 8: access combining under (3+1) and (3+2).

Paper shape: two-way combining gains ~8% at (3+1) and ~2% at (3+2) on
average; li/vortex are the big winners (bursty save/restore traffic);
combining matters more when LVC bandwidth is scarcer.
"""

from conftest import SCALE, save_result

from repro.experiments import fig8_combining
from repro.utils import geometric_mean


def bench_fig8_combining(benchmark):
    rows = benchmark.pedantic(fig8_combining.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("fig8_combining", fig8_combining.render(rows))

    def avg(n, m, degree):
        return geometric_mean(row[(n, m, degree)] for row in rows.values())

    # combining helps, and helps more at one port than at two
    assert avg(3, 1, 2) > 1.01
    assert avg(3, 1, 2) > avg(3, 2, 2)
    # four-way over two-way is a smaller step than two-way over none
    assert avg(3, 1, 4) / avg(3, 1, 2) < avg(3, 1, 2)
    # vortex is an outlier beneficiary
    assert rows["147.vortex"][(3, 1, 2)] >= avg(3, 1, 2)

"""Figure 2: memory access instruction frequencies.

Paper shape: ~30% of loads and ~48% of stores are local on average; local
references are 10% (compress) to ~70% (vortex) of all memory references.
"""

from conftest import SCALE, save_result

from repro.experiments import fig2_memfreq


def bench_fig2_memfreq(benchmark):
    rows = benchmark.pedantic(fig2_memfreq.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("fig2_memfreq", fig2_memfreq.render(rows))

    by_name = {row.program: row for row in rows}
    # vortex is the local-heavy extreme; compress the light one
    assert by_name["147.vortex"].local_mem_frac > 0.6
    assert by_name["129.compress"].local_mem_frac < 0.2
    average = sum(r.local_mem_frac for r in rows) / len(rows)
    assert 0.2 < average < 0.5  # paper: ~36%

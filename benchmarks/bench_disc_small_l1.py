"""Section 4.4 discussion: the 2KB fast L1 alternative.

Paper claim: the small cache's higher miss rate negates its latency win
"unless the L2 cache latency is less than four cycles".
"""

from conftest import SCALE, save_result

from repro.experiments import disc_small_l1
from repro.utils import geometric_mean


def bench_disc_small_l1(benchmark):
    rows = benchmark.pedantic(disc_small_l1.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    text = disc_small_l1.render(rows)
    crossover = disc_small_l1.crossover_latency(rows)
    save_result("disc_small_l1",
                text + f"\n\ncrossover L2 latency: {crossover} cycles "
                       "(paper: < 4 cycles)")

    latencies = sorted(next(iter(rows.values())))
    means = {lat: geometric_mean(row[lat] for row in rows.values())
             for lat in latencies}
    # the small cache's advantage decays with L2 latency...
    assert means[2] > means[12]
    # ...and is gone by the base machine's 12-cycle L2
    assert means[12] < 1.0
    assert crossover <= 8

"""Figure 11: per-program (N+M) surfaces for gcc, li, vortex and swim.

Paper shape: when bandwidth is scarce (N=2), adding a two-port LVC gives
li a >25% speedup; with ample bandwidth (N=4) the LVC is worth little.
swim barely reacts to the LVC at any N.
"""

from conftest import SCALE, save_result

from repro.experiments import fig11_programs


def bench_fig11_programs(benchmark):
    rows = benchmark.pedantic(fig11_programs.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("fig11_programs", fig11_programs.render(rows))

    li = rows["130.li"]
    gain_n2 = li[(2, 2)] / li[(2, 0)]
    gain_n4 = li[(4, 2)] / li[(4, 0)]
    assert gain_n2 > 1.20       # paper: "spectacular speedup of over 25%"
    assert gain_n4 < gain_n2 - 0.1

    swim = rows["102.swim"]
    assert swim[(2, 2)] / swim[(2, 0)] < 1.10

"""Ablation: realistic multi-port implementations (paper Section 1).

Regenerates the argument behind the paper's motivation: banked and
replicated 4-port caches fall short of the ideal assumption, while the
decoupled (2+2) design built from simple 2-port structures stays
competitive with the ideal 4-port cache.
"""

from conftest import SCALE, save_result

from repro.experiments import ablation_multiport
from repro.utils import geometric_mean


def bench_ablation_multiport(benchmark):
    rows = benchmark.pedantic(ablation_multiport.run,
                              kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("ablation_multiport", ablation_multiport.render(rows))

    def avg(name):
        return geometric_mean(row[name] for row in rows.values())

    assert avg("banked(4+0)") < 0.98
    assert avg("replicated(4+0)") < 0.98
    assert avg("ideal(2+2)") > 0.92
    assert avg("ideal(2+2)") > avg("banked(4+0)")

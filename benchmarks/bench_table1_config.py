"""Table 1: the base machine model (consistency check + print)."""

from conftest import save_result

from repro.experiments import table1_config


def bench_table1_config(benchmark):
    rows = benchmark.pedantic(table1_config.run, rounds=1, iterations=1)
    text = table1_config.render(rows)
    save_result("table1_config", text)
    assert all(ok for _, _, ok in rows), "machine model drifted from Table 1"

"""Ablation: window sizing (ROB and LVAQ) on the (3+2) machine."""

from conftest import SCALE, save_result

from repro.experiments import ablation_window
from repro.utils import geometric_mean


def bench_ablation_window(benchmark):
    def run_both():
        return (ablation_window.run_rob(scale=SCALE),
                ablation_window.run_lvaq(scale=SCALE))

    rob_rows, lvaq_rows = benchmark.pedantic(run_both, rounds=1,
                                             iterations=1)
    save_result("ablation_window",
                ablation_window.render(rob_rows, lvaq_rows))

    def rob_avg(size):
        return geometric_mean(row[size] for row in rob_rows.values())

    def lvaq_avg(size):
        return geometric_mean(row[size] for row in lvaq_rows.values())

    # a small window starves the machine; returns diminish as it grows
    assert rob_avg(32) < rob_avg(64) < rob_avg(128) <= rob_avg(256)
    assert rob_avg(128) / rob_avg(64) > rob_avg(256) / rob_avg(128)
    # LVAQ capacity is a real resource for local-heavy programs: shrinking
    # it hurts monotonically (these are the three most local-heavy
    # programs; the paper's 64 entries are well spent)
    assert lvaq_avg(8) < lvaq_avg(16) < lvaq_avg(32) < lvaq_avg(64)
    assert lvaq_avg(32) > 0.75

"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables or figures at
the scale given by the ``REPRO_SCALE`` environment variable (default 1.0 =
the scaled Table 2 trace lengths).  Rendered tables are printed and written
to ``results/<name>.txt`` so the output survives pytest's capture.
"""

from __future__ import annotations

import os
import pathlib

import pytest

#: Trace-length scale for all benchmarks.
SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def save_result(name: str, text: str) -> None:
    """Persist a rendered table under results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


@pytest.fixture(scope="session", autouse=True)
def _report_scale():
    print(f"\n[benchmarks running at REPRO_SCALE={SCALE}]")
    yield

"""Figure 9: (N+M) performance with fast forwarding + two-way combining.

Paper shape: compared with Figure 7, the (N+1) configurations are
noticeably repaired by the optimizations.
"""

from conftest import SCALE, save_result

from repro.experiments import fig7_ports, fig9_optimized


def bench_fig9_optimized(benchmark):
    rows = benchmark.pedantic(fig9_optimized.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("fig9_optimized", fig9_optimized.render(rows))

    plain = fig7_ports.run(scale=SCALE)
    optimized_avg = fig7_ports.average_surface(rows)
    plain_avg = fig7_ports.average_surface(plain)
    # the optimizations repair the (N+1) configurations
    for n in (2, 3, 4):
        assert optimized_avg[(n, 1)] > plain_avg[(n, 1)]
    # and never hurt the well-provisioned ones
    assert optimized_avg[(3, 2)] >= plain_avg[(3, 2)] - 0.02

"""Table 3: fast data forwarding speedup under (3+2).

Paper shape: small speedups (0 to 3.9%); 124.m88ksim gains nothing (its
store->reload distances exceed the LVAQ residency).
"""

from conftest import SCALE, save_result

from repro.experiments import table3_forwarding


def bench_table3_forwarding(benchmark):
    rows = benchmark.pedantic(table3_forwarding.run,
                              kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("table3_forwarding", table3_forwarding.render(rows))

    by_name = {row.program: row for row in rows}
    assert abs(by_name["124.m88ksim"].speedup) < 0.03
    for row in rows:
        assert -0.03 < row.speedup < 0.10, row.program
        assert 0.0 <= row.forward_rate <= 1.0

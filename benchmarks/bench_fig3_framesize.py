"""Figure 3: dynamic frame-size distribution of the integer programs.

Paper shape: dynamic frames are tiny (mean ~3 words); the distribution has
a short body and a thin large-frame tail.
"""

from conftest import SCALE, save_result

from repro.experiments import fig3_framesize


def bench_fig3_framesize(benchmark):
    hists = benchmark.pedantic(fig3_framesize.run, kwargs={"scale": SCALE},
                               rounds=1, iterations=1)
    save_result("fig3_framesize", fig3_framesize.render(hists))

    pooled = fig3_framesize.pooled(hists)
    assert pooled.percentile(0.5) <= 6     # typical frames are a few words
    assert pooled.mean() < 20
    assert pooled.max() <= 300             # paper: largest frame 282 words

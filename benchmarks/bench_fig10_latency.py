"""Figure 10: sensitivity to cache access latency.

Paper shape: (4+0) with a 3-cycle hit loses noticeably versus its 2-cycle
variant (and can fall below (2+0)); (2+2) beats the 3-cycle (4+0) on
integer programs but not on the FP programs, whose local/non-local streams
are poorly interleaved.
"""

from conftest import SCALE, save_result

from repro.experiments import fig10_latency
from repro.utils import geometric_mean
from repro.workloads.spec import FP_PROGRAMS, INT_PROGRAMS


def bench_fig10_latency(benchmark):
    rows = benchmark.pedantic(fig10_latency.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("fig10_latency", fig10_latency.render(rows))

    for name, row in rows.items():
        assert row["(4+0) 3cyc"] <= row["(4+0)"] + 0.01, name

    # Decoupling beats the slow big cache on the local-heavy integer
    # programs (the paper reports this for all integer programs; in our
    # calibration the mid-local ones — go, m88ksim, ijpeg — stay slightly
    # ahead on (4+0)@3cyc; see EXPERIMENTS.md).
    for name in ("130.li", "147.vortex", "126.gcc"):
        assert rows[name]["(2+2)"] >= rows[name]["(4+0) 3cyc"] - 0.01, name
    int_22 = geometric_mean(rows[p]["(2+2)"] for p in INT_PROGRAMS)
    int_40slow = geometric_mean(rows[p]["(4+0) 3cyc"] for p in INT_PROGRAMS)
    assert int_22 > int_40slow - 0.05

    fp_22 = geometric_mean(rows[p]["(2+2)"] for p in FP_PROGRAMS)
    fp_40 = geometric_mean(rows[p]["(4+0)"] for p in FP_PROGRAMS)
    assert fp_40 >= fp_22 - 0.02  # FP programs prefer the unified cache

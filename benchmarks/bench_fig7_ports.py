"""Figure 7: (N+M) performance relative to (2+0), no LVAQ optimizations.

Paper shape: (N+1) degrades vs (N+0) (poor load balance: the one-port LVC
becomes the bottleneck); (N+2) restores and beats (N+0); three or more LVC
ports add little.
"""

from conftest import SCALE, save_result

from repro.experiments import fig7_ports


def bench_fig7_ports(benchmark):
    rows = benchmark.pedantic(fig7_ports.run, kwargs={"scale": SCALE},
                              rounds=1, iterations=1)
    save_result("fig7_ports", fig7_ports.render(rows))

    average = fig7_ports.average_surface(rows)
    # (N+2) beats (N+0) for every N
    for n in (2, 3, 4):
        assert average[(n, 2)] > average[(n, 0)]
        # beyond two LVC ports the marginal gain is small
        assert average[(n, 16)] / average[(n, 3)] < 1.06
    # the one-port LVC hurts the most local-heavy program
    vortex = rows["147.vortex"]
    for n in (3, 4):
        assert vortex[(n, 1)] < vortex[(n, 0)]

"""Tests for the trace-analysis tools."""

from repro.analysis import (
    burstiness_profile,
    classification_report,
    reuse_distance_profile,
    working_set_words,
)
from repro.isa.opcodes import FuClass
from repro.vm.trace import DynInst

IALU = int(FuClass.IALU)
LOAD = int(FuClass.LOAD)
STORE = int(FuClass.STORE)

STACK = 0x7FFF0000
DATA = 0x10000000


def load(addr, local=True, hint=True):
    return DynInst(LOAD, dst=8, srcs=(29,), addr=addr, size=4,
                   local_hint=hint, is_local=local)


def store(addr, local=True, hint=True):
    return DynInst(STORE, srcs=(29, 8), addr=addr, size=4,
                   local_hint=hint, is_local=local)


def alu():
    return DynInst(IALU, dst=8)


def test_reuse_distance_basic():
    trace = [store(STACK), alu(), alu(), load(STACK)]
    profile = reuse_distance_profile(trace)
    assert profile.total == 1
    assert profile.min() == 3


def test_reuse_distance_latest_store_wins():
    trace = [store(STACK), store(STACK), load(STACK)]
    profile = reuse_distance_profile(trace)
    assert profile.min() == 1


def test_reuse_distance_skips_never_stored():
    profile = reuse_distance_profile([load(STACK)])
    assert profile.total == 0


def test_reuse_distance_local_filter():
    trace = [store(DATA, local=False), load(DATA, local=False)]
    assert reuse_distance_profile(trace, local_only=True).total == 0
    assert reuse_distance_profile(trace, local_only=False).total == 1


def test_working_set_split():
    trace = [store(STACK), load(STACK), load(STACK + 4),
             load(DATA, local=False)]
    local, other = working_set_words(trace)
    assert local == 2
    assert other == 1


def test_burstiness_runs():
    trace = [
        store(STACK), store(STACK + 4), store(STACK + 8),  # run of 3
        load(DATA, local=False),
        load(STACK),                                        # run of 1
        alu(),                                              # doesn't break
        load(STACK + 4),                                    # still run -> 2
    ]
    profile = burstiness_profile(trace)
    assert profile.count(3) == 1
    assert profile.count(2) == 1
    assert profile.total == 2


def test_burstiness_trailing_run_counted():
    profile = burstiness_profile([store(STACK)])
    assert profile.count(1) == 1


def test_classification_report_counts():
    trace = [
        load(STACK, local=True, hint=True),       # correct local hint
        load(DATA, local=False, hint=False),      # correct nonlocal hint
        load(STACK, local=True, hint=None),       # ambiguous, local
        load(DATA, local=False, hint=None),       # ambiguous, nonlocal
        load(DATA, local=False, hint=True),       # WRONG hint
    ]
    report = classification_report(trace)
    assert report.total == 5
    assert report.ambiguous == 2
    assert report.ambiguous_actually_local == 1
    assert report.hint_wrong == 1
    assert report.hint_accuracy == 1 - 1 / 3
    assert report.ambiguous_fraction == 2 / 5


def test_classification_on_real_workload():
    """Paper Section 2.2.3: hints are near-perfect, ambiguity is rare."""
    from repro.workloads.builder import build_trace

    trace = build_trace("147.vortex", length=20_000, seed=4)
    report = classification_report(trace.insts)
    assert report.hint_accuracy > 0.99
    assert report.ambiguous_fraction < 0.02


def test_compress_has_short_reuse_distances():
    """Calibration check via the analysis tools themselves."""
    from repro.workloads.builder import build_trace

    compress = reuse_distance_profile(
        build_trace("129.compress", length=30_000, seed=4).insts
    )
    m88k = reuse_distance_profile(
        build_trace("124.m88ksim", length=30_000, seed=4).insts
    )
    assert compress.percentile(0.5) < m88k.percentile(0.5)

"""Tests for the memory access queues (LSQ / LVAQ mechanics)."""

import pytest

from repro.errors import SimulationError
from repro.isa.opcodes import FuClass
from repro.pipeline.memqueue import INF_SEQ, MemQueue, MemQueueEntry
from repro.pipeline.rob import COMMITTED, RobEntry
from repro.vm.trace import DynInst


def make_entry(seq, is_store, word=0, addr_known=True, sp_based=False,
               frame_key=None):
    rob = RobEntry(seq, DynInst(
        int(FuClass.STORE if is_store else FuClass.LOAD),
        srcs=(29,), addr=word * 4, size=4,
    ))
    qe = MemQueueEntry(rob, is_store, dispatch_time=0, sp_based=sp_based,
                       frame_key=frame_key)
    rob.mem = qe
    if addr_known:
        qe.addr_known_time = 1
        qe.word = word
        qe.line = word >> 3
    return qe


def test_capacity():
    queue = MemQueue(2)
    queue.append(make_entry(0, False))
    queue.append(make_entry(1, False))
    assert queue.full
    with pytest.raises(SimulationError):
        queue.append(make_entry(2, False))


def test_retire_committed_from_head():
    queue = MemQueue(4)
    a = make_entry(0, True)
    b = make_entry(1, False)
    queue.append(a)
    queue.append(b)
    a.rob.state = COMMITTED
    queue.retire_committed()
    assert queue.occupancy() == 1
    assert queue.entries[0] is b


def test_retire_stops_at_uncommitted():
    queue = MemQueue(4)
    a, b, c = make_entry(0, True), make_entry(1, True), make_entry(2, True)
    for e in (a, b, c):
        queue.append(e)
    c.rob.state = COMMITTED  # committed but behind uncommitted entries
    queue.retire_committed()
    assert queue.occupancy() == 3


def test_oldest_unknown_store():
    queue = MemQueue(8)
    queue.append(make_entry(0, True, addr_known=True))
    unknown = make_entry(1, True, addr_known=False)
    queue.append(unknown)
    queue.append(make_entry(2, True, addr_known=False))
    assert queue.oldest_unknown_store_seq() == 1
    unknown.addr_known_time = 5
    assert queue.oldest_unknown_store_seq() == 2


def test_no_unknown_store_is_inf():
    queue = MemQueue(4)
    queue.append(make_entry(0, False))
    assert queue.oldest_unknown_store_seq() == INF_SEQ


def test_forward_source_youngest_match():
    queue = MemQueue(8)
    older = make_entry(0, True, word=10)
    newer = make_entry(1, True, word=10)
    load = make_entry(2, False, word=10)
    other = make_entry(3, True, word=10)  # younger than load: ignored
    for e in (older, newer, load, other):
        queue.append(e)
    assert queue.forward_source(load) is newer


def test_forward_source_no_match():
    queue = MemQueue(8)
    store = make_entry(0, True, word=10)
    load = make_entry(1, False, word=11)
    queue.append(store)
    queue.append(load)
    assert queue.forward_source(load) is None


def test_fast_forward_match_by_frame_key():
    queue = MemQueue(8)
    store = make_entry(0, True, word=10, sp_based=True, frame_key=(3, 8))
    load = make_entry(1, False, word=10, sp_based=True, frame_key=(3, 8),
                      addr_known=False)
    queue.append(store)
    queue.append(load)
    source, conclusive = queue.fast_forward_source(load)
    assert source is store
    assert conclusive


def test_fast_forward_different_offset_is_conclusive_no_match():
    queue = MemQueue(8)
    store = make_entry(0, True, sp_based=True, frame_key=(3, 8),
                       addr_known=False)
    load = make_entry(1, False, sp_based=True, frame_key=(3, 12),
                      addr_known=False)
    queue.append(store)
    queue.append(load)
    source, conclusive = queue.fast_forward_source(load)
    assert source is None
    assert conclusive  # offsets disambiguate sp-relative stores exactly


def test_fast_forward_blocked_by_unknown_nonsp_store():
    queue = MemQueue(8)
    pointer_store = make_entry(0, True, addr_known=False, sp_based=False)
    load = make_entry(1, False, sp_based=True, frame_key=(3, 8),
                      addr_known=False)
    queue.append(pointer_store)
    queue.append(load)
    source, conclusive = queue.fast_forward_source(load)
    assert source is None
    assert not conclusive


def test_fast_forward_different_frames_do_not_match():
    queue = MemQueue(8)
    store = make_entry(0, True, sp_based=True, frame_key=(3, 8))
    load = make_entry(1, False, sp_based=True, frame_key=(4, 8),
                      addr_known=False)
    queue.append(store)
    queue.append(load)
    source, conclusive = queue.fast_forward_source(load)
    assert source is None
    assert conclusive


def test_non_sp_load_never_fast_forwards():
    queue = MemQueue(8)
    load = make_entry(0, False, sp_based=False)
    queue.append(load)
    source, conclusive = queue.fast_forward_source(load)
    assert source is None and not conclusive


def test_oldest_unknown_nonsp_store_skips_sp_stores():
    queue = MemQueue(8)
    queue.append(make_entry(0, True, addr_known=False, sp_based=True,
                            frame_key=(1, 0)))
    queue.append(make_entry(1, True, addr_known=False, sp_based=False))
    assert queue.oldest_unknown_store_seq() == 0
    assert queue.oldest_unknown_nonsp_store_seq() == 1

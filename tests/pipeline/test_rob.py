"""Tests for the reorder buffer."""

import pytest

from repro.errors import SimulationError
from repro.isa.opcodes import FuClass
from repro.pipeline.rob import COMMITTED, COMPLETED, DISPATCHED, Rob, RobEntry
from repro.vm.trace import DynInst


def entry(seq):
    return RobEntry(seq, DynInst(int(FuClass.IALU), dst=8, srcs=(9,)))


def test_push_and_head():
    rob = Rob(4)
    assert rob.empty
    e = entry(0)
    rob.push(e)
    assert rob.head() is e
    assert not rob.empty


def test_capacity_enforced():
    rob = Rob(2)
    rob.push(entry(0))
    rob.push(entry(1))
    assert rob.full
    with pytest.raises(SimulationError):
        rob.push(entry(2))


def test_commit_in_order():
    rob = Rob(4)
    entries = [entry(i) for i in range(3)]
    for e in entries:
        rob.push(e)
    popped = rob.pop_head()
    assert popped is entries[0]
    assert popped.state == COMMITTED
    assert rob.head() is entries[1]


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        Rob(2).pop_head()


def test_zero_size_rejected():
    with pytest.raises(SimulationError):
        Rob(0)


def test_entry_lifecycle_fields():
    e = entry(5)
    assert e.state == DISPATCHED
    assert e.pending == 0
    assert not e.completed
    e.state = COMPLETED
    assert e.completed


def test_occupancy():
    rob = Rob(8)
    for i in range(5):
        rob.push(entry(i))
    rob.pop_head()
    assert rob.occupancy() == 4
    assert len(rob) == 4

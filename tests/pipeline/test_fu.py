"""Tests for the functional-unit pools."""

import pytest

from repro.errors import ConfigError
from repro.isa.opcodes import FuClass
from repro.pipeline.fu import FuPool


def test_ialu_budget():
    fus = FuPool(ialu=2, falu=2, imultdiv=1, fmultdiv=1)
    assert fus.try_take(FuClass.IALU, 0)
    assert fus.try_take(FuClass.IALU, 0)
    assert not fus.try_take(FuClass.IALU, 0)
    fus.new_cycle()
    assert fus.try_take(FuClass.IALU, 1)


def test_mem_and_branch_share_ialu():
    fus = FuPool(ialu=1, falu=1, imultdiv=1, fmultdiv=1)
    assert fus.try_take(FuClass.LOAD, 0)
    assert not fus.try_take(FuClass.BRANCH, 0)
    assert not fus.try_take(FuClass.STORE, 0)


def test_fadd_uses_falu():
    fus = FuPool(ialu=1, falu=1, imultdiv=1, fmultdiv=1)
    assert fus.try_take(FuClass.FADD, 0)
    assert not fus.try_take(FuClass.FADD, 0)
    assert fus.try_take(FuClass.IALU, 0)  # independent pool


def test_multiply_pipelined():
    fus = FuPool(ialu=1, falu=1, imultdiv=1, fmultdiv=1)
    assert fus.try_take(FuClass.IMULT, 0)
    assert not fus.try_take(FuClass.IMULT, 0)  # one unit, one issue/cycle
    fus.new_cycle()
    assert fus.try_take(FuClass.IMULT, 1)  # pipelined: next cycle ok


def test_divide_unpipelined():
    fus = FuPool(ialu=1, falu=1, imultdiv=1, fmultdiv=1)
    assert fus.try_take(FuClass.IDIV, 0)
    fus.new_cycle()
    assert not fus.try_take(FuClass.IDIV, 1)  # unit busy for 34 cycles
    assert not fus.try_take(FuClass.IMULT, 1)  # shares the busy unit
    assert fus.try_take(FuClass.IDIV, 40)


def test_fdiv_occupies_fmult_unit():
    fus = FuPool(ialu=1, falu=1, imultdiv=1, fmultdiv=1)
    assert fus.try_take(FuClass.FDIV, 0)
    assert not fus.try_take(FuClass.FMUL, 5)
    assert fus.try_take(FuClass.FMUL, 12)


def test_multiple_div_units():
    fus = FuPool(ialu=1, falu=1, imultdiv=2, fmultdiv=1)
    assert fus.try_take(FuClass.IDIV, 0)
    assert fus.try_take(FuClass.IDIV, 0)
    assert not fus.try_take(FuClass.IDIV, 0)


def test_zero_units_rejected():
    with pytest.raises(ConfigError):
        FuPool(ialu=0)

"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.core.config import MachineConfig
from repro.workloads.builder import build_trace, clear_trace_cache


@pytest.fixture(scope="session")
def small_li_trace():
    """A short 130.li trace shared across timing tests."""
    return build_trace("130.li", length=15_000, seed=7)


@pytest.fixture(scope="session")
def small_vortex_trace():
    """A short 147.vortex trace shared across timing tests."""
    return build_trace("147.vortex", length=15_000, seed=7)


@pytest.fixture
def base_config():
    """The paper's (2+0) baseline configuration."""
    return MachineConfig.baseline(l1_ports=2, lvc_ports=0)


@pytest.fixture
def decoupled_config():
    """A (2+2) configuration with both optimizations enabled."""
    return MachineConfig.baseline(
        l1_ports=2, lvc_ports=2, fast_forwarding=True, combining=2
    )


@pytest.fixture(autouse=True, scope="session")
def _trim_cache_at_end():
    yield
    clear_trace_cache()

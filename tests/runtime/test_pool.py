"""Worker-pool failure paths: backoff, rebuilds, inline fallback, warmth."""

from __future__ import annotations

import os
import time

from repro.core.metrics import SimResult
from repro.experiments.common import nm_config
from repro.runtime.engine import JobEngine, WorkerPool
from repro.runtime.job import SimJob
from repro.stats.counters import CounterSet

MAIN_PID = os.getpid()
SCALE = 0.12


def _job(workload: str = "stub", n: int = 2, m: int = 0,
         **kwargs) -> SimJob:
    return SimJob(workload, nm_config(n, m), scale=SCALE, **kwargs)


def _stub_result(job: SimJob) -> SimResult:
    counters = CounterSet()
    counters.add("pid", os.getpid())
    return SimResult(job.config.notation(), job.workload, 100, 200,
                     counters)


# Top-level so the pool can pickle references to them; fork-started
# workers resolve them against the inherited module.

def quick_stub(job: SimJob) -> SimResult:
    return _stub_result(job)


def raise_always(job: SimJob) -> SimResult:
    raise RuntimeError(f"boom for {job.workload}")


def hang_if_marked(job: SimJob) -> SimResult:
    if job.workload == "hang":
        time.sleep(120)
    return _stub_result(job)


def die_in_worker(job: SimJob) -> SimResult:
    if os.getpid() != MAIN_PID:
        os._exit(3)
    return _stub_result(job)


def flaky_until_third(job: SimJob) -> SimResult:
    """Fails the first two attempts, succeeds on the third.

    Attempts are counted with marker files in a directory the test
    communicates through the environment (fork-started workers inherit
    it), so the count survives worker-process boundaries.
    """
    root = os.environ["REPRO_TEST_FLAKY_DIR"]
    n = len([name for name in os.listdir(root)
             if name.startswith(job.workload)])
    with open(os.path.join(root, f"{job.workload}.{n}"), "w"):
        pass
    if n < 2:
        raise RuntimeError(f"flaky attempt {n}")
    return _stub_result(job)


# -- deterministic exponential backoff ---------------------------------------


def test_backoff_schedule_doubles_and_caps():
    delays = []
    engine = JobEngine(jobs=1, backoff_base=0.5, backoff_cap=0.8,
                       sleep=delays.append)
    for attempt in (1, 2, 3, 4):
        engine._backoff(attempt)
    assert delays == [0.5, 0.8, 0.8, 0.8]
    # attempt 0 (first try) never sleeps.
    engine._backoff(0)
    assert len(delays) == 4


def test_flaky_worker_retries_with_recorded_backoff(tmp_path,
                                                    monkeypatch):
    """A job that fails twice then succeeds must complete after exactly
    the deterministic backoff schedule [base, 2*base]."""
    monkeypatch.setenv("REPRO_TEST_FLAKY_DIR", str(tmp_path))
    delays = []
    engine = JobEngine(jobs=2, retries=2, timeout=60.0,
                       sleep=delays.append)
    report = engine.run([_job("flaky")], execute=flaky_until_third)
    outcome = next(iter(report.outcomes.values()))
    assert outcome.status == "ran"
    assert outcome.attempts == 3
    assert delays == [0.05, 0.1]
    # Three attempt markers prove the executions really happened.
    assert len(os.listdir(str(tmp_path))) == 3


def test_exhausted_retries_record_failure_after_full_schedule():
    delays = []
    engine = JobEngine(jobs=2, retries=2, timeout=60.0,
                       sleep=delays.append)
    report = engine.run([_job("doomed")], execute=raise_always)
    outcome = next(iter(report.outcomes.values()))
    assert outcome.status == "failed"
    assert outcome.attempts == 3
    assert "boom" in outcome.error
    # Backoff ran before each of the two retries, never after the last.
    assert delays == [0.05, 0.1]


# -- pool lifecycle and ownership --------------------------------------------


def test_worker_pool_rejects_zero_workers():
    import pytest

    with pytest.raises(ValueError):
        WorkerPool(0)


def test_worker_pool_context_manager_stops():
    with WorkerPool(1) as pool:
        future = pool.submit(quick_stub, _job("a"))
        assert future.result().cycles == 100
        assert pool.alive
        assert pool.submissions == 1
    assert not pool.alive


def test_borrowed_pool_survives_engine_run():
    """Engines must never stop a caller-owned pool on the happy path —
    its warm workers are the whole point."""
    with WorkerPool(2) as pool:
        report = JobEngine(jobs=2, pool=pool).run(
            [_job(w) for w in "abcd"], execute=quick_stub)
        assert report.ran == 4
        assert pool.alive
        assert pool.rebuilds == 0
        first_submissions = pool.submissions
        assert first_submissions >= 4
        # And it keeps serving a second engine run.
        again = JobEngine(jobs=2, pool=pool).run(
            [_job(w) for w in "ef"], execute=quick_stub)
        assert again.ran == 2
        assert pool.submissions > first_submissions


def test_crashed_worker_rebuilds_pool_and_falls_back_inline():
    """Workers that die mid-job: the pool is rebuilt (bounded), and the
    jobs still complete in-process."""
    with WorkerPool(2) as pool:
        report = JobEngine(jobs=2, retries=1, pool=pool).run(
            [_job("a"), _job("b")], execute=die_in_worker)
        assert report.ran == 2
        assert pool.rebuilds >= 1
        for outcome in report.outcomes.values():
            assert outcome.result.counters.get("pid") == MAIN_PID


def test_hung_worker_is_killed_and_pool_rebuilt():
    with WorkerPool(2) as pool:
        started = time.monotonic()
        report = JobEngine(jobs=2, timeout=0.5, retries=0,
                           pool=pool).run([_job("hang"), _job("a")],
                                          execute=hang_if_marked)
        assert time.monotonic() - started < 30
        by_name = {o.job.workload: o for o in report.outcomes.values()}
        assert by_name["hang"].status == "timeout"
        assert by_name["a"].status == "ran"
        assert pool.rebuilds >= 1


class DeadPool(WorkerPool):
    """A pool that can never create an executor (no multiprocessing)."""

    def executor(self):
        return None


def test_inline_fallback_when_pool_cannot_start():
    report = JobEngine(jobs=2, pool=DeadPool(2)).run(
        [_job("a"), _job("b")], execute=quick_stub)
    assert report.ran == 2
    for outcome in report.outcomes.values():
        assert outcome.worker == "inline"
        assert outcome.result.counters.get("pid") == MAIN_PID


def test_batched_engine_inline_fallback_when_pool_cannot_start():
    report = JobEngine(jobs=2, batch=2, pool=DeadPool(2)).run(
        [_job(w) for w in "abc"], execute=quick_stub)
    assert report.ran == 3
    assert all(o.worker == "inline" for o in report.outcomes.values())


# -- warm-pool reuse ----------------------------------------------------------


def test_warm_pool_repeat_recompiles_nothing():
    """The acceptance criterion in miniature: a second submission of the
    same jobs through the SAME warm pool must show zero kernel compiles
    and zero trace builds/decodes — everything comes out of the worker
    process's memos."""
    # A config/scale combination nothing else in the suite simulates:
    # fork-started workers inherit the parent's warm memos, so common
    # configs could arrive pre-compiled and hide a cold run.  The odd
    # lvaq_size enters the kernel-specialization cache key, so these
    # kernels cannot exist anywhere before this test compiles them.
    def jobs():
        base = nm_config(3, 1)
        base.lvaq_size = 48
        opt = nm_config(3, 3, fast_forwarding=True, combining=2)
        opt.lvaq_size = 48
        return [SimJob("mini.matmul", base, scale=0.11),
                SimJob("mini.matmul", opt, scale=0.11)]

    # One worker so both submissions land in the same process and the
    # warm counters are deterministic.
    with WorkerPool(1) as pool:
        cold = JobEngine(jobs=2, pool=pool).run(jobs())
        assert cold.ran == 2
        cold_warm = cold.warm()
        assert cold_warm["kernel_compiles"] > 0
        assert cold_warm["trace_builds"] > 0

        warm = JobEngine(jobs=2, pool=pool).run(jobs())
        assert warm.ran == 2
        assert warm.warm() == {"kernel_compiles": 0, "trace_builds": 0,
                               "trace_decodes": 0}
        assert pool.rebuilds == 0
        # Same pool, same results: warmth never changes the numbers.
        for key, outcome in cold.outcomes.items():
            assert (outcome.result.cycles
                    == warm.outcomes[key].result.cycles)

"""The sharded result store: round-trips, migration, integrity, GC."""

from __future__ import annotations

import hashlib
import json
import os
import pickle

import pytest

from repro.runtime.registry import JobKind, register_kind
from repro.runtime.store import ResultStore, StoreProblem, runtime_store


class BlobResult:
    """Trivial result type for store tests (fast, no simulator)."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return isinstance(other, BlobResult) and other.value == self.value


class BlobJob:
    """Trivial job spec: content-addressed by name."""

    kind = "blob-test"

    def __init__(self, name, payload=None):
        self.name = name
        self.payload = payload if payload is not None else name
        self.workload = name
        self.scale = 1.0
        self.seed = 1

    @property
    def key(self):
        return hashlib.sha256(self.name.encode("utf-8")).hexdigest()

    def describe(self):
        return {"name": self.name}

    def label(self):
        return self.name


def execute_blob(job):
    return BlobResult(job.payload)


register_kind(JobKind("blob-test", BlobJob, BlobResult, execute_blob))


@pytest.fixture
def store(tmp_path):
    return ResultStore(str(tmp_path), salt="t")


def test_round_trip_and_counters(store):
    job = BlobJob("alpha", payload=[1, 2, 3])
    assert store.lookup(job) is None
    store.store(job, BlobResult([1, 2, 3]))
    found = store.lookup(job)
    assert found == BlobResult([1, 2, 3])
    assert store.writes == 1 and store.hits == 1 and store.misses == 1
    assert 0.0 < store.hit_rate < 1.0
    stats = store.stats()
    assert stats["adopted_v1"] == 0
    assert stats["salt"] == "t"


def test_flush_writes_shard_index(store):
    job = BlobJob("beta")
    store.store(job, BlobResult("beta"))
    store.lookup(job)
    store.flush()
    shard = job.key[:2]
    index_path = os.path.join(store.dir, shard, "index.json")
    with open(index_path) as handle:
        body = json.load(handle)
    entry = body["entries"][job.key]
    assert entry["kind"] == "blob-test"
    assert entry["hits"] == 1
    assert entry["size"] > 0
    assert len(entry["sha256"]) == 64
    assert entry["meta"] == {"name": "beta"}


def test_payload_lives_in_hash_prefixed_shard(store):
    job = BlobJob("gamma")
    store.store(job, BlobResult("gamma"))
    expected = os.path.join(store.dir, job.key[:2], job.key + ".pkl")
    assert os.path.exists(expected)


def test_corrupt_payload_is_a_miss_and_gets_dropped(store):
    job = BlobJob("delta")
    store.store(job, BlobResult("delta"))
    path = os.path.join(store.dir, job.key[:2], job.key + ".pkl")
    with open(path, "wb") as handle:
        handle.write(b"not a pickle")
    assert store.lookup(job) is None
    assert not os.path.exists(path)
    # The next run recomputes and re-stores cleanly.
    store.store(job, BlobResult("delta"))
    assert store.lookup(job) == BlobResult("delta")


def test_wrong_result_type_is_a_miss(store):
    job = BlobJob("epsilon")
    path = os.path.join(store.dir, job.key[:2], job.key + ".pkl")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump({"not": "a BlobResult"}, handle)
    assert store.lookup(job) is None
    assert store.misses == 1


def test_v1_entry_is_adopted_on_lookup(tmp_path):
    store = ResultStore(str(tmp_path), salt="t")
    job = BlobJob("zeta")
    # Fake a v1 flat-cache entry: <root>/v1/<salt>/<key[:2]>/<key>.pkl+.json
    v1_shard = os.path.join(str(tmp_path), "v1", "t", job.key[:2])
    os.makedirs(v1_shard)
    with open(os.path.join(v1_shard, job.key + ".pkl"), "wb") as handle:
        pickle.dump(BlobResult("zeta"), handle)
    with open(os.path.join(v1_shard, job.key + ".json"), "w") as handle:
        json.dump({"meta": {}}, handle)

    found = store.lookup(job)
    assert found == BlobResult("zeta")
    assert store.adopted == 1
    assert store.hits == 1
    assert store.writes == 0  # an adoption is not a fresh result
    # The v1 files are gone; the payload now lives in the sharded tree.
    assert not os.path.exists(os.path.join(v1_shard, job.key + ".pkl"))
    assert not os.path.exists(os.path.join(v1_shard, job.key + ".json"))
    assert os.path.exists(
        os.path.join(store.dir, job.key[:2], job.key + ".pkl"))
    # A second lookup hits v2 directly.
    assert store.lookup(job) == BlobResult("zeta")
    assert store.adopted == 1


def test_unindexed_payload_adopted_on_touch(store):
    job = BlobJob("eta")
    path = os.path.join(store.dir, job.key[:2], job.key + ".pkl")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "wb") as handle:
        pickle.dump(BlobResult("eta"), handle)
    assert store.lookup(job) == BlobResult("eta")
    store.flush()
    with open(os.path.join(store.dir, job.key[:2], "index.json")) as handle:
        entries = json.load(handle)["entries"]
    assert entries[job.key]["kind"] == "blob-test"
    assert entries[job.key]["hits"] == 1


def test_verify_clean_store_reports_nothing(store):
    for name in ("a1", "a2", "a3"):
        store.store(BlobJob(name), BlobResult(name))
    assert store.verify() == []


def test_verify_reports_corruption_without_raising(store):
    good = BlobJob("good")
    bad = BlobJob("bad")
    store.store(good, BlobResult("good"))
    store.store(bad, BlobResult("bad"))
    store.flush()
    path = os.path.join(store.dir, bad.key[:2], bad.key + ".pkl")
    with open(path, "ab") as handle:
        handle.write(b"tamper")  # hash mismatch, still unpickles

    problems = store.verify()
    assert len(problems) == 1
    assert isinstance(problems[0], StoreProblem)
    assert problems[0].key == bad.key
    assert "hash mismatch" in problems[0].issue


def test_gc_evicts_lru_until_under_budget(store):
    jobs = [BlobJob(f"gc-{i}", payload="x" * 100) for i in range(4)]
    for job in jobs:
        store.store(job, BlobResult(job.payload))
    store.flush()
    # Pin distinct access times so LRU order is deterministic: gc-0 is
    # coldest, gc-3 hottest.
    for rank, job in enumerate(jobs):
        shard = job.key[:2]
        index = store._load_index(shard)
        index[job.key]["atime"] = 1000.0 + rank
        store._mark_dirty(shard)
    store.flush()

    before = store.disk_stats()
    per_entry = before["bytes"] // 4
    budget = per_entry * 2  # room for two entries

    dry = store.gc(budget, dry_run=True)
    assert dry["dry_run"] is True
    assert [e["key"] for e in dry["evicted"]] == [jobs[0].key, jobs[1].key]
    # Dry run deletes nothing.
    assert all(store.lookup(job) is not None for job in jobs)

    report = store.gc(budget)
    assert report["dry_run"] is False
    assert [e["key"] for e in report["evicted"]] == [jobs[0].key,
                                                     jobs[1].key]
    assert report["bytes_after"] <= budget
    assert report["freed_bytes"] == report["bytes_before"] - report["bytes_after"]
    assert store.lookup(jobs[0]) is None
    assert store.lookup(jobs[1]) is None
    assert store.lookup(jobs[2]) is not None
    assert store.lookup(jobs[3]) is not None
    assert store.gc(budget, dry_run=True)["evicted"] == []


def test_gc_rejects_negative_budget(store):
    with pytest.raises(ValueError):
        store.gc(-1)


def test_disk_stats_aggregates_kinds_and_shards(store):
    for name in ("s1", "s2"):
        store.store(BlobJob(name), BlobResult(name))
    stats = store.disk_stats()
    assert stats["entries"] == 2
    assert stats["bytes"] > 0
    assert stats["kinds"] == {"blob-test": 2}
    assert sum(s["entries"] for s in stats["shards"].values()) == 2


def test_runtime_store_respects_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert runtime_store() is None
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    store = runtime_store(salt="t")
    assert store is not None
    assert store.root == str(tmp_path)
    explicit = runtime_store(str(tmp_path / "other"), salt="t")
    assert explicit.root == str(tmp_path / "other")

"""Job engine behaviour: dedupe, caching, timeouts, dead workers, and
parallel-vs-sequential determinism."""

from __future__ import annotations

import os
import time

from repro.core.config import MachineConfig
from repro.core.metrics import SimResult
from repro.experiments.common import nm_config
from repro.runtime.cache import ResultCache
from repro.runtime.engine import JobEngine
from repro.runtime.job import SimJob
from repro.stats.counters import CounterSet

MAIN_PID = os.getpid()
SCALE = 0.12


def _job(workload: str = "stub", n: int = 2, m: int = 0,
         **kwargs) -> SimJob:
    return SimJob(workload, nm_config(n, m), scale=SCALE, **kwargs)


def _stub_result(job: SimJob) -> SimResult:
    counters = CounterSet()
    counters.add("pid", os.getpid())
    return SimResult(job.config.notation(), job.workload, 100, 200,
                     counters)


# Top-level so the pool can pickle references to them; fork-started
# workers resolve them against the inherited module.

def quick_stub(job: SimJob) -> SimResult:
    return _stub_result(job)


def hang_if_marked(job: SimJob) -> SimResult:
    if job.workload == "hang":
        time.sleep(120)
    return _stub_result(job)


def die_in_worker(job: SimJob) -> SimResult:
    if os.getpid() != MAIN_PID:
        os._exit(3)
    return _stub_result(job)


def raise_always(job: SimJob) -> SimResult:
    raise RuntimeError(f"boom for {job.workload}")


def raise_for_b(job: SimJob) -> SimResult:
    if job.workload == "b":
        raise RuntimeError("boom for b")
    return _stub_result(job)


def test_dedupes_identical_jobs():
    calls = []

    def counting(job):
        calls.append(job.workload)
        return _stub_result(job)

    engine = JobEngine(jobs=1)
    report = engine.run([_job("a"), _job("a"), _job("a"), _job("b")],
                        execute=counting)
    assert sorted(calls) == ["a", "b"]
    assert report.duplicates == 2
    assert len(report.outcomes) == 2
    assert report.ran == 2 and report.cached == 0


def test_cache_round_trip_through_engine(tmp_path):
    cache = ResultCache(str(tmp_path), salt="t")
    cold = JobEngine(jobs=1, cache=cache).run([_job("a")],
                                              execute=quick_stub)
    assert cold.ran == 1 and cold.cached == 0
    warm = JobEngine(jobs=1, cache=cache).run([_job("a")],
                                              execute=quick_stub)
    assert warm.ran == 0 and warm.cached == 1
    assert warm.cache_hit_rate == 1.0
    outcome = next(iter(warm.outcomes.values()))
    assert outcome.worker == "cache"
    assert outcome.result.cycles == 100


def test_inline_failure_is_recorded_not_raised():
    report = JobEngine(jobs=1).run([_job("a")], execute=raise_always)
    outcome = next(iter(report.outcomes.values()))
    assert outcome.status == "failed"
    assert "boom" in outcome.error
    assert report.failed == [outcome]


def test_pool_runs_and_matches_inline_results():
    jobs = [_job(w) for w in ("a", "b", "c", "d")]
    parallel = JobEngine(jobs=2).run(jobs, execute=quick_stub)
    assert parallel.ran == 4
    workers = {o.worker for o in parallel.outcomes.values()}
    assert workers == {"pool"}
    # Stub results carry the executing pid: at least one must not be ours.
    pids = {o.result.counters.get("pid")
            for o in parallel.outcomes.values()}
    assert any(pid != MAIN_PID for pid in pids)


def test_hanging_job_times_out_and_others_complete():
    jobs = [_job("hang"), _job("a"), _job("b")]
    engine = JobEngine(jobs=2, timeout=1.0, retries=0)
    started = time.monotonic()
    report = engine.run(jobs, execute=hang_if_marked)
    elapsed = time.monotonic() - started
    assert elapsed < 30  # nowhere near the stub's 120s sleep
    by_name = {o.job.workload: o for o in report.outcomes.values()}
    assert by_name["hang"].status == "timeout"
    assert by_name["hang"].error and "1.0" in by_name["hang"].error
    assert by_name["a"].status == "ran"
    assert by_name["b"].status == "ran"


def test_timeout_retries_are_bounded():
    engine = JobEngine(jobs=2, timeout=0.5, retries=1)
    report = engine.run([_job("hang")], execute=hang_if_marked)
    outcome = next(iter(report.outcomes.values()))
    assert outcome.status == "timeout"
    assert outcome.attempts == 2  # initial try + one retry


def test_dead_workers_fall_back_to_in_process():
    """A job whose worker always dies must still complete (inline)."""
    report = JobEngine(jobs=2, retries=1).run(
        [_job("a"), _job("b")], execute=die_in_worker)
    assert report.ran == 2
    for outcome in report.outcomes.values():
        assert outcome.status == "ran"
        assert outcome.result.counters.get("pid") == MAIN_PID


def test_progress_events_fire():
    events = []

    def progress(event, outcome, done, total):
        events.append((event, outcome.job.workload, done, total))

    JobEngine(jobs=1, progress=progress).run(
        [_job("a"), _job("b")], execute=quick_stub)
    assert events == [("ran", "a", 1, 2), ("ran", "b", 2, 2)]


def test_parallel_is_bit_identical_to_sequential():
    """The engine must never change *what* is computed, only when."""
    def jobs():
        return [SimJob(name, config, scale=SCALE)
                for name in ("130.li", "129.compress")
                for config in (nm_config(2, 0),
                               nm_config(2, 2, fast_forwarding=True,
                                         combining=2))]

    sequential = JobEngine(jobs=1).run(jobs())
    parallel = JobEngine(jobs=2).run(jobs())
    assert list(sequential.outcomes) == list(parallel.outcomes)
    for key, seq in sequential.outcomes.items():
        par = parallel.outcomes[key]
        assert seq.result.cycles == par.result.cycles
        assert seq.result.instructions == par.result.instructions
        assert (seq.result.counters.as_dict()
                == par.result.counters.as_dict())


def test_engine_report_utilization_bounds():
    report = JobEngine(jobs=2).run([_job(w) for w in "abcd"],
                                   execute=quick_stub)
    assert 0.0 <= report.utilization <= 1.0
    assert report.busy >= 0.0


def test_rejects_bad_worker_count():
    import pytest

    with pytest.raises(ValueError):
        JobEngine(jobs=0)
    with pytest.raises(ValueError):
        JobEngine(jobs=1, batch=0)


def test_batched_pool_runs_all_jobs():
    """batch > 1 amortizes worker round trips without changing results."""
    jobs = [_job(w) for w in ("a", "b", "c", "d", "e")]
    report = JobEngine(jobs=2, batch=2).run(jobs, execute=quick_stub)
    assert report.ran == 5
    assert all(o.status == "ran" and o.worker == "pool"
               for o in report.outcomes.values())
    pids = {o.result.counters.get("pid")
            for o in report.outcomes.values()}
    assert any(pid != MAIN_PID for pid in pids)


def test_batched_failure_falls_back_per_job():
    """One bad job in a chunk must not take its siblings down: the
    siblings complete from the batch, the bad key is retried through
    the single-job path and recorded as failed."""
    jobs = [_job(w) for w in ("a", "b", "c", "d")]
    report = JobEngine(jobs=2, batch=4, retries=0).run(
        jobs, execute=raise_for_b)
    by_name = {o.job.workload: o for o in report.outcomes.values()}
    assert by_name["b"].status == "failed"
    assert "boom" in by_name["b"].error
    for name in ("a", "c", "d"):
        assert by_name[name].status == "ran"


def test_batched_is_bit_identical_to_sequential():
    def jobs():
        return [SimJob(name, config, scale=SCALE)
                for name in ("130.li", "129.compress")
                for config in (nm_config(2, 0),
                               nm_config(2, 2, fast_forwarding=True,
                                         combining=2))]

    sequential = JobEngine(jobs=1).run(jobs())
    batched = JobEngine(jobs=2, batch=3).run(jobs())
    assert list(sequential.outcomes) == list(batched.outcomes)
    for key, seq in sequential.outcomes.items():
        bat = batched.outcomes[key]
        assert seq.result.cycles == bat.result.cycles
        assert (seq.result.counters.as_dict()
                == bat.result.counters.as_dict())

"""The job-kind registry: one protocol, loud failures for unknown kinds."""

from __future__ import annotations

import pytest

from repro.runtime import registry
from repro.runtime.job import MixJob, SimJob
from repro.runtime.registry import (
    JobKind,
    decode_job,
    get_kind,
    kind_for,
    register_kind,
    registered_kinds,
)


def test_builtin_kinds_register():
    kinds = registered_kinds()
    assert {"sim", "mix", "fuzz", "trace"} <= set(kinds)
    sim = kinds["sim"]
    assert sim.spec_type is SimJob
    assert sim.cacheable
    assert kinds["trace"].cacheable is False


def test_unknown_kind_raises_runtime_error_naming_registered():
    with pytest.raises(RuntimeError) as excinfo:
        get_kind("warp-drive")
    message = str(excinfo.value)
    assert "unknown job kind 'warp-drive'" in message
    # The error must NAME the registered kinds so the fix is obvious.
    for name in ("fuzz", "mix", "sim", "trace"):
        assert name in message


def test_kindless_spec_raises_when_required():
    class Legacy:
        pass

    with pytest.raises(RuntimeError) as excinfo:
        kind_for(Legacy())
    assert "declares no job kind" in str(excinfo.value)
    assert "sim" in str(excinfo.value)
    # Legacy callers that bring their own execute opt out explicitly.
    assert kind_for(Legacy(), required=False) is None


def test_kind_dispatch_matches_spec_classes():
    from repro.experiments.common import nm_config

    sim = SimJob("mini.qsort", nm_config(2, 0))
    mix = MixJob(("mini.qsort", "mini.matmul"), nm_config(2, 0))
    assert kind_for(sim).name == "sim"
    assert kind_for(mix).name == "mix"


def test_decode_job_round_trip():
    job = decode_job({"kind": "sim", "workload": "mini.qsort",
                      "config": "2+2:opt", "scale": 0.5, "seed": 7})
    assert isinstance(job, SimJob)
    assert job.workload == "mini.qsort"
    assert job.scale == 0.5 and job.seed == 7
    assert job.config.mem.lvc_ports == 2
    # Same payload -> same content-addressed key.
    again = decode_job({"kind": "sim", "workload": "mini.qsort",
                        "config": "2+2:opt", "scale": 0.5, "seed": 7})
    assert again.key == job.key


def test_decode_job_unknown_kind_fails_loudly():
    with pytest.raises(RuntimeError, match="unknown job kind"):
        decode_job({"kind": "nope"})
    with pytest.raises(RuntimeError, match="job payload must be an object"):
        decode_job(["sim"])


def test_config_overrides_apply_and_reject_bad_paths():
    from repro.errors import ReproError
    from repro.runtime.job import config_from_spec

    config = config_from_spec({"notation": "2+0",
                               "overrides": {"lvaq_size": 32,
                                             "frontend.policy": "gshare"}})
    assert config.lvaq_size == 32
    assert config.frontend.policy == "gshare"
    with pytest.raises(ReproError, match="bad config override path"):
        config_from_spec({"notation": "2+0",
                          "overrides": {"no.such.path": 1}})


def test_conflicting_reregistration_rejected():
    kinds = registered_kinds()
    sim = kinds["sim"]
    try:
        # Same-spec re-registration is allowed (module reimport)...
        register_kind(JobKind("sim", sim.spec_type, sim.result_type,
                              sim.execute))
        # ...but claiming the name for a different spec class is an error.
        class Impostor:
            kind = "sim"

        with pytest.raises(RuntimeError, match="already registered"):
            register_kind(JobKind("sim", Impostor, sim.result_type,
                                  sim.execute))
        assert (registry.registered_kinds()["sim"].spec_type
                is sim.spec_type)
    finally:
        # Same-spec re-registration REPLACES the entry — put the real
        # one (with its decode/encode codecs) back for later tests.
        register_kind(sim)

"""Cache-key soundness: full field coverage, cross-process stability,
and code-salt behaviour."""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.core.config import MachineConfig
from repro.experiments.common import config_key
from repro.runtime.job import SimJob
from repro.runtime.signature import (
    code_salt,
    config_signature,
    describe_config,
)

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "src")


def _fresh_config() -> MachineConfig:
    return MachineConfig.baseline(l1_ports=2, lvc_ports=2,
                                  fast_forwarding=True, combining=2)


def _perturbations():
    """(section, field, mutator) for every scalar config field."""
    probe = _fresh_config()
    sections = {"": probe, "mem": probe.mem, "decouple": probe.decouple,
                "frontend": probe.frontend}
    for section, obj in sections.items():
        for name, value in sorted(vars(obj).items()):
            if isinstance(value, bool):
                yield section, name, (lambda v: not v)
            elif isinstance(value, int):
                yield section, name, (lambda v: v + 1)
            elif isinstance(value, float):
                yield section, name, (lambda v: v + 1.0)
            elif isinstance(value, str):
                yield section, name, (lambda v: v + "x")
            else:
                # Only the nested config objects themselves may be
                # non-scalar; anything else would dodge the signature.
                assert section == "" and name in (
                    "mem", "decouple", "frontend"), (
                    f"unhashable config field {section}.{name}")


def test_every_config_field_changes_the_key():
    """A new or edited field can never silently alias two configs."""
    base_key = config_key(_fresh_config())
    checked = 0
    for section, name, mutate in _perturbations():
        config = _fresh_config()
        target = getattr(config, section) if section else config
        setattr(target, name, mutate(getattr(target, name)))
        assert config_key(config) != base_key, (
            f"field {section or 'machine'}.{name} is not covered")
        checked += 1
    # The three config classes carry a substantial number of knobs; make
    # sure the walk actually saw them (guards against vars() going empty).
    assert checked >= 25


def test_signature_matches_class_growth():
    """describe_config() reflects dynamically added fields too."""
    config = _fresh_config()
    desc = describe_config(config)
    assert "issue_width" in desc
    assert desc["mem"]["l1_ports"] == 2
    config.mem.brand_new_knob = 7
    assert describe_config(config)["mem"]["brand_new_knob"] == 7
    assert config_signature(config) != config_signature(_fresh_config())


def _job_key_script() -> str:
    return (
        "from repro.core.config import MachineConfig\n"
        "from repro.runtime.job import SimJob\n"
        "job = SimJob('130.li', MachineConfig.baseline(l1_ports=3,"
        " lvc_ports=2, fast_forwarding=True), scale=0.25, seed=3)\n"
        "print(job.key)\n"
    )


@pytest.mark.parametrize("hashseed", ["0", "1", "31337"])
def test_job_key_stable_across_processes(hashseed):
    """The disk cache is shared across runs: keys must not depend on the
    interpreter's per-process string-hash salt."""
    local = SimJob(
        "130.li",
        MachineConfig.baseline(l1_ports=3, lvc_ports=2,
                               fast_forwarding=True),
        scale=0.25, seed=3,
    ).key
    env = dict(os.environ, PYTHONHASHSEED=hashseed, PYTHONPATH=SRC_ROOT)
    out = subprocess.run(
        [sys.executable, "-c", _job_key_script()],
        capture_output=True, text=True, env=env, check=True,
    )
    assert out.stdout.strip() == local


def test_source_text_enters_the_key():
    config = MachineConfig.baseline()
    a = SimJob("prog.mc", config, source_text="int main() { return 1; }")
    b = SimJob("prog.mc", config, source_text="int main() { return 2; }")
    assert a.key != b.key


def test_code_salt_override_and_stability(monkeypatch):
    computed = code_salt()
    assert computed == code_salt()  # memoised, stable
    monkeypatch.setenv("REPRO_CACHE_SALT", "pinned-salt")
    assert code_salt() == "pinned-salt"
    monkeypatch.delenv("REPRO_CACHE_SALT")
    assert code_salt() == computed


def test_ssa_mid_end_sources_are_salted():
    """Every module the -O pipeline runs must enter both the result-cache
    salt and the trace-capture salt: a pass edit that changes generated
    code has to invalidate cached sims *and* captured traces."""
    import repro.runtime.signature as sig

    package_root = os.path.dirname(os.path.dirname(
        os.path.abspath(sig.__file__)))
    mid_end = {os.path.join("lang", name) for name in (
        "ssa.py", "passes.py", "pipeline.py", "optimizer.py",
        "frontend.py", "codegen.py")}
    for sources in (sig._SALT_SOURCES, sig.TRACE_SALT_SOURCES):
        walked = set()
        for entry in sources:
            for path in sig._python_files(
                    os.path.join(package_root, entry)):
                walked.add(os.path.relpath(path, package_root))
        missing = mid_end - walked
        assert not missing, f"unsalted mid-end sources: {sorted(missing)}"

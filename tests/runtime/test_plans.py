"""Scheduler plans: fidelity to what experiments actually run, and
cross-figure dedup of shared configurations."""

from __future__ import annotations

import pytest

from repro.experiments import common, fig8_combining, fig10_latency
from repro.runtime import plans
from repro.runtime.engine import RuntimeSession

SCALE = 0.12
TWO_PROGRAMS = ("130.li", "129.compress")


@pytest.fixture
def observed_jobs(monkeypatch):
    """Record every cache-missing job run_sim executes, hermetically."""
    common.clear_result_cache()
    monkeypatch.setattr(common, "_SESSION", RuntimeSession(no_cache=True))
    observed = []
    monkeypatch.setattr(common, "JOB_OBSERVER", observed.append)
    yield observed
    common.clear_result_cache()


def test_fig10_plan_matches_execution(observed_jobs, monkeypatch):
    """The prewarm plan covers exactly the sims the figure executes."""
    monkeypatch.setattr(plans, "ALL_PROGRAMS", TWO_PROGRAMS)
    monkeypatch.setattr(fig10_latency, "ALL_PROGRAMS", TWO_PROGRAMS)
    planned = {job.key for job in plans.jobs_for("fig10", SCALE)}
    fig10_latency.run(scale=SCALE)
    executed = {job.key for job in observed_jobs}
    assert executed == planned


def test_fig8_plan_matches_execution(observed_jobs, monkeypatch):
    monkeypatch.setattr(plans, "INT_PROGRAMS", ("130.li",))
    monkeypatch.setattr(fig8_combining, "INT_PROGRAMS", ("130.li",))
    planned = {job.key for job in plans.jobs_for("fig8", SCALE)}
    fig8_combining.run(scale=SCALE)
    executed = {job.key for job in observed_jobs}
    assert executed == planned


def test_trace_only_experiments_plan_nothing():
    for name in ("table1", "table2", "fig2", "fig3", "fig6"):
        assert plans.jobs_for(name, SCALE) == []


def test_every_planner_name_is_a_real_experiment():
    from repro.experiments.runner import EXPERIMENTS

    assert set(plans.PLANNERS) <= set(EXPERIMENTS)


def test_shared_baseline_dedupes_across_figures():
    """The (2+0) baseline appears in fig7/fig9/fig10/fig11 — the engine
    must see those as the same key."""
    jobs = plans.collect(["fig7", "fig9", "fig10", "fig11"], SCALE)
    keys = {job.key for job in jobs}
    assert len(keys) < len(jobs)
    # Specifically: per program, (2+0) shows up in several plans but maps
    # to a single key.
    li_baseline = {job.key for job in jobs
                   if job.workload == "130.li"
                   and job.config.notation() == "(2+0)"
                   and not job.config.decouple.fast_forwarding
                   and job.config.decouple.combining == 1
                   and job.config.mem.l2_latency == 12
                   and job.config.mem.l1_hit_latency == 2
                   and job.config.mem.l1_size == 32 * 1024}
    assert len(li_baseline) == 1


def test_collect_covers_all(monkeypatch):
    all_jobs = plans.collect(sorted(plans.PLANNERS), SCALE)
    assert len(all_jobs) > 500
    for job in all_jobs:
        assert job.scale == SCALE
        assert job.seed == 1


def test_opt_levels_plan_matches_execution(observed_jobs, monkeypatch):
    from repro.experiments import opt_levels

    monkeypatch.setattr(opt_levels, "PROGRAMS", ("mini.linkedlist",))
    planned = {job.key for job in plans.jobs_for("opt-levels", SCALE)}
    opt_levels.run(scale=SCALE)
    executed = {job.key for job in observed_jobs}
    assert executed == planned
    # Both levels of the same program are distinct workloads in the plan.
    names = {job.workload for job in plans.jobs_for("opt-levels", SCALE)}
    assert names == {"mini.linkedlist@O0", "mini.linkedlist@O2"}

"""The DSE sweep driver: expansion, dedup, budgets, resumable manifest."""

from __future__ import annotations

import json

import pytest

from repro.errors import ReproError
from repro.runtime.registry import decode_job
from repro.runtime.sweep import (
    SweepManifest,
    SweepSpec,
    expand,
    format_report,
    predicted_cost,
    run_sweep,
)

SCALE = 0.12


def _spec(**kwargs):
    defaults = dict(workloads=("mini.qsort",),
                    configs=("2+0", "2+2:opt"), scale=SCALE)
    defaults.update(kwargs)
    return SweepSpec(**defaults)


# -- expansion ----------------------------------------------------------------


def test_expand_crosses_every_axis():
    spec = _spec(workloads=("mini.qsort", "mini.matmul"),
                 configs=("2+0", "4+2:opt"),
                 frontends=(None, "gshare"),
                 lvaq_sizes=(None, 32),
                 opt_levels=(0, 2))
    payloads = expand(spec)
    assert len(payloads) == spec.points() == 2 * 2 * 2 * 2 * 2
    # Every payload decodes through the same wire path the service uses.
    jobs = [decode_job(p) for p in payloads]
    assert len({job.key for job in jobs}) == len(jobs)
    names = {p["workload"] for p in payloads}
    assert names == {"mini.qsort@O0", "mini.qsort@O2",
                     "mini.matmul@O0", "mini.matmul@O2"}


def test_expand_overrides_ride_in_config_spec():
    spec = _spec(configs=("2+0",), frontends=("gshare",),
                 lvaq_sizes=(16,))
    (payload,) = expand(spec)
    assert payload["config"] == {
        "notation": "2+0",
        "overrides": {"frontend.policy": "gshare", "lvaq_size": 16},
    }
    job = decode_job(payload)
    assert job.config.frontend.policy == "gshare"
    assert job.config.lvaq_size == 16


def test_expand_rejects_opt_levels_on_non_mini_workloads():
    spec = _spec(workloads=("130.li",), opt_levels=(0,))
    with pytest.raises(ReproError, match="mini-C workloads"):
        expand(spec)


def test_spec_rejects_empty_axes():
    with pytest.raises(ReproError):
        SweepSpec(workloads=())
    with pytest.raises(ReproError):
        SweepSpec(workloads=("mini.matmul",), configs=())


def test_predicted_cost_orders_by_width():
    narrow = {"kind": "sim", "workload": "mini.matmul", "config": "2+0"}
    wide = {"kind": "sim", "workload": "mini.matmul", "config": "4+4:opt"}
    assert predicted_cost(narrow) < predicted_cost(wide)


# -- manifest -----------------------------------------------------------------


def test_manifest_round_trip_and_digest_guard(tmp_path):
    path = str(tmp_path / "sweep.json")
    spec = _spec()
    manifest = SweepManifest(path, spec)
    manifest.record("k1", {"cycles": 123})
    manifest.write(["k1", "k2"])

    with open(path) as handle:
        body = json.load(handle)
    assert body["spec_digest"] == spec.digest
    assert body["planned"] == ["k1", "k2"]
    assert body["done"]["k1"]["cycles"] == 123

    # Same spec resumes; a different spec is refused outright.
    resumed = SweepManifest(path, _spec())
    assert resumed.done == {"k1": {"cycles": 123}}
    with pytest.raises(ReproError, match="different sweep"):
        SweepManifest(path, _spec(configs=("4+0",)))


# -- the driver ---------------------------------------------------------------


def test_sweep_runs_all_points_and_is_store_backed(tmp_path):
    cache_dir = str(tmp_path / "cache")
    spec = _spec()
    report = run_sweep(spec, cache_dir=cache_dir)
    assert report.planned == 2
    assert report.completed == 2
    assert report.failed == 0 and report.skipped_budget == 0
    assert report.finished
    for summary in report.results.values():
        assert summary["cycles"] > 0
        assert summary["ipc"] > 0

    # Second run: every point answered by the store, zero budget spent.
    again = run_sweep(spec, cache_dir=cache_dir, budget_points=0)
    assert again.deduped == 2
    assert again.completed == 0 and again.skipped_budget == 0
    assert again.results.keys() == report.results.keys()
    for key, summary in again.results.items():
        assert summary["cached"] is True
        assert summary["cycles"] == report.results[key]["cycles"]
    assert format_report(spec, again)  # renders without blowing up


def test_budget_points_cuts_off_cleanly(tmp_path):
    spec = _spec(configs=("2+0", "2+2:opt", "4+0", "4+2:opt"))
    manifest = str(tmp_path / "m.json")
    partial = run_sweep(spec, no_cache=True, budget_points=2, chunk=1,
                        manifest_path=manifest)
    assert partial.planned == 4
    assert partial.completed == 2
    assert partial.skipped_budget == 2
    assert not partial.finished
    # Cheapest-first: the two narrow configs ran, the 4-port ones wait.
    labels = sorted(s["label"] for s in partial.results.values())
    assert all("(2+" in label for label in labels)

    # Resume from the manifest: only the remaining points run.
    rest = run_sweep(spec, no_cache=True, manifest_path=manifest)
    assert rest.resumed == 2
    assert rest.completed == 2
    assert rest.skipped_budget == 0
    assert len(rest.results) == 4


def test_budget_seconds_zero_skips_everything():
    spec = _spec()
    report = run_sweep(spec, no_cache=True, budget_seconds=0.0)
    assert report.completed == 0
    assert report.skipped_budget == report.planned == 2


def test_sweep_records_failures(tmp_path):
    spec = _spec(workloads=("mini.qsort", "no.such.workload"),
                 configs=("2+0",))
    report = run_sweep(spec, no_cache=True)
    assert report.completed == 1
    assert report.failed == 1
    assert not report.finished


def test_sweep_through_service_matches_local(tmp_path):
    """The --service path must produce the same manifest numbers as the
    local path (bit-identity of the underlying results is covered by
    the service tests)."""
    from repro.runtime.service import start_service

    spec = _spec()
    local = run_sweep(spec, no_cache=True)

    with start_service(port=0, jobs=1, no_cache=True) as handle:
        served = run_sweep(spec, no_cache=True, service_url=handle.url)
    assert served.completed == 2
    assert served.results.keys() == local.results.keys()
    for key in local.results:
        assert (served.results[key]["cycles"]
                == local.results[key]["cycles"])

"""The job service end to end: submit, stream, bit-identity, warmth.

These tests run a real HTTP service on an ephemeral loopback port and
drive it with the stdlib client — the same path ``repro-cc serve`` and
the sweep driver's ``--service`` mode use.
"""

from __future__ import annotations

import pytest

from repro.perf.golden import diff_results
from repro.runtime.engine import run_sim_jobs
from repro.runtime.registry import decode_job
from repro.runtime.service import (
    JobService,
    ServiceClient,
    ServiceError,
    start_service,
)

SCALE = 0.12

# The golden workload x config matrix the acceptance check runs on: the
# paper's baseline and its optimized decoupled configuration.
GOLDEN_PAYLOADS = [
    {"kind": "sim", "workload": "mini.qsort", "config": "2+0",
     "scale": SCALE},
    {"kind": "sim", "workload": "mini.qsort", "config": "2+2:opt",
     "scale": SCALE},
]


@pytest.fixture(scope="module")
def service():
    """One warm service shared by the module (warmth is the point)."""
    with start_service(port=0, jobs=2, no_cache=True) as handle:
        yield handle


def test_submit_stream_and_bit_identity(service):
    """Results streamed out of the service must be byte-identical to the
    direct ``run_sim_jobs`` path on the golden matrix."""
    client = ServiceClient(service.url)
    reply = client.submit(GOLDEN_PAYLOADS)
    batch_id = reply["batch"]
    keys = reply["keys"]
    assert len(keys) == 2

    events = list(client.stream(batch_id))
    assert events[0]["event"] == "batch-start"
    assert events[-1]["event"] == "batch-done"
    job_events = [e for e in events if e["event"] == "job"]
    assert len(job_events) == 2
    assert [e["seq"] for e in events] == list(range(len(events)))
    assert {e["key"] for e in job_events} == set(keys)

    status = client.status(batch_id)
    assert status["state"] == "done"
    assert status["done"] == status["total"] == 2

    direct = run_sim_jobs([decode_job(p) for p in GOLDEN_PAYLOADS],
                          no_cache=True)
    direct_by_key = {job.key: result for job, result in direct}
    assert set(direct_by_key) == set(keys)
    for key in keys:
        served = client.result_object(key)
        expected = direct_by_key[key]
        assert diff_results(expected.workload_name, expected.config_name,
                            expected, served) == []


def test_warm_second_submission_recompiles_nothing(service):
    """The acceptance criterion: a warm repeat through the service shows
    zero kernel compiles and zero trace decodes in its status output."""
    client = ServiceClient(service.url)
    first = client.submit(GOLDEN_PAYLOADS)
    client.wait(first["batch"])

    second = client.submit(GOLDEN_PAYLOADS)
    status = client.wait(second["batch"])
    assert status["state"] == "done"
    warm = status["warm"]
    assert warm["kernel_compiles"] == 0
    assert warm["trace_builds"] == 0
    assert warm["trace_decodes"] == 0

    wide = client.status()
    pool = wide["pool"]
    assert pool["alive"] and pool["rebuilds"] == 0
    assert pool["submissions"] >= 2


def test_json_result_rendering(service):
    client = ServiceClient(service.url)
    reply = client.submit([GOLDEN_PAYLOADS[0]])
    client.wait(reply["batch"])
    body = client.result(reply["keys"][0])
    assert body["format"] == "json"
    result = body["result"]
    assert result["workload"] == "mini.qsort"
    assert result["config"] == "(2+0)"
    assert result["cycles"] > 0
    assert result["ipc"] > 0
    assert isinstance(result["counters"], dict)


def test_bad_submissions_are_client_errors(service):
    client = ServiceClient(service.url)
    with pytest.raises(ServiceError, match="non-empty 'jobs' list"):
        client.submit([])
    with pytest.raises(ServiceError, match="bad job payload"):
        client.submit([{"kind": "no-such-kind"}])
    with pytest.raises(ServiceError, match="bad job payload"):
        client.submit([{"kind": "sim"}])  # no workload


def test_unknown_batch_and_key_are_404(service):
    client = ServiceClient(service.url)
    with pytest.raises(ServiceError) as excinfo:
        client.status("b9999")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        client.result("deadbeef" * 8)
    assert excinfo.value.status == 404
    with pytest.raises(ServiceError) as excinfo:
        list(client.stream("b9999"))
    assert excinfo.value.status == 404


def test_batch_with_failing_job_reports_per_job_error(service):
    client = ServiceClient(service.url)
    reply = client.submit([
        {"kind": "sim", "workload": "no.such.workload", "config": "2+0"},
    ])
    status = client.wait(reply["batch"])
    # The batch completes; the job inside it failed and says why.
    assert status["state"] == "done"
    events = list(client.stream(reply["batch"]))
    failures = [e for e in events
                if e["event"] == "job" and e["status"] == "failed"]
    assert len(failures) == 1
    assert failures[0]["error"]


def test_service_results_survive_in_store(tmp_path):
    """With a store attached, results outlive the in-memory result map
    and a fresh service instance can serve them from disk."""
    cache_dir = str(tmp_path)
    with start_service(port=0, jobs=1, cache_dir=cache_dir) as handle:
        client = ServiceClient(handle.url)
        reply = client.submit([GOLDEN_PAYLOADS[0]])
        client.wait(reply["batch"])
        key = reply["keys"][0]
        first = client.result_object(key)

    with start_service(port=0, jobs=1, cache_dir=cache_dir) as handle:
        client = ServiceClient(handle.url)
        # Same submission: the store answers, nothing re-runs.
        reply = client.submit([GOLDEN_PAYLOADS[0]])
        status = client.wait(reply["batch"])
        assert status["summary"]["cached"] == 1
        assert status["summary"]["ran"] == 0
        again = client.result_object(key)
    assert diff_results(first.workload_name, first.config_name,
                        first, again) == []

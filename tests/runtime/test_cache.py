"""On-disk result cache: roundtrips, salt invalidation, corruption."""

from __future__ import annotations

import os

from repro.core.metrics import SimResult
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.stats.counters import CounterSet

KEY = "ab" + "0" * 62


def _result(cycles: int = 100) -> SimResult:
    counters = CounterSet()
    counters.add("l1.accesses", 10)
    counters.add("l1.misses", 2)
    return SimResult("(2+0)", "130.li", cycles, 250, counters)


def test_roundtrip(tmp_path):
    cache = ResultCache(str(tmp_path), salt="s1")
    assert cache.get(KEY) is None
    cache.put(KEY, _result(), meta={"workload": "130.li"})
    loaded = cache.get(KEY)
    assert loaded is not None
    assert loaded.cycles == 100
    assert loaded.counters.get("l1.misses") == 2
    assert cache.hits == 1 and cache.misses == 1 and cache.writes == 1
    assert 0 < cache.hit_rate < 1


def test_meta_sidecar_written(tmp_path):
    cache = ResultCache(str(tmp_path), salt="s1")
    cache.put(KEY, _result(), meta={"workload": "130.li"})
    meta_path = os.path.join(cache.dir, KEY[:2], KEY + ".json")
    assert os.path.exists(meta_path)


def test_code_salt_invalidates(tmp_path):
    """A new code version must never serve results from an old one."""
    old = ResultCache(str(tmp_path), salt="code-v1")
    old.put(KEY, _result())
    new = ResultCache(str(tmp_path), salt="code-v2")
    assert new.get(KEY) is None
    # ... while the old version's entries stay untouched.
    assert old.get(KEY) is not None


def test_corrupt_entry_is_a_miss_and_removed(tmp_path):
    cache = ResultCache(str(tmp_path), salt="s1")
    cache.put(KEY, _result())
    path = os.path.join(cache.dir, KEY[:2], KEY + ".pkl")
    with open(path, "wb") as handle:
        handle.write(b"\x80\x04 truncated garbage")
    assert cache.get(KEY) is None
    assert not os.path.exists(path)
    # And a recompute repopulates it.
    cache.put(KEY, _result(cycles=77))
    assert cache.get(KEY).cycles == 77


def test_non_result_payload_is_a_miss(tmp_path):
    cache = ResultCache(str(tmp_path), salt="s1")
    path = os.path.join(cache.dir, KEY[:2], KEY + ".pkl")
    os.makedirs(os.path.dirname(path), exist_ok=True)
    import pickle

    with open(path, "wb") as handle:
        pickle.dump({"not": "a result"}, handle)
    assert cache.get(KEY) is None


def test_default_cache_dir_env(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
    assert default_cache_dir() == "/tmp/somewhere"
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
    assert default_cache_dir() == os.path.join("/tmp/xdg", "repro")


def test_stats_payload(tmp_path):
    cache = ResultCache(str(tmp_path), salt="s1")
    cache.put(KEY, _result())
    cache.get(KEY)
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["writes"] == 1
    assert stats["salt"] == "s1"

"""The shrinker: a deliberately re-broken folder must minimize to a
handful of statements that still witness the miscompile."""

from __future__ import annotations

import pytest

import repro.lang.optimizer as optimizer
from repro.fuzz import generate_program, run_oracles, shrink
from repro.fuzz.generator import FuzzProgram

BROKEN_SRA = staticmethod(lambda a, b: (a & 0xFFFFFFFF) >> (b & 31))
SRA_SENSITIVE_SEED = 41


def _diverges(program: FuzzProgram) -> bool:
    """Opt-oracle predicate; budget findings and broken candidates are
    "not diverging" so the shrink cannot drift to an unrelated failure."""
    try:
        found = run_oracles(program.source(), oracles=("opt",),
                            max_instructions=200_000)
    except Exception:
        return False
    return any(d.oracle != "budget" for d in found)


def test_shrinks_broken_fold_to_minimal_repro(monkeypatch):
    monkeypatch.setitem(optimizer._FOLDABLE_INT, "sra", BROKEN_SRA)
    program = generate_program(SRA_SENSITIVE_SEED)
    assert _diverges(program)
    before = program.statement_count()
    shrunk = shrink(program, _diverges)
    assert shrunk.statement_count() <= 10
    assert shrunk.statement_count() < before
    assert _diverges(shrunk)
    # The original is untouched: shrink works on a copy.
    assert program.statement_count() == before


def test_shrink_rejects_non_diverging_program():
    with pytest.raises(ValueError):
        shrink(generate_program(0), _diverges)

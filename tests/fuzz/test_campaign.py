"""Campaign orchestration: sharding, engine integration, and caching."""

from __future__ import annotations

import pickle

import pytest

import repro.lang.optimizer as optimizer
from repro.fuzz import (FuzzJob, FuzzShardResult, execute_fuzz_job,
                        make_shards, run_campaign)

BROKEN_SRA = staticmethod(lambda a, b: (a & 0xFFFFFFFF) >> (b & 31))


def test_make_shards_partitions_exactly():
    shards = make_shards(seed=5, count=23, shard_size=10)
    assert [(s.seed_start, s.count) for s in shards] == [
        (5, 10), (15, 10), (25, 3)]
    assert sum(s.count for s in shards) == 23


def test_make_shards_rejects_bad_inputs():
    with pytest.raises(ValueError):
        make_shards(seed=0, count=0)
    with pytest.raises(ValueError):
        make_shards(seed=0, count=5, shard_size=0)


def test_job_key_content_addressed():
    job = FuzzJob(0, 25)
    assert job.key == FuzzJob(0, 25).key
    assert job.key != FuzzJob(0, 25, oracles=("opt",)).key
    assert job.key != FuzzJob(1, 25).key
    assert job.key != FuzzJob(0, 25, max_instructions=1).key


def test_job_pickles_with_stable_key():
    job = FuzzJob(50, 10, oracles=("opt", "golden"))
    clone = pickle.loads(pickle.dumps(job))
    assert clone.key == job.key
    assert clone.label() == job.label()


def test_execute_shard_clean():
    result = execute_fuzz_job(FuzzJob(0, 2, oracles=("opt",)))
    assert isinstance(result, FuzzShardResult)
    assert result.clean and result.count == 2


def test_campaign_caches_shard_results(tmp_path):
    kwargs = dict(seed=0, count=6, oracles=("opt",), shard_size=3,
                  cache_dir=str(tmp_path))
    first = run_campaign(**kwargs)
    assert first.clean
    assert first.engine_report.ran == 2
    assert first.engine_report.cached == 0
    second = run_campaign(**kwargs)
    assert second.clean
    assert second.engine_report.ran == 0
    assert second.engine_report.cached == 2


def test_campaign_no_cache_ignores_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    report = run_campaign(seed=0, count=2, oracles=("opt",), shard_size=2,
                          no_cache=True)
    assert report.engine_report.ran == 1
    assert not any(tmp_path.iterdir())


def test_campaign_surfaces_divergences(monkeypatch):
    # Seed 41 generates a program whose output depends on a constant
    # arithmetic shift of a negative value — the exact shape the broken
    # fold miscompiles.  (Seed-sensitive: regenerate with a scan over
    # run_oracles when the generator's random stream changes.)
    monkeypatch.setitem(optimizer._FOLDABLE_INT, "sra", BROKEN_SRA)
    report = run_campaign(seed=39, count=5, oracles=("opt",), shard_size=5,
                          no_cache=True)
    assert not report.clean
    assert 41 in report.diverging_seeds()
    assert all(d.oracle == "opt" for d in report.divergences)
    assert all(d.seed is not None for d in report.divergences)

"""The three differential oracles: green on a healthy toolchain, and
each able to catch the class of bug it exists for."""

from __future__ import annotations

import pytest

import repro.lang.optimizer as optimizer
from repro.errors import ReproError
from repro.fuzz import ALL_ORACLES, generate_program, run_oracles

#: A seed whose program exercises ``>>`` folding (found by the campaign
#: when the folder is deliberately broken below).
SRA_SENSITIVE_SEED = 12

#: The historical bug: folding ``sra`` logically instead of arithmetically.
BROKEN_SRA = staticmethod(lambda a, b: (a & 0xFFFFFFFF) >> (b & 31))


@pytest.mark.parametrize("seed", range(8))
def test_all_oracles_clean_on_healthy_toolchain(seed):
    source = generate_program(seed).source()
    assert run_oracles(source, name=f"fuzz.{seed}") == []


def test_opt_oracle_catches_broken_fold(monkeypatch):
    monkeypatch.setitem(optimizer._FOLDABLE_INT, "sra", BROKEN_SRA)
    source = generate_program(SRA_SENSITIVE_SEED).source()
    divergences = run_oracles(source, oracles=("opt",))
    assert divergences
    assert all(d.oracle == "opt" for d in divergences)


def test_unknown_oracle_rejected():
    with pytest.raises(ReproError):
        run_oracles("int main() { return 0; }", oracles=("opt", "bogus"))


def test_budget_exhaustion_is_a_divergence():
    source = ("int main() {\n"
              "    int i;\n"
              "    for (i = 0; i < 100000000; i++) {}\n"
              "    return 0;\n"
              "}\n")
    divergences = run_oracles(source, oracles=("opt",),
                              max_instructions=10_000)
    assert [d.oracle for d in divergences] == ["budget"]


def test_oracle_subset_runs_only_requested():
    source = generate_program(0).source()
    assert run_oracles(source, oracles=("opt",)) == []
    assert run_oracles(source, oracles=("timing", "golden")) == []
    assert set(ALL_ORACLES) == {"opt", "timing", "golden"}

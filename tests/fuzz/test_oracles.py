"""The differential oracles: green on a healthy toolchain, and each
able to catch the class of bug it exists for."""

from __future__ import annotations

import pytest

import repro.lang.optimizer as optimizer
from repro.errors import ReproError
from repro.fuzz import ALL_ORACLES, generate_program, run_oracles

#: A seed whose program exercises ``>>`` folding (found by the campaign
#: when the folder is deliberately broken below).
SRA_SENSITIVE_SEED = 41

#: The historical bug: folding ``sra`` logically instead of arithmetically.
BROKEN_SRA = staticmethod(lambda a, b: (a & 0xFFFFFFFF) >> (b & 31))


@pytest.mark.parametrize("seed", range(8))
def test_all_oracles_clean_on_healthy_toolchain(seed):
    source = generate_program(seed).source()
    assert run_oracles(source, name=f"fuzz.{seed}") == []


def test_opt_oracle_catches_broken_fold(monkeypatch):
    monkeypatch.setitem(optimizer._FOLDABLE_INT, "sra", BROKEN_SRA)
    source = generate_program(SRA_SENSITIVE_SEED).source()
    divergences = run_oracles(source, oracles=("opt",))
    assert divergences
    assert all(d.oracle == "opt" for d in divergences)


def test_unknown_oracle_rejected():
    with pytest.raises(ReproError):
        run_oracles("int main() { return 0; }", oracles=("opt", "bogus"))


def test_budget_exhaustion_is_a_divergence():
    source = ("int main() {\n"
              "    int i;\n"
              "    for (i = 0; i < 100000000; i++) {}\n"
              "    return 0;\n"
              "}\n")
    divergences = run_oracles(source, oracles=("opt",),
                              max_instructions=10_000)
    assert [d.oracle for d in divergences] == ["budget"]


def test_oracle_subset_runs_only_requested():
    source = generate_program(0).source()
    assert run_oracles(source, oracles=("opt",)) == []
    assert run_oracles(source, oracles=("timing", "golden")) == []
    assert set(ALL_ORACLES) == {"opt", "timing", "golden", "analyze",
                                "replay", "tv"}


def test_analyze_is_a_registered_oracle():
    assert ALL_ORACLES == ("opt", "timing", "golden", "analyze", "replay",
                           "tv")


def test_replay_oracle_clean_on_healthy_toolchain():
    source = generate_program(4).source()
    assert run_oracles(source, oracles=("replay",)) == []


def test_replay_oracle_catches_format_field_loss(monkeypatch):
    # Sabotage the decoder: collapse the local_hint tri-state so every
    # replayed access looks compiler-classified non-local.  Architectural
    # results are untouched (hints only steer the LVAQ), so only the
    # replay oracle's timing diff can see the field loss.
    from repro.trace import format as trace_format

    monkeypatch.setattr(trace_format, "_HINT_BY_CODE",
                        (False, False, False))
    source = generate_program(4).source()
    divergences = run_oracles(source, oracles=("replay",))
    assert divergences
    assert all(d.oracle == "replay" for d in divergences)


def test_analyze_oracle_clean_on_healthy_toolchain():
    source = generate_program(3).source()
    assert run_oracles(source, oracles=("analyze",)) == []


def test_analyze_oracle_catches_unsound_hint_emission(monkeypatch):
    # Sabotage the compiler: tag every pointer-based access as a stack
    # access, the exact miscompile the LVAQ cannot survive.  The build
    # still runs correctly (hints never change architectural results),
    # so only the analyze oracle can see the bug — statically via the
    # region prover and dynamically via the trace cross-check.
    import repro.lang.frontend as frontend
    from repro.lang.ir import VReg

    def sabotaged(ir):
        for instr in ir.body:
            if instr.kind in ("load", "store") and isinstance(
                    instr.base, VReg):
                instr.locality = True
        return 0, 0

    monkeypatch.setattr(frontend, "annotate_localities", sabotaged)
    source = ("int g[4];\n"
              "int main() {\n"
              "    int *p;\n"
              "    p = g;\n"
              "    *p = 3;\n"
              "    print(p[1] + g[0]);\n"
              "    return 0;\n"
              "}\n")
    clean = run_oracles(source, oracles=("opt", "timing", "golden"))
    assert clean == []  # every other oracle is blind to hint bugs
    divergences = run_oracles(source, oracles=("analyze",))
    assert divergences
    assert all(d.oracle == "analyze" for d in divergences)
    details = " ".join(d.detail for d in divergences)
    assert "hint.unsound-local" in details
    assert "hint.dynamic-unsound" in details

"""The ``repro-cc fuzz`` subcommand end to end."""

from __future__ import annotations

import pytest

import repro.lang.optimizer as optimizer
from repro.cli import main

BROKEN_SRA = staticmethod(lambda a, b: (a & 0xFFFFFFFF) >> (b & 31))


def test_fuzz_clean_campaign_exits_zero(capsys):
    code = main(["fuzz", "--seed", "0", "--count", "4", "--quiet",
                 "--no-cache", "--oracle", "opt"])
    assert code == 0
    out = capsys.readouterr().out
    assert "0 divergences" in out


def test_fuzz_reports_divergence_and_saves_repro(tmp_path, monkeypatch,
                                                 capsys):
    monkeypatch.setitem(optimizer._FOLDABLE_INT, "sra", BROKEN_SRA)
    repros = tmp_path / "repros"
    code = main(["fuzz", "--seed", "41", "--count", "1", "--quiet",
                 "--no-cache", "--oracle", "opt", "--shrink",
                 "--save-repros", str(repros)])
    assert code == 1
    out = capsys.readouterr().out
    assert "seed 41 [opt]" in out
    saved = repros / "fuzz_41.mc"
    assert saved.exists()
    text = saved.read_text()
    assert "(shrunk)" in text
    # The minimized witness stays small: one bad constant shift feeding
    # a local array plus the checksum loop that observes it.
    assert len(text.splitlines()) < 25


def test_fuzz_rejects_unknown_oracle(capsys):
    with pytest.raises(SystemExit):
        main(["fuzz", "--oracle", "bogus"])

"""The program generator: deterministic, valid, and terminating."""

from __future__ import annotations

import pytest

from repro.fuzz import generate_program
from repro.lang import CompilerOptions, compile_source
from repro.vm import run_program


def test_deterministic_per_seed():
    assert generate_program(3).source() == generate_program(3).source()


def test_seeds_differ():
    sources = {generate_program(seed).source() for seed in range(8)}
    assert len(sources) == 8


@pytest.mark.parametrize("seed", range(12))
def test_generated_programs_run_clean(seed):
    """Every program compiles at both levels and exits 0 within budget."""
    program = generate_program(seed)
    assert program.statement_count() > 0
    for optimize in (False, True):
        compiled = compile_source(
            program.source(),
            CompilerOptions(source_name=f"fuzz.{seed}", optimize=optimize))
        vm, _ = run_program(compiled, max_instructions=2_000_000)
        assert vm.exit_code == 0, (seed, optimize)


def test_size_scales_statement_count():
    small = generate_program(1, size=4).statement_count()
    large = generate_program(1, size=24).statement_count()
    assert small < large

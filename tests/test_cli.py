"""Tests for the repro-cc command-line driver."""

import pytest

from repro.cli import _parse_config, main
from repro.errors import ReproError

PROGRAM = """
int main() {
    int total = 0;
    int i;
    for (i = 1; i <= 10; i++) total += i;
    print(total);
    return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def test_parse_config():
    config = _parse_config("3+2")
    assert config.mem.l1_ports == 3
    assert config.mem.lvc_ports == 2
    assert not config.decouple.fast_forwarding


def test_parse_config_optimized():
    config = _parse_config("2+2:opt")
    assert config.decouple.fast_forwarding
    assert config.decouple.combining == 2


def test_parse_config_rejects_garbage():
    with pytest.raises(ReproError):
        _parse_config("lots-of-ports")


def test_run_command(source_file, capsys):
    code = main(["run", source_file])
    assert code == 0
    assert capsys.readouterr().out == "55"


def test_run_returns_guest_exit_code(tmp_path):
    path = tmp_path / "fail.mc"
    path.write_text("int main() { return 3; }")
    assert main(["run", str(path)]) == 3


def test_run_budget_exhaustion(tmp_path, capsys):
    path = tmp_path / "loop.mc"
    path.write_text("int main() { while (1) { } return 0; }")
    code = main(["run", str(path), "--max-instructions", "500"])
    assert code == 2


def test_disasm_command(source_file, capsys):
    assert main(["disasm", source_file]) == 0
    out = capsys.readouterr().out
    assert "main:" in out
    assert "jal main" in out


def test_sim_command(source_file, capsys):
    assert main(["sim", source_file]) == 0
    out = capsys.readouterr().out
    assert "IPC" in out
    assert "(2+0" in out and "(2+2:opt" in out


def test_sim_custom_configs(source_file, capsys):
    assert main(["sim", source_file, "--config", "1+0",
                 "--config", "4+0"]) == 0
    out = capsys.readouterr().out
    assert "(1+0" in out and "(4+0" in out


def test_sim_parallel_matches_sequential(source_file, capsys):
    """--jobs fans configs out to workers; output must be identical."""
    configs = ["--config", "1+0", "--config", "2+0", "--config", "2+2:opt"]
    assert main(["sim", source_file] + configs) == 0
    sequential = capsys.readouterr().out
    assert main(["sim", source_file, "--jobs", "2"] + configs) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential
    assert "best vs 1+0" in parallel


def test_stats_command(source_file, capsys):
    assert main(["stats", source_file]) == 0
    out = capsys.readouterr().out
    assert "local refs" in out
    assert "calls" in out


def test_assembly_input(tmp_path, capsys):
    path = tmp_path / "prog.s"
    path.write_text("main:\n    li $a0, 9\n    syscall 1\n"
                    "    li $a0, 0\n    syscall 0\n")
    assert main(["run", str(path)]) == 0
    assert capsys.readouterr().out == "9"


def test_missing_file_reports_error(capsys):
    assert main(["run", "/nonexistent/prog.mc"]) == 1
    assert "repro-cc" in capsys.readouterr().err


def test_compile_error_reported(tmp_path, capsys):
    path = tmp_path / "bad.mc"
    path.write_text("int main() { return undeclared; }")
    assert main(["run", str(path)]) == 1
    assert "repro-cc" in capsys.readouterr().err


def test_no_opt_flag(source_file, capsys):
    assert main(["run", source_file, "--no-opt"]) == 0
    assert capsys.readouterr().out == "55"

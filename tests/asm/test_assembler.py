"""Tests for the assembler, including a disassembler round trip."""

import pytest
from hypothesis import given, strategies as st

from repro.asm import assemble
from repro.errors import AssemblerError
from repro.isa.disasm import disassemble
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import DATA_BASE


def test_minimal_program():
    program = assemble("main:\n    nop\n")
    assert len(program) == 1
    assert program.entry_index == 0


def test_instruction_formats():
    program = assemble(
        """
        main:
            li   $t0, 42
            addi $t1, $t0, -3
            add  $t2, $t0, $t1
            lw   $t3, 8($sp)
            sw   $t3, -4($sp)
            beq  $t0, $t1, main
            jr   $ra
        """
    )
    ops = [ins.op for ins in program.instructions]
    assert ops == [Opcode.LI, Opcode.ADDI, Opcode.ADD, Opcode.LW,
                   Opcode.SW, Opcode.BEQ, Opcode.JR]


def test_locality_annotations():
    program = assemble(
        """
        main:
            lw $t0, 0($sp)   # local
            lw $t1, 0($t0)   # nonlocal
            lw $t2, 0($t0)   # ambiguous
            lw $t3, 0($t0)
        """
    )
    locals_ = [ins.local for ins in program.instructions]
    assert locals_ == [True, False, None, None]


def test_data_word_directive():
    program = assemble(
        """
        .data
        tbl: .word 1, 2, 3
        .text
        main:
            la $t0, tbl
        """
    )
    assert program.data_address("tbl") == DATA_BASE
    assert program.instructions[0].imm == DATA_BASE


def test_data_space_directive():
    program = assemble(".data\nbuf: .space 64\n.text\nmain:\n nop\n")
    assert program.has_data("buf")


def test_label_on_same_line_as_instruction():
    program = assemble("main: nop\nloop: j loop\n")
    assert program.labels["loop"] == 1


def test_branch_resolution():
    program = assemble(
        """
        main:
            j end
            nop
        end:
            nop
        """
    )
    assert program.instructions[0].imm == 2


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError):
        assemble("main:\n    frobnicate $t0\n")


def test_wrong_operand_count():
    with pytest.raises(AssemblerError):
        assemble("main:\n    add $t0, $t1\n")


def test_bad_memory_operand():
    with pytest.raises(AssemblerError):
        assemble("main:\n    lw $t0, nonsense\n")


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("main:\n nop\nmain:\n nop\n")


def test_unresolved_target_rejected():
    with pytest.raises(Exception):
        assemble("main:\n    j nowhere\n")


def test_error_reports_line_number():
    try:
        assemble("main:\n    nop\n    bogus\n")
    except AssemblerError as exc:
        assert exc.line == 3
    else:
        pytest.fail("expected AssemblerError")


# -- round trip: disassemble(assemble(x)) is stable --------------------------

_REGS = st.sampled_from(["$t0", "$t1", "$s0", "$a0", "$v0", "$sp"])


@given(rd=_REGS, rs=_REGS, rt=_REGS, imm=st.integers(-1024, 1023))
def test_roundtrip_core_ops(rd, rs, rt, imm):
    source = "\n".join([
        "main:",
        f"    add {rd}, {rs}, {rt}",
        f"    addi {rd}, {rs}, {imm}",
        f"    lw {rd}, {4 * (imm % 32)}({rs})",
        f"    sw {rt}, {4 * (imm % 32)}({rs})",
    ])
    program = assemble(source)
    text = "\n".join("    " + disassemble(i) for i in program.instructions)
    reparsed = assemble("main:\n" + text)
    assert reparsed.instructions == program.instructions

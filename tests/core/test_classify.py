"""Tests for stream partitioning and the access-region predictor."""

from repro.core.classify import RegionPredictor, StreamPartitioner
from repro.isa.opcodes import FuClass
from repro.vm.trace import DynInst


def mem_ref(hint, actual, pc=100):
    return DynInst(int(FuClass.LOAD), dst=8, srcs=(29,), addr=4, size=4,
                   local_hint=hint, is_local=actual, pc=pc)


def test_no_decoupling_everything_to_lsq():
    partitioner = StreamPartitioner(decoupled=False)
    to_lvaq, mispredicted = partitioner.steer(mem_ref(True, True))
    assert not to_lvaq and not mispredicted


def test_hinted_references_follow_hint():
    partitioner = StreamPartitioner(decoupled=True)
    assert partitioner.steer(mem_ref(True, True)) == (True, False)
    assert partitioner.steer(mem_ref(False, False)) == (False, False)


def test_ambiguous_uses_predictor():
    partitioner = StreamPartitioner(decoupled=True)
    # first sighting: predictor defaults to non-local; reference is local
    to_lvaq, mispredicted = partitioner.steer(mem_ref(None, True))
    assert to_lvaq  # steered to the actual side after detection
    assert mispredicted
    # second sighting: trained
    to_lvaq, mispredicted = partitioner.steer(mem_ref(None, True))
    assert to_lvaq and not mispredicted


def test_predictor_disabled_conservative():
    partitioner = StreamPartitioner(decoupled=True, use_predictor=False)
    assert partitioner.steer(mem_ref(None, True)) == (False, False)


def test_predictor_one_bit_per_pc():
    predictor = RegionPredictor()
    predictor.update(1, True)
    predictor.update(2, False)
    assert predictor.predict(1) is True
    assert predictor.predict(2) is False
    assert predictor.predict(3) is False  # default non-local


def test_predictor_accuracy_tracking():
    partitioner = StreamPartitioner(decoupled=True)
    for _ in range(9):
        partitioner.steer(mem_ref(None, True, pc=7))
    predictor = partitioner.predictor
    assert predictor.predictions == 9
    assert predictor.mispredictions == 1  # only the cold first one
    assert predictor.accuracy > 0.85


def test_stable_sites_predict_well():
    """The paper reports ~99.9% correct classification with a 1-bit table."""
    partitioner = StreamPartitioner(decoupled=True)
    for pc in range(20):
        for _ in range(50):
            partitioner.steer(mem_ref(None, pc % 2 == 0, pc=pc))
    assert partitioner.predictor.accuracy > 0.97


def test_empty_predictor_accuracy_is_one():
    assert RegionPredictor().accuracy == 1.0


def test_hinted_references_never_touch_the_predictor():
    # Accuracy accounting covers only the ambiguous remainder: hinted
    # references neither count as predictions nor train the table.
    partitioner = StreamPartitioner(decoupled=True)
    for _ in range(5):
        partitioner.steer(mem_ref(True, True, pc=3))
        partitioner.steer(mem_ref(False, False, pc=4))
    predictor = partitioner.predictor
    assert predictor.predictions == 0
    assert predictor.predict(3) is False  # table never written


def test_decoupling_disabled_does_not_train():
    partitioner = StreamPartitioner(decoupled=False)
    for _ in range(5):
        partitioner.steer(mem_ref(None, True, pc=9))
    assert partitioner.predictor.predictions == 0


def test_predictor_disabled_does_not_train():
    partitioner = StreamPartitioner(decoupled=True, use_predictor=False)
    for _ in range(5):
        partitioner.steer(mem_ref(None, True, pc=9))
    assert partitioner.predictor.predictions == 0
    assert partitioner.predictor.accuracy == 1.0


def test_aliased_sites_thrash_the_shared_bit():
    # Two static sites folded onto one table entry (same pc) with
    # opposite regions retrain the bit every time: every prediction
    # misses.  The same stream on distinct pcs misses only twice (cold).
    aliased = StreamPartitioner(decoupled=True)
    split = StreamPartitioner(decoupled=True)
    for _ in range(10):
        aliased.steer(mem_ref(None, True, pc=5))
        aliased.steer(mem_ref(None, False, pc=5))
        split.steer(mem_ref(None, True, pc=5))
        split.steer(mem_ref(None, False, pc=6))
    assert aliased.predictor.mispredictions == 20
    assert split.predictor.mispredictions == 1  # pc=6 cold-predicts False
    assert split.predictor.accuracy > aliased.predictor.accuracy


def test_misprediction_still_steers_to_actual_side():
    partitioner = StreamPartitioner(decoupled=True)
    to_lvaq, mispredicted = partitioner.steer(mem_ref(None, True, pc=1))
    assert mispredicted
    # The recovery re-inserts into the *correct* queue; the penalty is
    # charged by the pipeline, not modelled here.
    assert to_lvaq is True

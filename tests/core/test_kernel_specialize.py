"""Specialized-kernel cache behaviour and bit-identity.

The specialized kernel (:mod:`repro.core.stages.specialize`) constant-
folds the bound MachineConfig into the composed source and caches the
compiled function per ``(code salt, machine description)``.  These
tests pin the cache contract — one compile per config, invalidation on
code-salt and config-schema changes — and the only property that makes
the whole scheme admissible: specialized output is bit-identical to
the portable kernel across the golden workload×config matrix.
"""

from __future__ import annotations

import os

import pytest

from repro.core.processor import Processor
from repro.core.stages import specialize
from repro.perf.golden import GOLDEN_CONFIGS, diff_results, golden_config


@pytest.fixture(autouse=True)
def _specialized_mode(monkeypatch):
    """Force the default (specialized) kernel path and a cold cache."""
    monkeypatch.delenv("REPRO_PORTABLE_KERNEL", raising=False)
    monkeypatch.delenv("REPRO_GENERIC_KERNEL", raising=False)
    specialize.clear_cache()
    yield
    specialize.clear_cache()


def _run(config, trace, name="130.li"):
    return Processor(config).run(trace.insts, name)


def test_same_config_compiles_once(small_li_trace):
    config = golden_config("2+2:opt")
    before = specialize.compile_count
    _run(config, small_li_trace)
    after_first = specialize.compile_count
    assert after_first == before + 1
    # Same machine description again: cache hit, no second compile —
    # a fresh Processor and a fresh config object must not matter.
    _run(golden_config("2+2:opt"), small_li_trace)
    assert specialize.compile_count == after_first


def test_distinct_configs_compile_separately(small_li_trace):
    before = specialize.compile_count
    _run(golden_config("2+0"), small_li_trace)
    _run(golden_config("4+0"), small_li_trace)
    assert specialize.compile_count == before + 2


def test_code_salt_change_misses_cache(small_li_trace, monkeypatch):
    config = golden_config("2+2:opt")
    _run(config, small_li_trace)
    before = specialize.compile_count
    # A different kernel code salt (edited stage source / fold rules)
    # must key a different cache entry.
    monkeypatch.setattr(specialize, "_SALT", "test-salt-mismatch")
    _run(config, small_li_trace)
    assert specialize.compile_count == before + 1


def test_config_schema_version_misses_cache(small_li_trace, monkeypatch):
    from repro.core import registry

    config = golden_config("2+2:opt")
    _run(config, small_li_trace)
    before = specialize.compile_count
    monkeypatch.setattr(registry, "CONFIG_SCHEMA_VERSION",
                        registry.CONFIG_SCHEMA_VERSION + 1)
    _run(config, small_li_trace)
    assert specialize.compile_count == before + 1


def test_cached_source_is_inspectable(small_li_trace):
    config = golden_config("2+2:opt")
    _run(config, small_li_trace)
    source = specialize.cached_source(config)
    assert source is not None
    assert source.startswith("# specialized kernel: (2+2)")
    # The folded constants are literals now, not config reads.
    assert '"width"' in source.splitlines()[0]


def test_emit_source_without_a_run():
    source = specialize.emit_source(golden_config("2+0"))
    assert "def _fused_run" in source
    # A 2+0 machine has no LVC: the dead decoupled arms are deleted.
    assert '"decoupled"' in source.splitlines()[0]


@pytest.mark.parametrize("notation", [name for name, _kw in GOLDEN_CONFIGS])
def test_specialized_matches_portable_on_golden_matrix(
        notation, small_li_trace, monkeypatch):
    """cycles + instructions + full counter dict, per golden config."""
    config = golden_config(notation)
    specialized = _run(config, small_li_trace)
    monkeypatch.setenv("REPRO_PORTABLE_KERNEL", "1")
    portable = _run(golden_config(notation), small_li_trace)
    assert diff_results("130.li", notation, portable, specialized) == []


def test_specialized_matches_portable_second_workload(
        small_vortex_trace, monkeypatch):
    config = golden_config("2+2:opt")
    specialized = _run(config, small_vortex_trace, "147.vortex")
    monkeypatch.setenv("REPRO_PORTABLE_KERNEL", "1")
    portable = _run(golden_config("2+2:opt"), small_vortex_trace,
                    "147.vortex")
    assert diff_results("147.vortex", "2+2:opt", portable,
                        specialized) == []


def test_cli_emit_kernel(capsys):
    from repro.cli import main

    assert main(["perf", "--emit-kernel", "2+2:opt"]) == 0
    out = capsys.readouterr().out
    assert "# specialized kernel: (2+2)" in out
    assert "def _fused_run" in out

"""Property-based fuzzing of the timing simulator.

Random (but well-formed) dynamic traces across random machine
configurations must always simulate to completion with conserved
accounting — no deadlocks, no lost instructions, no negative statistics.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.isa.opcodes import FuClass
from repro.vm.trace import DynInst

IALU = int(FuClass.IALU)
IMULT = int(FuClass.IMULT)
IDIV = int(FuClass.IDIV)
FADD = int(FuClass.FADD)
LOAD = int(FuClass.LOAD)
STORE = int(FuClass.STORE)
BRANCH = int(FuClass.BRANCH)

STACK = 0x7FFE0000
DATA = 0x10000000


@st.composite
def dyn_insts(draw):
    """One random well-formed dynamic instruction."""
    kind = draw(st.sampled_from(
        ["alu", "mul", "div", "fp", "branch", "load", "store"]
    ))
    srcs = tuple(draw(st.lists(st.integers(1, 30), max_size=2)))
    if kind == "alu":
        return DynInst(IALU, dst=draw(st.integers(1, 30)), srcs=srcs)
    if kind == "mul":
        return DynInst(IMULT, dst=draw(st.integers(1, 30)), srcs=srcs)
    if kind == "div":
        return DynInst(IDIV, dst=draw(st.integers(1, 30)), srcs=srcs)
    if kind == "fp":
        return DynInst(FADD, dst=draw(st.integers(33, 60)),
                       srcs=tuple(draw(st.lists(st.integers(33, 60),
                                                max_size=2))))
    if kind == "branch":
        return DynInst(BRANCH, srcs=srcs, pc=draw(st.integers(0, 255)))
    local = draw(st.booleans())
    hint = draw(st.sampled_from([True, False, None]))
    word = draw(st.integers(0, 255))
    addr = (STACK if local else DATA) + 4 * word
    sp_based = local and draw(st.booleans())
    if kind == "load":
        return DynInst(LOAD, dst=draw(st.integers(1, 30)), srcs=srcs,
                       addr=addr, size=4,
                       local_hint=hint if not local else
                       draw(st.sampled_from([True, None])),
                       is_local=local, sp_based=sp_based,
                       frame_id=draw(st.integers(0, 3)),
                       offset=4 * draw(st.integers(0, 15)),
                       pc=draw(st.integers(0, 255)))
    return DynInst(STORE, srcs=srcs or (29,), addr=addr, size=4,
                   local_hint=hint if not local else
                   draw(st.sampled_from([True, None])),
                   is_local=local, sp_based=sp_based,
                   frame_id=draw(st.integers(0, 3)),
                   offset=4 * draw(st.integers(0, 15)),
                   pc=draw(st.integers(0, 255)))


@st.composite
def machine_configs(draw):
    return MachineConfig.baseline(
        l1_ports=draw(st.integers(1, 4)),
        lvc_ports=draw(st.integers(0, 3)),
        fast_forwarding=draw(st.booleans()),
        combining=draw(st.sampled_from([1, 2, 4])),
    )


@settings(max_examples=40, deadline=None)
@given(st.lists(dyn_insts(), min_size=1, max_size=120), machine_configs())
def test_any_trace_completes_with_conserved_accounting(insts, config):
    result = Processor(config).run(insts, "fuzz")
    assert result.instructions == len(insts)
    assert result.cycles >= 1
    c = result.counters
    mem_refs = sum(1 for i in insts if i.is_mem)
    routed = (c.get("lsq.loads") + c.get("lsq.stores")
              + c.get("lvaq.loads") + c.get("lvaq.stores"))
    assert routed == mem_refs
    # every counted statistic is non-negative
    assert all(value >= 0 for _, value in c.items())


@settings(max_examples=15, deadline=None)
@given(st.lists(dyn_insts(), min_size=1, max_size=80))
def test_simulation_deterministic(insts):
    config = MachineConfig.baseline(2, 2, fast_forwarding=True, combining=2)
    a = Processor(config).run(list(insts), "a")
    b = Processor(config).run(list(insts), "b")
    assert a.cycles == b.cycles
    assert a.counters.as_dict() == b.counters.as_dict()


@settings(max_examples=15, deadline=None)
@given(st.lists(dyn_insts(), min_size=1, max_size=80))
def test_prefix_takes_no_longer_than_whole(insts):
    """Simulating a prefix never takes more cycles than the full trace."""
    config = MachineConfig.baseline(2, 0)
    full = Processor(config).run(list(insts), "full")
    half = Processor(config).run(list(insts[: len(insts) // 2 + 1]), "half")
    assert half.cycles <= full.cycles

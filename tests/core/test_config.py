"""Tests for machine configuration."""

import pytest

from repro.core.config import DecoupleConfig, MachineConfig
from repro.errors import ConfigError


def test_baseline_matches_paper_table1():
    config = MachineConfig.baseline()
    assert config.issue_width == 16
    assert config.rob_size == 128
    assert config.lsq_size == 64
    assert config.lvaq_size == 64
    assert config.ialu_units == 16
    assert config.falu_units == 16
    assert config.imultdiv_units == 4
    assert config.fmultdiv_units == 4
    mem = config.mem
    assert mem.l1_size == 32 * 1024 and mem.l1_assoc == 2
    assert mem.l1_hit_latency == 2
    assert mem.l2_size == 512 * 1024 and mem.l2_assoc == 4
    assert mem.l2_latency == 12
    assert mem.mem_latency == 50
    assert mem.line_bytes == 32


def test_lvc_defaults():
    config = MachineConfig.baseline(l1_ports=3, lvc_ports=2)
    assert config.decoupled
    assert config.mem.lvc_size == 2 * 1024
    assert config.mem.lvc_assoc == 1  # direct mapped
    assert config.mem.lvc_hit_latency == 1


def test_notation():
    assert MachineConfig.baseline(2, 0).notation() == "(2+0)"
    assert MachineConfig.baseline(3, 2).notation() == "(3+2)"


def test_not_decoupled_without_lvc_ports():
    assert not MachineConfig.baseline(4, 0).decoupled


def test_optimization_flags():
    config = MachineConfig.baseline(3, 2, fast_forwarding=True, combining=4)
    assert config.decouple.fast_forwarding
    assert config.decouple.combining == 4


def test_combining_degree_validated():
    with pytest.raises(ConfigError):
        DecoupleConfig(combining=0)


def test_invalid_sizes_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(issue_width=0)
    with pytest.raises(ConfigError):
        MachineConfig(rob_size=-1)


def test_mem_overrides_pass_through():
    config = MachineConfig.baseline(2, 2, l1_hit_latency=3, lvc_size=4096)
    assert config.mem.l1_hit_latency == 3
    assert config.mem.lvc_size == 4096

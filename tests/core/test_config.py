"""Tests for machine configuration."""

import pytest

from repro.core.config import DecoupleConfig, MachineConfig
from repro.errors import ConfigError


def test_baseline_matches_paper_table1():
    config = MachineConfig.baseline()
    assert config.issue_width == 16
    assert config.rob_size == 128
    assert config.lsq_size == 64
    assert config.lvaq_size == 64
    assert config.ialu_units == 16
    assert config.falu_units == 16
    assert config.imultdiv_units == 4
    assert config.fmultdiv_units == 4
    mem = config.mem
    assert mem.l1_size == 32 * 1024 and mem.l1_assoc == 2
    assert mem.l1_hit_latency == 2
    assert mem.l2_size == 512 * 1024 and mem.l2_assoc == 4
    assert mem.l2_latency == 12
    assert mem.mem_latency == 50
    assert mem.line_bytes == 32


def test_lvc_defaults():
    config = MachineConfig.baseline(l1_ports=3, lvc_ports=2)
    assert config.decoupled
    assert config.mem.lvc_size == 2 * 1024
    assert config.mem.lvc_assoc == 1  # direct mapped
    assert config.mem.lvc_hit_latency == 1


def test_notation():
    assert MachineConfig.baseline(2, 0).notation() == "(2+0)"
    assert MachineConfig.baseline(3, 2).notation() == "(3+2)"


def test_not_decoupled_without_lvc_ports():
    assert not MachineConfig.baseline(4, 0).decoupled


def test_optimization_flags():
    config = MachineConfig.baseline(3, 2, fast_forwarding=True, combining=4)
    assert config.decouple.fast_forwarding
    assert config.decouple.combining == 4


def test_combining_degree_validated():
    with pytest.raises(ConfigError):
        DecoupleConfig(combining=0)


def test_invalid_sizes_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(issue_width=0)
    with pytest.raises(ConfigError):
        MachineConfig(rob_size=-1)


def test_mem_overrides_pass_through():
    config = MachineConfig.baseline(2, 2, l1_hit_latency=3, lvc_size=4096)
    assert config.mem.l1_hit_latency == 3
    assert config.mem.lvc_size == 4096


# -- policy registry / validated config space (ISSUE 5) ----------------------

def test_invalid_port_counts_rejected():
    with pytest.raises(ConfigError):
        MachineConfig.baseline(l1_ports=0)
    with pytest.raises(ConfigError):
        MachineConfig.baseline(l1_ports=-2)
    with pytest.raises(ConfigError):
        MachineConfig.baseline(l1_ports=2, lvc_ports=-1)


def test_zero_and_negative_queue_sizes_rejected():
    with pytest.raises(ConfigError):
        MachineConfig(lsq_size=0)
    with pytest.raises(ConfigError):
        MachineConfig(lvaq_size=-4)
    with pytest.raises(ConfigError):
        MachineConfig(rob_size=0)


def test_unknown_port_policy_rejected_at_construction():
    with pytest.raises(ConfigError):
        MachineConfig.baseline(l1_port_policy="quantum")
    with pytest.raises(ConfigError):
        MachineConfig.baseline(lvc_ports=2, lvc_port_policy="psychic")


def test_unknown_frontend_policy_rejected():
    from repro.core.frontend import FrontendConfig
    with pytest.raises(ConfigError):
        FrontendConfig(policy="oracle9000")


def test_validate_machine_catches_post_construction_mutation():
    from repro.core.registry import validate_machine

    config = MachineConfig.baseline()
    assert validate_machine(config) is config
    config.mem.l1_port_policy = "no-such-policy"
    with pytest.raises(ConfigError):
        validate_machine(config)

    config = MachineConfig.baseline()
    config.frontend.policy = "no-such-frontend"
    with pytest.raises(ConfigError):
        validate_machine(config)


def test_registry_enumerates_policies():
    from repro.core.registry import describe_schema, policy_names

    assert "ideal" in policy_names("ports")
    assert "finite" in policy_names("ports")
    assert policy_names("frontend") == ("gshare", "perfect")
    with pytest.raises(ConfigError):
        policy_names("chronology")
    schema = describe_schema()
    assert schema["schema_version"] >= 2
    assert set(schema["policies"]) == {"ports", "frontend"}


def test_signature_changes_when_policy_changes():
    from repro.runtime.signature import config_signature

    base = config_signature(MachineConfig.baseline())
    finite = MachineConfig.baseline()
    finite.mem.l1_port_policy = "finite"
    gshare = MachineConfig.baseline()
    gshare.frontend.policy = "gshare"
    signatures = {base, config_signature(finite), config_signature(gshare)}
    assert len(signatures) == 3

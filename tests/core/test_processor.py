"""Tests for the timing simulator.

A mix of micro-traces with hand-checkable timing properties and invariants
over real workload traces.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.isa.opcodes import FuClass
from repro.vm.trace import DynInst

IALU = int(FuClass.IALU)
IDIV = int(FuClass.IDIV)
LOAD = int(FuClass.LOAD)
STORE = int(FuClass.STORE)

STACK_ADDR = 0x7FFF0000
DATA_ADDR = 0x10000000


def run(insts, **baseline_kwargs):
    config = MachineConfig.baseline(**baseline_kwargs)
    return Processor(config).run(list(insts), "micro")


def alu(dst, srcs=()):
    return DynInst(IALU, dst=dst, srcs=tuple(srcs))


def load(dst, addr, local=False, srcs=(5,), sp_based=False, frame=0, off=0):
    return DynInst(LOAD, dst=dst, srcs=tuple(srcs), addr=addr, size=4,
                   local_hint=local, is_local=local, sp_based=sp_based,
                   frame_id=frame, offset=off)


def store(addr, local=False, srcs=(5, 6), sp_based=False, frame=0, off=0):
    return DynInst(STORE, srcs=tuple(srcs), addr=addr, size=4,
                   local_hint=local, is_local=local, sp_based=sp_based,
                   frame_id=frame, offset=off)


# -- basic sanity ------------------------------------------------------------

def test_empty_like_trace_terminates():
    result = run([alu(8)])
    assert result.instructions == 1
    assert result.cycles >= 1


def test_independent_ops_superscalar():
    """16 independent ALU ops should take only a few cycles, not 16."""
    result = run([alu(8 + i) for i in range(16)])
    assert result.cycles < 10


def test_dependent_chain_serialises():
    """A chain of N dependent 1-cycle ops needs at least N cycles."""
    insts = [alu(8)]
    for _ in range(20):
        insts.append(alu(8, srcs=(8,)))
    result = run(insts)
    assert result.cycles >= 21


def test_divide_latency_on_critical_path():
    fast = run([alu(8), alu(9, srcs=(8,))])
    slow = run([DynInst(IDIV, dst=8, srcs=()), alu(9, srcs=(8,))])
    assert slow.cycles >= fast.cycles + 30  # ~34-cycle divide


def test_ipc_counts():
    result = run([alu(8 + (i % 8)) for i in range(100)])
    assert result.instructions == 100
    assert result.ipc == pytest.approx(100 / result.cycles)


# -- memory behaviour --------------------------------------------------------

def test_load_hit_faster_than_miss():
    warm = [load(8, DATA_ADDR), load(9, DATA_ADDR)]
    cold = [load(8, DATA_ADDR), load(9, DATA_ADDR + 0x4000)]
    assert run(warm).cycles <= run(cold).cycles


def test_store_to_load_forwarding_beats_cold_miss():
    forwarded = [store(DATA_ADDR), load(8, DATA_ADDR)]
    result = run(forwarded)
    # The load forwards from the queue: no second miss on the bus.
    assert result.counters.get("lsq.forwards") == 1


def test_port_limit_throttles():
    """32 independent loads to distinct warm lines: ports gate throughput."""
    lines = [DATA_ADDR + 32 * i for i in range(32)]
    warmup = [load(8, a) for a in lines]
    insts = warmup + [load(8 + (i % 8), a) for i, a in enumerate(lines * 4)]
    one = run(insts, l1_ports=1)
    many = run(insts, l1_ports=8)
    assert one.cycles > many.cycles


def test_local_refs_use_lvc_when_decoupled():
    insts = [store(STACK_ADDR, local=True), load(8, STACK_ADDR + 64,
                                                 local=True)]
    result = run(insts, l1_ports=2, lvc_ports=2)
    assert result.counters.get("lvaq.stores") == 1
    assert result.counters.get("lvaq.loads") == 1
    assert result.counters.get("lsq.loads") == 0


def test_local_refs_use_lsq_when_not_decoupled():
    insts = [store(STACK_ADDR, local=True), load(8, STACK_ADDR, local=True)]
    result = run(insts, l1_ports=2, lvc_ports=0)
    assert result.counters.get("lsq.stores") == 1
    assert result.counters.get("lvaq.stores") == 0


def test_ambiguous_ref_predicted_and_counted():
    ambiguous = DynInst(LOAD, dst=8, srcs=(5,), addr=STACK_ADDR, size=4,
                        local_hint=None, is_local=True, pc=77)
    result = run([ambiguous] * 3, l1_ports=2, lvc_ports=2)
    # first dynamic instance mispredicts (table cold), later ones do not
    assert result.counters.get("classify.mispredictions") == 1
    assert result.counters.get("lvaq.loads") == 3


def test_fast_forwarding_counted():
    pair = [
        store(STACK_ADDR + 8, local=True, sp_based=True, frame=1, off=8),
        load(8, STACK_ADDR + 8, local=True, sp_based=True, frame=1, off=8),
    ]
    result = run(pair * 10, l1_ports=2, lvc_ports=2, fast_forwarding=True)
    assert result.counters.get("lvaq.fast_forwards") > 0


def test_fast_forwarding_does_not_cross_frames():
    pair = [
        store(STACK_ADDR + 8, local=True, sp_based=True, frame=1, off=8),
        load(8, STACK_ADDR + 108, local=True, sp_based=True, frame=2, off=8),
    ]
    result = run(pair * 5, l1_ports=2, lvc_ports=2, fast_forwarding=True)
    assert result.counters.get("lvaq.fast_forwards", ) == 0


def test_combining_reduces_lvc_transactions():
    # bursts of adjacent same-line local loads (a restore sequence)
    burst = [load(8 + i, STACK_ADDR + 4 * i, local=True, srcs=(29,))
             for i in range(8)]
    warm = [load(8, STACK_ADDR, local=True, srcs=(29,))]
    insts = warm + burst * 8
    plain = run(insts, l1_ports=2, lvc_ports=1)
    combined = run(insts, l1_ports=2, lvc_ports=1, combining=4)
    assert combined.counters.get("lvaq.load_combined") > 0
    assert combined.cycles <= plain.cycles


def test_store_combining_at_commit():
    burst = [store(STACK_ADDR + 4 * i, local=True, srcs=(29, 6),
                   sp_based=True, frame=1, off=4 * i) for i in range(8)]
    result = run(burst * 6, l1_ports=2, lvc_ports=1, combining=4)
    assert result.counters.get("lvaq.store_combined") > 0


# -- invariants over real traces ----------------------------------------------

def test_all_instructions_commit(small_li_trace):
    result = Processor(MachineConfig.baseline(2, 2)).run(
        small_li_trace.insts, "li"
    )
    assert result.instructions == len(small_li_trace)
    assert result.counters.get("cycles") == result.cycles


def test_queue_accounting_conserved(small_li_trace):
    result = Processor(MachineConfig.baseline(2, 2)).run(
        small_li_trace.insts, "li"
    )
    c = result.counters
    total_mem = (c.get("lsq.loads") + c.get("lsq.stores")
                 + c.get("lvaq.loads") + c.get("lvaq.stores"))
    assert total_mem == small_li_trace.stats.mem_refs


def test_more_l1_ports_never_slower(small_vortex_trace):
    insts = small_vortex_trace.insts
    two = Processor(MachineConfig.baseline(2, 0)).run(insts, "v")
    eight = Processor(MachineConfig.baseline(8, 0)).run(insts, "v")
    assert eight.cycles <= two.cycles


def test_determinism(small_li_trace):
    a = Processor(MachineConfig.baseline(3, 2)).run(small_li_trace.insts, "li")
    b = Processor(MachineConfig.baseline(3, 2)).run(small_li_trace.insts, "li")
    assert a.cycles == b.cycles


def test_lvc_hit_rate_high_on_li(small_li_trace):
    result = Processor(MachineConfig.baseline(2, 2)).run(
        small_li_trace.insts, "li"
    )
    assert result.lvc_miss_rate < 0.05


def test_wider_issue_helps_or_equal(small_li_trace):
    narrow = MachineConfig.baseline(4, 0)
    narrow.issue_width = 4
    wide = MachineConfig.baseline(4, 0)
    a = Processor(narrow).run(small_li_trace.insts, "li")
    b = Processor(wide).run(small_li_trace.insts, "li")
    assert b.cycles <= a.cycles

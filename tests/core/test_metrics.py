"""Tests for SimResult metrics."""

import pytest

from repro.core.metrics import SimResult
from repro.stats.counters import CounterSet


def make_result(cycles=100, instructions=400, **counts):
    counters = CounterSet()
    for name, value in counts.items():
        counters.set(name.replace("__", "."), value)
    return SimResult("(2+2)", "w", cycles, instructions, counters)


def test_ipc():
    assert make_result().ipc == 4.0


def test_zero_cycles_ipc():
    assert make_result(cycles=0).ipc == 0.0


def test_speedup_over():
    fast = make_result(cycles=100)
    slow = make_result(cycles=200)
    assert fast.speedup_over(slow) == pytest.approx(2.0)


def test_miss_rates():
    result = make_result(l1__misses=10, l1__accesses=100,
                         lvc__misses=1, lvc__accesses=50)
    assert result.l1_miss_rate == pytest.approx(0.1)
    assert result.lvc_miss_rate == pytest.approx(0.02)


def test_miss_rate_without_accesses():
    assert make_result().lvc_miss_rate == 0.0


def test_forward_rate():
    result = make_result(lvaq__loads=100, lvaq__forwards=30,
                         lvaq__fast_forwards=20)
    assert result.lvaq_forward_rate == pytest.approx(0.5)


def test_l2_traffic():
    assert make_result(bus__transactions=7).l2_traffic == 7


def test_summary_keys():
    summary = make_result().summary()
    for key in ("config", "workload", "cycles", "ipc", "l1_miss_rate"):
        assert key in summary

"""The fused kernel must be bit-identical to the portable kernel.

``Processor.run`` composes the five stage modules in one of two ways:
the default **fused** kernel (``repro.core.stages.compose`` splices the
tick bodies into one generated function) and the **portable** kernel
(plain closure calls, selected with ``REPRO_PORTABLE_KERNEL=1``).  Both
are built from the same stage sources, so any divergence is a composer
bug; these tests pin the two to exact cycle counts and exact counter
values across port-arbitration and frontend policies, on real workload
traces.

The composer itself is also exercised structurally: it must refuse a
stage whose tick violates the splicing rules (mid-body return,
non-identity default), because a silent mis-splice would surface as a
subtly wrong timing model.
"""

import os

import pytest

from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.workloads.builder import build_trace


def _insts(name="099.go", length=12000):
    trace = build_trace(name, length)
    return trace.insts if hasattr(trace, "insts") else list(trace)


def _run(config, insts, portable):
    old = os.environ.get("REPRO_PORTABLE_KERNEL")
    os.environ["REPRO_PORTABLE_KERNEL"] = "1" if portable else "0"
    try:
        result = Processor(config).run(insts, "compose-test")
    finally:
        if old is None:
            os.environ.pop("REPRO_PORTABLE_KERNEL", None)
        else:
            os.environ["REPRO_PORTABLE_KERNEL"] = old
    return result


def _counters(result):
    return result.counters.as_dict()


def _config(ports=None, frontend=None, **decouple):
    config = MachineConfig.baseline()
    if ports:
        config.mem.l1_port_policy = ports
        config.mem.lvc_port_policy = ports
    if frontend:
        config.frontend.policy = frontend
    for key, value in decouple.items():
        setattr(config.decouple, key, value)
    return config


CASES = [
    ("default", lambda: _config()),
    ("finite-ports", lambda: _config(ports="finite")),
    ("gshare", lambda: _config(frontend="gshare")),
    ("finite+gshare", lambda: _config(ports="finite", frontend="gshare")),
    ("combining", lambda: _config(fast_forwarding=True, combining=4)),
]


@pytest.mark.parametrize("name,make", CASES, ids=[c[0] for c in CASES])
def test_fused_matches_portable(name, make):
    insts = _insts()
    fused = _run(make(), insts, portable=False)
    portable = _run(make(), insts, portable=True)
    assert fused.cycles == portable.cycles
    assert _counters(fused) == _counters(portable)


def test_fused_matches_portable_second_workload():
    insts = _insts("126.gcc")
    fused = _run(_config(ports="finite", frontend="gshare"), insts,
                 portable=False)
    portable = _run(_config(ports="finite", frontend="gshare"), insts,
                    portable=True)
    assert fused.cycles == portable.cycles
    assert _counters(fused) == _counters(portable)


def test_compose_source_is_valid_python():
    import ast

    from repro.core.stages.compose import compose_source

    source = compose_source()
    ast.parse(source)
    # The five stage splices and the shared epilogue are all present.
    for marker in ("# ---- commit", "# ---- writeback", "# ---- memory",
                   "# ---- issue", "# ---- dispatch", "_fin_commit",
                   "_fin_dispatch"):
        assert marker in source


def test_composer_rejects_rule_violations():
    """The splicing rules are enforced, not assumed."""
    import textwrap
    import types

    from repro.core.stages import compose

    bad_return = types.ModuleType("bad_stage")
    bad_return.__file__ = "/tmp/bad_stage_return.py"
    source = textwrap.dedent(
        '''
        def bind(state):
            x = state.x

            def tick(now, x=x):
                if x:
                    return 1
                x += 1

            def finish():
                return {}

            return tick, finish
        '''
    )
    with open(bad_return.__file__, "w", encoding="utf-8") as handle:
        handle.write(source)
    with pytest.raises(compose.ComposeError):
        compose._stage_parts(bad_return, "bad", ("now",), {})

    bad_default = types.ModuleType("bad_stage2")
    bad_default.__file__ = "/tmp/bad_stage_default.py"
    source = textwrap.dedent(
        '''
        def bind(state):
            x = state.x

            def tick(now, y=x):
                y += 1

            def finish():
                return {}

            return tick, finish
        '''
    )
    with open(bad_default.__file__, "w", encoding="utf-8") as handle:
        handle.write(source)
    with pytest.raises(compose.ComposeError):
        compose._stage_parts(bad_default, "bad2", ("now",), {})

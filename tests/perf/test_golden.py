"""Golden-equivalence tests: the optimized core is bit-identical to the seed.

These are the acceptance tests of the performance work.  The optimized
:class:`~repro.core.processor.Processor` must produce exactly the same
cycle counts, instruction counts, and counters as the frozen seed core in
:mod:`repro.perf.reference` — on the real workload/config matrix, on
randomized traces, and through the parallel runtime path.

A sensitivity test closes the loop: a core with a deliberately wrong
(off-by-one) functional-unit latency must be *caught* by the harness,
proving the comparison has teeth.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import repro.core.processor as processor_module
from repro.core.config import MachineConfig
from repro.core.processor import Processor
from repro.isa.opcodes import FuClass
from repro.perf.golden import (
    FIG9_CONFIG,
    GOLDEN_CONFIGS,
    check_equivalence,
    compare_on_trace,
    diff_results,
    golden_config,
)
from repro.perf.reference import ReferenceProcessor
from repro.workloads.builder import build_trace

from tests.core.test_processor_fuzz import dyn_insts, machine_configs

#: One pointer-chasing integer, one list-heavy integer, one FP workload —
#: a cross-section, kept small so the full config matrix stays fast.
MATRIX_WORKLOADS = ("129.compress", "130.li", "102.swim")
MATRIX_LENGTH = 6_000


class PerturbedProcessor(Processor):
    """The optimized core with the IALU latency off by one.

    Exists to prove the equivalence harness actually detects timing bugs:
    a single extra cycle on the most common operation must surface as a
    cycle-count mismatch on any non-trivial trace.
    """

    def run(self, insts, workload_name="<trace>"):
        table = processor_module.LATENCY_BY_INT
        idx = int(FuClass.IALU)
        table[idx] += 1
        try:
            return super().run(insts, workload_name)
        finally:
            table[idx] -= 1


@pytest.mark.parametrize("config_name,kwargs", GOLDEN_CONFIGS,
                         ids=[name for name, _ in GOLDEN_CONFIGS])
def test_matrix_equivalence(config_name, kwargs):
    config = MachineConfig.baseline(**kwargs)
    for workload in MATRIX_WORKLOADS:
        insts = build_trace(workload, length=MATRIX_LENGTH, seed=1).insts
        mismatches = compare_on_trace(insts, config, workload, config_name)
        assert not mismatches, mismatches[:5]


def test_check_equivalence_sweep_passes():
    mismatches = check_equivalence(["129.compress"], length=4_000)
    assert mismatches == []


def test_fig9_config_is_the_decoupled_optimized_machine():
    config = golden_config(FIG9_CONFIG)
    assert config.mem.l1_ports == 2
    assert config.mem.lvc_ports == 2
    assert config.decouple.fast_forwarding
    assert config.decouple.combining == 2


@settings(max_examples=25, deadline=None)
@given(st.lists(dyn_insts(), min_size=1, max_size=120), machine_configs())
def test_randomized_equivalence(insts, config):
    """Hypothesis sweep: random traces, random machines, zero divergence."""
    expected = ReferenceProcessor(config).run(list(insts), "fuzz")
    actual = Processor(config).run(list(insts), "fuzz")
    assert actual.cycles == expected.cycles
    assert actual.instructions == expected.instructions
    assert actual.counters.as_dict() == expected.counters.as_dict()


def test_perturbed_core_is_caught():
    """Satellite: an off-by-one latency must not slip past the harness."""
    insts = build_trace("129.compress", length=4_000, seed=1).insts
    config = golden_config(FIG9_CONFIG)
    mismatches = compare_on_trace(insts, config, "129.compress",
                                  FIG9_CONFIG,
                                  optimized=PerturbedProcessor)
    assert any(m.field == "cycles" for m in mismatches), (
        "equivalence harness failed to detect an off-by-one IALU latency")
    # ... and the patch restored the table: the real core still matches.
    assert compare_on_trace(insts, config, "129.compress",
                            FIG9_CONFIG) == []


def test_diff_results_reports_counter_divergence():
    config = golden_config(FIG9_CONFIG)
    insts = build_trace("129.compress", length=2_000, seed=1).insts
    a = Processor(config).run(insts, "x")
    b = Processor(config).run(insts, "x")
    b.counters.add("lvc.hits", 1)
    mismatches = diff_results("x", "cfg", a, b)
    assert len(mismatches) == 1
    assert mismatches[0].field == "counters[lvc.hits]"
    assert "lvc.hits" in repr(mismatches[0])


def test_equivalence_through_parallel_runtime(tmp_path):
    """The optimized core run via the runtime engine (worker processes +
    on-disk cache) still matches direct in-process reference runs."""
    from repro.runtime.engine import RuntimeSession
    from repro.runtime.job import SimJob
    from repro.workloads.spec import get_spec

    workload = "129.compress"
    scale = 0.2
    length = max(10_000, int(get_spec(workload).default_length * scale))
    configs = [golden_config("2+0"), golden_config(FIG9_CONFIG)]

    session = RuntimeSession(jobs=2, cache_dir=str(tmp_path))
    jobs = [SimJob(workload, cfg, scale=scale, seed=1) for cfg in configs]
    report = session.prewarm(jobs)
    assert not report.failed

    insts = build_trace(workload, length=length, seed=1).insts
    for job, config in zip(jobs, configs):
        engine_result = report.outcomes[job.key].result
        expected = ReferenceProcessor(config).run(insts, workload)
        assert engine_result.cycles == expected.cycles
        assert engine_result.instructions == expected.instructions
        assert engine_result.counters.as_dict() == expected.counters.as_dict()


@pytest.mark.parametrize("realism", ["finite-ports", "gshare"])
def test_realism_configs_are_perturbation_sensitive(realism):
    """The realism policies flow through the same checked timing model.

    The seed reference models neither contended ports nor a gshare
    frontend, so these configs cannot diff against it; instead the
    optimized core is compared against *itself*, with the perturbed
    variant standing in for a timing bug.  The off-by-one IALU latency
    must still surface as a cycle mismatch — proving the harness's
    sensitivity survives the non-ideal memory and frontend paths — and
    the unperturbed self-comparison must stay exactly clean.
    """
    insts = build_trace("129.compress", length=4_000, seed=1).insts
    config = golden_config(FIG9_CONFIG)
    if realism == "finite-ports":
        config.mem.l1_port_policy = "finite"
        config.mem.lvc_port_policy = "finite"
    else:
        config.frontend.policy = "gshare"
        # At the default penalties this trace is frontend-bound and a
        # one-cycle execution perturbation hides entirely behind fetch
        # bubbles; minimal penalties keep the gshare path exercised
        # while leaving execution latency on the critical path.
        config.frontend.redirect_penalty = 0
        config.frontend.icache_miss_latency = 1
    mismatches = compare_on_trace(insts, config, "129.compress", realism,
                                  optimized=PerturbedProcessor,
                                  reference=Processor)
    assert any(m.field == "cycles" for m in mismatches), (
        f"{realism}: harness failed to detect an off-by-one IALU latency")
    assert compare_on_trace(insts, config, "129.compress", realism,
                            optimized=Processor, reference=Processor) == []

"""Tests of the core microbenchmark harness (``repro.perf.bench``)."""

from __future__ import annotations

import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def quick_report():
    """One tiny real benchmark run, shared by the whole module."""
    return bench.run_benchmark(
        workloads=["129.compress"], length=3_000, warmup=0, repeat=2)


def test_report_shape(quick_report):
    r = quick_report
    assert r["schema"] == bench.SCHEMA
    assert r["config"] == bench.FIG9_CONFIG
    assert len(r["workloads"]) == 1
    entry = r["workloads"][0]
    assert entry["workload"] == "129.compress"
    assert entry["instructions"] == 3_000
    for side in ("optimized", "reference"):
        stats = entry[side]
        assert stats["best_ns"] > 0
        assert stats["best_ns"] <= stats["mean_ns"] or stats["stdev_ns"] == 0
        assert stats["kips"] > 0
    assert entry["speedup"] > 0
    agg = r["aggregate"]
    assert agg["instructions"] == 3_000
    assert agg["kips"] > 0
    assert agg["speedup_vs_reference"] == entry["speedup"]
    assert agg["speedup_geomean"] == pytest.approx(entry["speedup"])


def test_no_compare_mode():
    r = bench.run_benchmark(workloads=["129.compress"], length=2_000,
                            warmup=0, repeat=1, compare=False)
    entry = r["workloads"][0]
    assert "reference" not in entry
    assert "speedup" not in entry
    assert "speedup_vs_reference" not in r["aggregate"]


def test_write_and_load_roundtrip(quick_report, tmp_path):
    path = tmp_path / "BENCH_core.json"
    bench.write_report(quick_report, str(path))
    loaded = bench.load_report(str(path))
    assert loaded == json.loads(json.dumps(quick_report))


def test_check_regression_passes_against_itself(quick_report):
    assert bench.check_regression(quick_report, quick_report) == []


def test_check_regression_detects_slowdown(quick_report):
    slow = json.loads(json.dumps(quick_report))
    slow["aggregate"]["kips"] = quick_report["aggregate"]["kips"] / 2
    failures = bench.check_regression(slow, quick_report, tolerance=0.20)
    assert failures and "regressed" in failures[0]


def test_check_regression_tolerates_small_dip(quick_report):
    dip = json.loads(json.dumps(quick_report))
    dip["aggregate"]["kips"] = quick_report["aggregate"]["kips"] * 0.9
    assert bench.check_regression(dip, quick_report, tolerance=0.20) == []


def test_check_regression_rejects_malformed():
    assert bench.check_regression({}, {"aggregate": {"kips": 1.0}})
    assert bench.check_regression({"aggregate": {"kips": 1.0}}, {})


def test_trimmed_mean_drops_outliers():
    # 8 samples: the top and bottom quarter (2 each) are trimmed, so
    # one wild outlier cannot move the estimate.
    assert bench.trimmed_mean([100, 101, 99, 100, 102, 98, 5000, 1]) == 100
    # Fewer than four samples: nothing to trim, plain mean.
    assert bench.trimmed_mean([10, 20, 30]) == 20
    assert bench.trimmed_mean([7]) == 7


def test_report_carries_trimmed_stats(quick_report):
    stats = quick_report["workloads"][0]["optimized"]
    assert stats["trimmed_mean_ns"] >= stats["best_ns"]
    assert 0 < stats["trimmed_kips"] <= stats["kips"]
    assert quick_report["aggregate"]["trimmed_kips"] > 0


def test_min_repeat_raises_round_floor():
    r = bench.run_benchmark(workloads=["129.compress"], length=2_000,
                            warmup=0, repeat=1, compare=False,
                            min_repeat=4)
    assert r["repeat"] == 4


def test_replay_lanes_and_regression_gate():
    r = bench.run_benchmark(workloads=["129.compress"], length=3_000,
                            warmup=1, repeat=2, compare=False,
                            replay=True)
    entry = r["replay"]["workloads"][0]
    for lane in ("execution_driven", "replay", "replay_fast"):
        assert entry[lane]["best_ns"] > 0
        assert entry[lane]["kips"] > 0
    agg = r["replay"]["aggregate"]
    assert agg["replay_kips"] > 0 and agg["replay_fast_kips"] > 0
    assert bench.check_regression(r, r) == []
    # A fast-path-only collapse is caught even when the execution lane
    # and the plain replay lane hold.
    slow = json.loads(json.dumps(r))
    slow["replay"]["aggregate"]["replay_fast_kips"] = (
        agg["replay_fast_kips"] / 10)
    failures = bench.check_regression(slow, r, tolerance=0.20)
    assert failures and "replay_fast" in failures[0]


def test_format_report_renders(quick_report):
    text = bench.format_report(quick_report)
    assert "129.compress" in text
    assert "speedup vs reference" in text


def test_profile_run_returns_stats_table():
    table = bench.profile_run("129.compress", length=2_000, limit=5)
    assert "cumulative" in table or "function calls" in table


def test_cli_perf_subcommand(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_core.json"
    code = main(["perf", "--workloads", "129.compress",
                 "--length", "2000", "--warmup", "0", "--repeat", "1",
                 "--output", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert "129.compress" in captured.out
    report = json.loads(out.read_text())
    assert report["schema"] == bench.SCHEMA
    # --check against the report we just wrote passes (same machine, and
    # noise is far below the 20% gate at these lengths... usually; use a
    # generous tolerance so the test is not flaky).
    code = main(["perf", "--workloads", "129.compress",
                 "--length", "2000", "--warmup", "0", "--repeat", "1",
                 "--check", str(out), "--tolerance", "0.9"])
    assert code == 0

"""Tests for repro.stats.report."""

import pytest

from repro.stats.report import Table, format_table


def test_table_needs_headers():
    with pytest.raises(ValueError):
        Table([])


def test_row_arity_checked():
    table = Table(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row(1)


def test_render_contains_cells():
    table = Table(["name", "value"], precision=2, title="T")
    table.add_row("x", 1.2345)
    text = table.render()
    assert "T" in text
    assert "name" in text
    assert "1.23" in text


def test_float_precision():
    table = Table(["v"], precision=4)
    table.add_row(0.123456)
    assert "0.1235" in table.render()


def test_int_not_float_formatted():
    table = Table(["v"])
    table.add_row(42)
    assert "42" in table.render()
    assert "42.000" not in table.render()


def test_columns_align():
    table = Table(["aa", "b"])
    table.add_row("x", "longcell")
    table.add_row("longer", "y")
    lines = table.render().splitlines()
    # header, separator, two rows: all equal width
    assert len({len(line) for line in lines}) == 1


def test_format_table_one_shot():
    text = format_table(["p"], [[1], [2]], title="rows")
    assert "rows" in text
    assert "1" in text and "2" in text

"""Tests for repro.stats.histogram."""

import pytest
from hypothesis import given, strategies as st

from repro.stats.histogram import Histogram


def test_empty_histogram():
    hist = Histogram()
    assert hist.total == 0
    assert hist.mean() == 0.0
    assert len(hist) == 0


def test_add_and_count():
    hist = Histogram()
    hist.add(3)
    hist.add(3, 2)
    hist.add(7)
    assert hist.count(3) == 3
    assert hist.count(7) == 1
    assert hist.total == 4


def test_negative_count_rejected():
    hist = Histogram()
    with pytest.raises(ValueError):
        hist.add(1, -1)


def test_mean():
    hist = Histogram()
    hist.add(2, 2)
    hist.add(8, 2)
    assert hist.mean() == 5.0


def test_min_max():
    hist = Histogram()
    hist.add(5)
    hist.add(-3)
    assert hist.min() == -3
    assert hist.max() == 5


def test_min_on_empty_raises():
    with pytest.raises(ValueError):
        Histogram().min()


def test_percentile_simple():
    hist = Histogram()
    for value in range(1, 101):
        hist.add(value)
    assert hist.percentile(0.5) == 50
    assert hist.percentile(0.99) == 99
    assert hist.percentile(1.0) == 100


def test_percentile_bad_fraction():
    hist = Histogram()
    hist.add(1)
    with pytest.raises(ValueError):
        hist.percentile(0.0)
    with pytest.raises(ValueError):
        hist.percentile(1.5)


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        Histogram().percentile(0.5)


def test_cumulative_is_monotone():
    hist = Histogram()
    hist.add(1, 5)
    hist.add(2, 3)
    hist.add(10, 2)
    cumulative = hist.cumulative()
    fractions = [f for _, f in cumulative]
    assert fractions == sorted(fractions)
    assert fractions[-1] == pytest.approx(1.0)


def test_merge():
    a = Histogram()
    b = Histogram()
    a.add(1, 2)
    b.add(1, 3)
    b.add(2, 1)
    a.merge(b)
    assert a.count(1) == 5
    assert a.count(2) == 1
    assert a.total == 6


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1,
                max_size=200))
def test_percentile_matches_sorted_list(samples):
    """percentile(f) equals the value at the ceil(f*n)-th sorted position."""
    hist = Histogram()
    for sample in samples:
        hist.add(sample)
    ordered = sorted(samples)
    for fraction in (0.1, 0.5, 0.9, 1.0):
        threshold = fraction * len(ordered)
        index = 0
        seen = 0
        for i, value in enumerate(ordered):
            seen += 1
            if seen >= threshold:
                index = i
                break
        assert hist.percentile(fraction) == ordered[index]


@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
                max_size=100))
def test_mean_matches_builtin(samples):
    hist = Histogram()
    for sample in samples:
        hist.add(sample)
    assert hist.mean() == pytest.approx(sum(samples) / len(samples))

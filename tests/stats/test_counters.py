"""Tests for repro.stats.counters."""

import pytest

from repro.stats.counters import CounterSet


def test_counters_start_at_zero():
    counters = CounterSet()
    assert counters.get("anything") == 0
    assert len(counters) == 0


def test_add_accumulates():
    counters = CounterSet()
    counters.add("hits")
    counters.add("hits", 4)
    assert counters.get("hits") == 5


def test_set_overwrites():
    counters = CounterSet()
    counters.add("x", 10)
    counters.set("x", 3)
    assert counters.get("x") == 3


def test_rate_divides():
    counters = CounterSet()
    counters.add("misses", 25)
    counters.add("accesses", 100)
    assert counters.rate("misses", "accesses") == 0.25


def test_rate_zero_denominator_returns_default():
    counters = CounterSet()
    counters.add("misses", 5)
    assert counters.rate("misses", "accesses") == 0.0
    assert counters.rate("misses", "accesses", default=1.5) == 1.5


def test_merge_adds_counters():
    a = CounterSet()
    b = CounterSet()
    a.add("x", 1)
    b.add("x", 2)
    b.add("y", 3)
    a.merge(b)
    assert a.get("x") == 3
    assert a.get("y") == 3


def test_items_sorted_by_name():
    counters = CounterSet()
    counters.add("zebra")
    counters.add("alpha")
    assert [name for name, _ in counters.items()] == ["alpha", "zebra"]


def test_contains():
    counters = CounterSet()
    assert "x" not in counters
    counters.add("x")
    assert "x" in counters


def test_as_dict_is_a_copy():
    counters = CounterSet()
    counters.add("x")
    snapshot = counters.as_dict()
    snapshot["x"] = 99
    assert counters.get("x") == 1

"""Tests for the mini-C parser."""

import pytest

from repro.errors import CompileError
from repro.lang.ast_nodes import (
    Assign, Binary, Block, Call, For, FuncDef, If, Index, IntLit, Return,
    Unary, VarDecl, While,
)
from repro.lang.parser import parse


def parse_main(body):
    ast = parse("int main() { " + body + " }")
    return ast.functions[0].body.stmts


def first_expr(body):
    stmt = parse_main(body)[0]
    return stmt.expr


def test_empty_function():
    ast = parse("void f() { }")
    assert ast.functions[0].name == "f"
    assert ast.functions[0].body.stmts == []


def test_parameters():
    ast = parse("int f(int a, float *b) { return a; }")
    params = ast.functions[0].params
    assert [p.name for p in params] == ["a", "b"]
    assert str(params[1].ty) == "float*"


def test_global_scalar_and_array():
    ast = parse("int g = 5; float arr[10]; int main() { return 0; }")
    assert ast.globals[0].init == [5]
    assert ast.globals[1].array_size == 10


def test_global_negative_init():
    ast = parse("int g = -3; int main() { return 0; }")
    assert ast.globals[0].init == [-3]


def test_precedence_mul_over_add():
    expr = first_expr("1 + 2 * 3;")
    assert isinstance(expr, Binary) and expr.op == "+"
    assert isinstance(expr.right, Binary) and expr.right.op == "*"


def test_precedence_comparison_over_logic():
    expr = first_expr("1 < 2 && 3 < 4;")
    assert expr.op == "&&"
    assert expr.left.op == "<"


def test_parentheses_override():
    expr = first_expr("(1 + 2) * 3;")
    assert expr.op == "*"
    assert expr.left.op == "+"


def test_assignment_right_associative():
    expr = first_expr("a = b = 1;")
    assert isinstance(expr, Assign)
    assert isinstance(expr.value, Assign)


def test_compound_assignment():
    expr = first_expr("a += 2;")
    assert isinstance(expr, Assign) and expr.op == "+"


def test_postincrement_desugars():
    expr = first_expr("i++;")
    assert isinstance(expr, Assign) and expr.op == "+"
    assert isinstance(expr.value, IntLit) and expr.value.value == 1


def test_unary_operators():
    expr = first_expr("-*&x;")
    assert isinstance(expr, Unary) and expr.op == "-"
    assert expr.operand.op == "*"
    assert expr.operand.operand.op == "&"


def test_indexing_chains():
    expr = first_expr("a[1][2];")
    assert isinstance(expr, Index)
    assert isinstance(expr.base, Index)


def test_call_with_args():
    expr = first_expr("f(1, 2 + 3);")
    assert isinstance(expr, Call)
    assert len(expr.args) == 2


def test_if_else():
    stmt = parse_main("if (1) { } else { }")[0]
    assert isinstance(stmt, If)
    assert stmt.els is not None


def test_dangling_else_binds_inner():
    stmt = parse_main("if (1) if (2) { } else { }")[0]
    assert stmt.els is None
    assert stmt.then.els is not None


def test_while_and_for():
    stmts = parse_main("while (1) { } for (int i = 0; i < 3; i++) { }")
    assert isinstance(stmts[0], While)
    assert isinstance(stmts[1], For)
    assert isinstance(stmts[1].init, VarDecl)


def test_for_with_empty_clauses():
    stmt = parse_main("for (;;) { break; }")[0]
    assert stmt.init is None and stmt.cond is None and stmt.step is None


def test_local_array_declaration():
    stmt = parse_main("int buf[16];")[0]
    assert isinstance(stmt, VarDecl)
    assert stmt.array_size == 16


def test_return_with_and_without_value():
    stmts = parse_main("return 1; return;")
    assert isinstance(stmts[0], Return) and stmts[0].value is not None
    assert stmts[1].value is None


def test_missing_semicolon():
    with pytest.raises(CompileError):
        parse("int main() { return 1 }")


def test_unterminated_block():
    with pytest.raises(CompileError):
        parse("int main() {")


def test_garbage_in_expression():
    with pytest.raises(CompileError):
        parse("int main() { 1 + ; }")

"""Tests for the IR optimizer (constant folding, copy prop, DCE)."""

import pytest

from repro.lang import CompilerOptions, compile_source
from repro.lang.frontend import CompileStats
from repro.lang.ir import IrFunction, IrInstr, VReg
from repro.lang.optimizer import (
    eliminate_dead_code,
    fold_and_propagate,
    optimize,
)
from repro.vm import run_program


def func_with(instrs):
    f = IrFunction("f")
    f.body = instrs
    return f


def test_constant_fold_bin():
    f = IrFunction("f")
    a, b, c = f.new_vreg(), f.new_vreg(), f.new_vreg()
    f.body = [
        IrInstr(kind="li", dst=a, imm=6),
        IrInstr(kind="li", dst=b, imm=7),
        IrInstr(kind="bin", op="mul", dst=c, a=a, b=b),
        IrInstr(kind="ret", args=[c]),
    ]
    fold_and_propagate(f)
    assert f.body[2].kind == "li"
    assert f.body[2].imm == 42


def test_constant_fold_bini():
    f = IrFunction("f")
    a, b = f.new_vreg(), f.new_vreg()
    f.body = [
        IrInstr(kind="li", dst=a, imm=5),
        IrInstr(kind="bini", op="shl", dst=b, a=a, imm=2),
        IrInstr(kind="ret", args=[b]),
    ]
    fold_and_propagate(f)
    assert f.body[1].kind == "li" and f.body[1].imm == 20


def test_no_fold_across_labels():
    """Facts die at labels (a join point may bring other values)."""
    f = IrFunction("f")
    a, b = f.new_vreg(), f.new_vreg()
    f.body = [
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="label", sym="L"),
        IrInstr(kind="bini", op="add", dst=b, a=a, imm=1),
        IrInstr(kind="ret", args=[b]),
    ]
    fold_and_propagate(f)
    assert f.body[2].kind == "bini"  # not folded


def test_copy_propagation():
    f = IrFunction("f")
    a, b, c = f.new_vreg(), f.new_vreg(), f.new_vreg()
    f.body = [
        # a holds an unknown (non-constant) value: address of a frame slot
        IrInstr(kind="la_frame", dst=a, base=("frame", None)),
        IrInstr(kind="mov", dst=b, a=a),
        IrInstr(kind="bin", op="sub", dst=c, a=b, b=b),
        IrInstr(kind="ret", args=[c]),
    ]
    fold_and_propagate(f)
    assert f.body[2].a is a
    assert f.body[2].b is a


def test_copy_invalidated_on_source_redef():
    f = IrFunction("f")
    a, b, c = f.new_vreg(), f.new_vreg(), f.new_vreg()
    f.body = [
        IrInstr(kind="la_frame", dst=a, base=("frame", None)),
        IrInstr(kind="mov", dst=b, a=a),
        IrInstr(kind="la_global", dst=a, sym="g"),  # redefines the source
        IrInstr(kind="bin", op="sub", dst=c, a=b, b=b),
        IrInstr(kind="ret", args=[c]),
    ]
    fold_and_propagate(f)
    assert f.body[3].a is b  # must NOT be rewritten to a


def test_strength_reduction_to_bini():
    f = IrFunction("f")
    a, b, c = f.new_vreg(), f.new_vreg(), f.new_vreg()
    f.body = [
        IrInstr(kind="li", dst=b, imm=4),
        IrInstr(kind="la_frame", dst=a, base=("frame", None)),
        IrInstr(kind="bin", op="add", dst=c, a=a, b=b),
        IrInstr(kind="ret", args=[c]),
    ]
    fold_and_propagate(f)
    assert f.body[2].kind == "bini"
    assert f.body[2].imm == 4


def test_dead_code_removed():
    f = IrFunction("f")
    a, b = f.new_vreg(), f.new_vreg()
    f.body = [
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="li", dst=b, imm=2),  # dead
        IrInstr(kind="ret", args=[a]),
    ]
    removed = eliminate_dead_code(f)
    assert removed == 1
    assert len(f.body) == 2


def test_stores_never_removed():
    f = IrFunction("f")
    a = f.new_vreg()
    f.body = [
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="store", a=a, base=("global", "g"), locality=False),
    ]
    assert eliminate_dead_code(f) == 0


def test_loads_never_removed():
    """Loads may have observable ordering effects; keep them."""
    f = IrFunction("f")
    a = f.new_vreg()
    f.body = [IrInstr(kind="load", dst=a, base=("global", "g"),
                      locality=False)]
    assert eliminate_dead_code(f) == 0


def test_precolored_defs_never_removed():
    from repro.isa.registers import Reg

    f = IrFunction("f")
    v0 = VReg(0, phys=int(Reg.V0))
    f.body = [IrInstr(kind="li", dst=v0, imm=1)]
    assert eliminate_dead_code(f) == 0


def test_optimize_reaches_fixpoint():
    f = IrFunction("f")
    regs = [f.new_vreg() for _ in range(4)]
    f.body = [
        IrInstr(kind="li", dst=regs[0], imm=3),
        IrInstr(kind="mov", dst=regs[1], a=regs[0]),
        IrInstr(kind="bini", op="add", dst=regs[2], a=regs[1], imm=4),
        IrInstr(kind="bini", op="mul", dst=regs[3], a=regs[2], imm=2),
        IrInstr(kind="ret", args=[regs[2]]),
    ]
    folded, removed = optimize(f)
    assert folded > 0
    assert removed > 0  # regs[3] is dead (and mov chain collapses)


def test_deep_dead_chain_fully_removed():
    """Regression: DCE retires one link of a dead chain per round, so a
    fixed round count used to leave long chains half-removed.  ``optimize``
    must iterate to a true fixpoint regardless of chain length."""
    f = IrFunction("f")
    live = f.new_vreg()
    chain = [f.new_vreg() for _ in range(30)]
    f.body = [IrInstr(kind="li", dst=live, imm=7),
              IrInstr(kind="li", dst=chain[0], imm=1)]
    for prev, cur in zip(chain, chain[1:]):
        f.body.append(IrInstr(kind="mov", dst=cur, a=prev))
    f.body.append(IrInstr(kind="ret", args=[live]))
    folded, removed = optimize(f)
    assert removed == len(chain)
    assert [i.kind for i in f.body] == ["li", "ret"]


def test_optimize_round_cap_raises_loudly():
    """Hitting the safety cap is a compiler bug, never a silent
    half-optimized function."""
    from repro.errors import CompileError

    f = IrFunction("f")
    live = f.new_vreg()
    chain = [f.new_vreg() for _ in range(12)]
    f.body = [IrInstr(kind="li", dst=live, imm=7),
              IrInstr(kind="li", dst=chain[0], imm=1)]
    for prev, cur in zip(chain, chain[1:]):
        f.body.append(IrInstr(kind="mov", dst=cur, a=prev))
    f.body.append(IrInstr(kind="ret", args=[live]))
    with pytest.raises(CompileError):
        optimize(f, max_rounds=2)


def test_distinct_vregs_never_alias():
    """Optimizer state keys on VReg *identity*: two distinct registers
    that happen to share an id number must track separate constants."""
    f = IrFunction("f")
    a, b = VReg(7), VReg(7)  # same number, different objects
    c = f.new_vreg()
    f.body = [
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="li", dst=b, imm=2),
        IrInstr(kind="bin", op="add", dst=c, a=a, b=b),
        IrInstr(kind="ret", args=[c]),
    ]
    fold_and_propagate(f)
    assert f.body[2].kind == "li"
    assert f.body[2].imm == 3


def test_vreg_keys_by_identity_at_class_level():
    """The import-time guard the optimizer and SSA modules both assert:
    a value-semantics VReg would silently merge optimizer facts."""
    assert VReg.__eq__ is object.__eq__
    assert VReg.__hash__ is object.__hash__


# -- end to end: optimization must not change observable behaviour ------------

_PROGRAMS = [
    ("int main() { print(2 * 3 + 4 * 5); return 0; }", "26"),
    ("""
int main() {
    int acc = 0;
    int i;
    for (i = 0; i < 10; i++) { acc += i * 2; }
    print(acc);
    return 0;
}
""", "90"),
    ("""
int twice(int x) { return x + x; }
int main() { print(twice(10) + twice(11)); return 0; }
""", "42"),
]


@pytest.mark.parametrize("source,expected", _PROGRAMS)
def test_optimized_matches_unoptimized(source, expected):
    for level in (0, 1, 2):
        program = compile_source(source, CompilerOptions(opt_level=level))
        vm, _ = run_program(program)
        assert vm.stdout == expected
        assert vm.exit_code == 0


def test_optimizer_shrinks_code():
    source = "int main() { int x = 2 + 3; int y = x * 4; print(y); return 0; }"
    small = CompileStats()
    compile_source(source, CompilerOptions(optimize=True), stats=small)
    big = CompileStats()
    compile_source(source, CompilerOptions(optimize=False), stats=big)
    assert small.instructions <= big.instructions
    assert small.ops_folded + small.ops_removed > 0

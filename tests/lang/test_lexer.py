"""Tests for the mini-C lexer."""

import pytest

from repro.errors import CompileError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType as T


def kinds(source):
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


def test_keywords_and_identifiers():
    assert kinds("int x") == [T.KW_INT, T.IDENT]
    assert kinds("intx") == [T.IDENT]
    assert kinds("float void if else while for return break continue") == [
        T.KW_FLOAT, T.KW_VOID, T.KW_IF, T.KW_ELSE, T.KW_WHILE, T.KW_FOR,
        T.KW_RETURN, T.KW_BREAK, T.KW_CONTINUE,
    ]


def test_numbers():
    tokens = tokenize("42 3.5")
    assert tokens[0].type is T.INT_LIT and tokens[0].value == 42
    assert tokens[1].type is T.FLOAT_LIT and tokens[1].value == 3.5


def test_malformed_float_rejected():
    with pytest.raises(CompileError):
        tokenize("1.2.3")


def test_char_literals():
    tokens = tokenize("'a' '\\n' ' '")
    assert [t.value for t in tokens[:-1]] == [97, 10, 32]


def test_bad_char_literal():
    with pytest.raises(CompileError):
        tokenize("'ab'")
    with pytest.raises(CompileError):
        tokenize("'\\q'")


def test_two_char_operators():
    assert kinds("== != <= >= && || << >> += -= ++ --") == [
        T.EQ, T.NE, T.LE, T.GE, T.AND_AND, T.OR_OR, T.SHL, T.SHR,
        T.PLUS_ASSIGN, T.MINUS_ASSIGN, T.PLUS_PLUS, T.MINUS_MINUS,
    ]


def test_one_char_operators():
    assert kinds("= + - * / % & | ^ ! < >") == [
        T.ASSIGN, T.PLUS, T.MINUS, T.STAR, T.SLASH, T.PERCENT, T.AMP,
        T.PIPE, T.CARET, T.NOT, T.LT, T.GT,
    ]


def test_line_comment_skipped():
    assert kinds("1 // comment\n2") == [T.INT_LIT, T.INT_LIT]


def test_block_comment_skipped():
    assert kinds("1 /* multi\nline */ 2") == [T.INT_LIT, T.INT_LIT]


def test_unterminated_block_comment():
    with pytest.raises(CompileError):
        tokenize("/* forever")


def test_positions_tracked():
    tokens = tokenize("a\n  b")
    assert (tokens[0].line, tokens[0].column) == (1, 1)
    assert (tokens[1].line, tokens[1].column) == (2, 3)


def test_unexpected_character():
    with pytest.raises(CompileError):
        tokenize("@")


def test_eof_always_last():
    assert tokenize("")[-1].type is T.EOF
    assert tokenize("x")[-1].type is T.EOF

"""Boundary-value agreement between the constant folder, the VM, and C.

Every ``_FOLDABLE_INT`` rule must compute exactly what the generated code
computes at run time.  Three views are compared on boundary operands
(negatives, ±INT_MAX, shift counts ≥ 32):

* the folder, applied to an IR ``li``/``li``/``bin`` triple;
* the VM, executing the equivalent register-register opcode;
* for source-reachable operators, optimized and unoptimized builds of a
  mini-C program, which must print identical values.

The regression cases at the bottom pin the two historical miscompiles:
``>>`` folding arithmetically while the register form lowered to a
logical shift, and folded values escaping the 32-bit wrap.
"""

from __future__ import annotations

import pytest

from repro.asm import assemble
from repro.lang import CompilerOptions, compile_source
from repro.lang.ir import IrFunction, IrInstr
from repro.lang.optimizer import _FOLDABLE_INT, fold_and_propagate
from repro.utils import to_signed32
from repro.vm import run_program

INT_MAX = 2147483647
INT_MIN = -2147483648

#: Negatives, the 32-bit extremes, and shift counts on both sides of 32.
BOUNDARY = (INT_MIN, -INT_MAX, -65536, -32768, -2, -1, 0, 1, 2, 3,
            31, 32, 33, 65535, INT_MAX - 1, INT_MAX)

#: IR op -> register-register mnemonic (ops the ISA encodes directly).
#: ``div``/``rem`` trap on a zero divisor, so matrix tests over this
#: table must filter ``b == 0`` pairs for them.
_RRR_MNEMONIC = {
    "add": "add", "sub": "sub", "mul": "mul", "div": "div", "rem": "rem",
    "and": "and", "or": "or", "xor": "xor", "shl": "sllv", "shr": "srlv",
    "sra": "srav", "slt": "slt",
}

_TRAPPING = ("div", "rem")


def fold_bin(op: str, a: int, b: int) -> int:
    """What the folder turns ``li a; li b; bin op`` into."""
    func = IrFunction("f")
    ra, rb, rc = func.new_vreg(), func.new_vreg(), func.new_vreg()
    func.body = [
        IrInstr(kind="li", dst=ra, imm=a),
        IrInstr(kind="li", dst=rb, imm=b),
        IrInstr(kind="bin", op=op, dst=rc, a=ra, b=rb),
        IrInstr(kind="ret", args=[rc]),
    ]
    fold_and_propagate(func)
    folded = func.body[2]
    assert folded.kind == "li", f"{op} did not fold for ({a}, {b})"
    return folded.imm


def vm_bin(op: str, pairs) -> list:
    """Execute *op* on the VM for every operand pair, via the assembler."""
    lines = ["main:"]
    for a, b in pairs:
        lines += [
            f"    li $t0, {a}",
            f"    li $t1, {b}",
            f"    {_RRR_MNEMONIC[op]} $t2, $t0, $t1",
            "    addi $a0, $t2, 0",
            "    syscall 1",
            "    li $a0, 10",
            "    syscall 2",
        ]
    lines += ["    li $a0, 0", "    syscall 0"]
    program = assemble("\n".join(lines) + "\n")
    vm, _ = run_program(program, max_instructions=200_000)
    assert vm.exit_code == 0
    return [int(line) for line in vm.stdout.splitlines()]


@pytest.mark.parametrize("op", sorted(_RRR_MNEMONIC))
def test_folder_matches_vm(op):
    """The fold of every boundary pair equals the VM's RRR execution."""
    pairs = [(a, b) for a in BOUNDARY for b in BOUNDARY
             if not (op in _TRAPPING and b == 0)]
    executed = vm_bin(op, pairs)
    for (a, b), ran in zip(pairs, executed):
        folded = fold_bin(op, a, b)
        assert folded == ran, f"{op}({a}, {b}): fold {folded}, VM {ran}"


@pytest.mark.parametrize("op", ("sle", "sgt", "sge", "seq", "sne"))
def test_comparison_folds(op):
    """Comparisons without a single opcode fold to the Python relation."""
    relation = {"sle": lambda a, b: a <= b, "sgt": lambda a, b: a > b,
                "sge": lambda a, b: a >= b, "seq": lambda a, b: a == b,
                "sne": lambda a, b: a != b}[op]
    for a in BOUNDARY:
        for b in (INT_MIN, -1, 0, 1, a, INT_MAX):
            assert fold_bin(op, a, b) == int(relation(a, b))


# -- source-level: optimized == unoptimized == C -------------------------------

#: Values a mini-C literal can spell directly (INT_MIN needs an expression).
SRC_BOUNDARY = tuple(v for v in BOUNDARY if v != INT_MIN)


def c_semantics(op: str, a: int, b: int):
    """C-on-32-bit evaluation; None where the program must skip (÷0)."""
    if op in ("/", "%"):
        if b == 0:
            return None
        q = abs(a) // abs(b)
        q = -q if (a < 0) != (b < 0) else q
        return to_signed32(q if op == "/" else a - q * b)
    if op == "<<":
        return to_signed32(a << (b & 31))
    if op == ">>":
        return to_signed32(a >> (b & 31))
    arith = {"+": a + b, "-": a - b, "*": a * b,
             "&": a & b, "|": a | b, "^": a ^ b}
    return to_signed32(arith[op])


def _lit(value: int) -> str:
    return f"(0 - {-value})" if value < 0 else str(value)


@pytest.mark.parametrize("op", ("+", "-", "*", "/", "%", "&", "|", "^",
                                "<<", ">>"))
def test_source_builds_agree_with_c(op):
    """O0 and optimized builds both print the C-semantics value."""
    pairs = [(a, b) for a in SRC_BOUNDARY for b in SRC_BOUNDARY
             if c_semantics(op, a, b) is not None]
    body = "\n".join(
        f"    print(({_lit(a)} {op} {_lit(b)})); printc(10);"
        for a, b in pairs)
    source = f"int main() {{\n{body}\n    return 0;\n}}\n"
    expected = [c_semantics(op, a, b) for a, b in pairs]
    for optimize in (False, True):
        program = compile_source(source, CompilerOptions(optimize=optimize))
        vm, _ = run_program(program, max_instructions=2_000_000)
        assert vm.exit_code == 0
        got = [int(line) for line in vm.stdout.splitlines()]
        assert got == expected, (op, optimize)


# -- regressions for the two fixed miscompiles ---------------------------------


def _both_builds(source: str) -> list:
    outputs = []
    for optimize in (False, True):
        program = compile_source(source, CompilerOptions(optimize=optimize))
        vm, _ = run_program(program, max_instructions=200_000)
        assert vm.exit_code == 0
        outputs.append(vm.stdout)
    assert outputs[0] == outputs[1], source
    return outputs[0].splitlines()


def test_regression_signed_shift_right():
    """``>>`` is arithmetic: the folder used to agree only at -O0."""
    lines = _both_builds(
        "int main() {\n"
        "    print((0 - 8) >> 1); printc(10);\n"
        "    print((0 - 1) >> 31); printc(10);\n"
        "    print(2147483647 >> 30); printc(10);\n"
        "    return 0;\n"
        "}\n")
    assert lines == ["-4", "-1", "1"]


def test_regression_variable_shift_count():
    """Register-form shifts mask the count to 5 bits, like the folder."""
    lines = _both_builds(
        "int main() {\n"
        "    int s = 35;\n"
        "    print((0 - 65536) >> s); printc(10);\n"
        "    print(65536 << s); printc(10);\n"
        "    return 0;\n"
        "}\n")
    assert lines == ["-8192", "524288"]


# -- division and remainder ----------------------------------------------------


def test_div_rem_fold_truncates_toward_zero():
    """Quotients round toward zero; the remainder takes the dividend's
    sign (``rem = a - trunc(a/b)*b``), exactly the VM's DIV/REM."""
    cases = {
        (7, 2): (3, 1), (-7, 2): (-3, -1),
        (7, -2): (-3, 1), (-7, -2): (3, -1),
        (1, INT_MAX): (0, 1), (INT_MIN, 1): (INT_MIN, 0),
    }
    for (a, b), (q, r) in cases.items():
        assert fold_bin("div", a, b) == q, (a, b)
        assert fold_bin("rem", a, b) == r, (a, b)


def test_div_int_min_by_minus_one_wraps():
    """INT_MIN / -1 overflows; the fold wraps to INT_MIN like the VM's
    32-bit writeback (and the remainder is 0), not Python's 2**31."""
    assert fold_bin("div", INT_MIN, -1) == INT_MIN
    assert fold_bin("rem", INT_MIN, -1) == 0
    assert vm_bin("div", [(INT_MIN, -1)]) == [INT_MIN]
    assert vm_bin("rem", [(INT_MIN, -1)]) == [0]


@pytest.mark.parametrize("op", ("div", "rem"))
def test_zero_divisor_never_folds(op):
    """A constant ÷0 must stay a runtime trap, not a compile-time fold
    (or worse, a compile-time crash)."""
    func = IrFunction("f")
    ra, rb, rc, rd = (func.new_vreg() for _ in range(4))
    func.body = [
        IrInstr(kind="li", dst=ra, imm=5),
        IrInstr(kind="li", dst=rb, imm=0),
        IrInstr(kind="bin", op=op, dst=rc, a=ra, b=rb),
        IrInstr(kind="bini", op=op, dst=rd, a=ra, imm=0),
        IrInstr(kind="ret", args=[rc]),
    ]
    fold_and_propagate(func)
    assert func.body[2].kind == "bin"
    assert func.body[3].kind == "bini"


@pytest.mark.parametrize("opt_level", (0, 1, 2))
def test_division_by_zero_traps_at_every_level(opt_level):
    from repro.errors import VmError

    source = ("int main() {\n"
              "    int z = 0;\n"
              "    print(1 / z);\n"
              "    return 0;\n"
              "}\n")
    program = compile_source(source, CompilerOptions(opt_level=opt_level))
    with pytest.raises(VmError):
        run_program(program, max_instructions=10_000)


# -- hypothesis: the folder is a model of the VM for arbitrary operands --------

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the base image
    _HAVE_HYPOTHESIS = False

#: Source operator -> the IR op lowering emits (``>>`` is arithmetic).
_IR_FROM_C = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
              "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "sra"}

if _HAVE_HYPOTHESIS:

    @settings(max_examples=300, deadline=None)
    @given(op=st.sampled_from(sorted(_IR_FROM_C)),
           a=st.integers(INT_MIN, INT_MAX),
           b=st.integers(INT_MIN, INT_MAX))
    def test_fold_matches_c_model_on_random_operands(op, a, b):
        """Differential check: for arbitrary 32-bit operands the folder
        computes exactly the C-on-32-bit model (the same model the
        boundary matrix ties to the VM)."""
        if op in ("/", "%") and b == 0:
            return  # traps at runtime; the folder refuses (tested above)
        assert fold_bin(_IR_FROM_C[op], a, b) == c_semantics(op, a, b)


def test_regression_fold_wraps_to_32_bits():
    """Folded arithmetic wraps: 65536 * 65536 must be 0, not 2**32."""
    lines = _both_builds(
        "int main() {\n"
        "    print((65536 * 65536) < 1); printc(10);\n"
        "    print(65536 * 65536); printc(10);\n"
        "    print((2147483647 + 1) == (0 - 2147483647 - 1)); printc(10);\n"
        "    return 0;\n"
        "}\n")
    assert lines == ["1", "0", "1"]

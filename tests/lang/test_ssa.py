"""The SSA mid-end: construction, verification, global passes, destruction.

Structural tests hand-build linear IR (the same way the optimizer tests
do) so each pass can be exercised in isolation; the end-to-end tests at
the bottom drive the whole ``-O2`` pipeline through ``compile_source``
and check both behaviour and the pipeline counters.
"""

from __future__ import annotations

import pytest

from repro.errors import CompileError
from repro.isa.registers import Reg
from repro.lang import CompilerOptions, compile_source
from repro.lang.frontend import CompileStats
from repro.lang.ir import IrFunction, IrInstr, VReg
from repro.lang.passes import (
    copy_propagate,
    eliminate_dead,
    eliminate_dead_stores,
    forward_stores,
    hoist_invariants,
    propagate_constants,
    value_number,
)
from repro.lang.pipeline import normalize_opt_level, run_pipeline
from repro.lang.ssa import build_ssa, destroy_ssa, verify_linear, verify_ssa
from repro.vm import run_program


def v0_reg() -> VReg:
    return VReg(0, phys=int(Reg.V0))


def diamond_func(else_imm: int = 1, then_imm: int = 2,
                 cond_imm: int = 1) -> IrFunction:
    """``x = cond ? then_imm : else_imm; return x`` as linear IR."""
    f = IrFunction("f")
    c, x = f.new_vreg(), f.new_vreg()
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=c, imm=cond_imm),
        IrInstr(kind="br", a=c, sym="then"),
        IrInstr(kind="li", dst=x, imm=else_imm),
        IrInstr(kind="jmp", sym="join"),
        IrInstr(kind="label", sym="then"),
        IrInstr(kind="li", dst=x, imm=then_imm),
        IrInstr(kind="label", sym="join"),
        IrInstr(kind="mov", dst=v0, a=x),
        IrInstr(kind="ret", args=[v0]),
    ]
    return f


def loop_func() -> IrFunction:
    """A do-while loop with one loop-invariant multiply in the body."""
    f = IrFunction("f")
    n, i, a, inv, t = (f.new_vreg() for _ in range(5))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=n, imm=10),
        IrInstr(kind="li", dst=i, imm=0),
        IrInstr(kind="la_frame", dst=a, base=("frame", f.new_slot("p", 1))),
        IrInstr(kind="label", sym="head"),
        IrInstr(kind="bin", op="mul", dst=inv, a=a, b=a),
        IrInstr(kind="bini", op="add", dst=i, a=i, imm=1),
        IrInstr(kind="bin", op="slt", dst=t, a=i, b=n),
        IrInstr(kind="br", a=t, sym="head"),
        IrInstr(kind="mov", dst=v0, a=inv),
        IrInstr(kind="ret", args=[v0]),
    ]
    return f


def all_phis(ssa):
    return [phi for block in ssa.live_blocks() for phi in block.phis]


# -- construction and verification --------------------------------------------


def test_diamond_gets_one_phi():
    ssa = build_ssa(diamond_func())
    phis = all_phis(ssa)
    assert len(phis) == 1
    assert len(phis[0].args) == 2
    verify_ssa(ssa)


def test_phis_are_pruned_to_live_variables():
    """A variable dead after the join gets no phi even with two defs."""
    f = IrFunction("f")
    c, x, z = f.new_vreg(), f.new_vreg(), f.new_vreg()
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=c, imm=1),
        IrInstr(kind="br", a=c, sym="then"),
        IrInstr(kind="li", dst=x, imm=1),
        IrInstr(kind="li", dst=z, imm=5),  # dead past the join
        IrInstr(kind="jmp", sym="join"),
        IrInstr(kind="label", sym="then"),
        IrInstr(kind="li", dst=x, imm=2),
        IrInstr(kind="li", dst=z, imm=6),  # dead past the join
        IrInstr(kind="label", sym="join"),
        IrInstr(kind="mov", dst=v0, a=x),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    assert len(all_phis(ssa)) == 1  # x only, never z
    verify_ssa(ssa)


def test_loop_carried_variable_gets_header_phi():
    ssa = build_ssa(loop_func())
    verify_ssa(ssa)
    header = ssa.block_by_label("head")
    assert header.phis  # i (at least) is loop-carried


def test_single_definition_after_renaming():
    ssa = build_ssa(diamond_func())
    seen = set()
    for block in ssa.live_blocks():
        for phi in block.phis:
            assert id(phi.dst) not in seen
            seen.add(id(phi.dst))
        for instr in block.instrs:
            if instr.dst is not None and not instr.dst.precolored:
                assert id(instr.dst) not in seen
                seen.add(id(instr.dst))


def test_verify_catches_missing_phi_arg():
    ssa = build_ssa(diamond_func())
    phi = all_phis(ssa)[0]
    phi.args.pop(next(iter(phi.args)))
    with pytest.raises(CompileError):
        verify_ssa(ssa)


def test_verify_catches_double_definition():
    ssa = build_ssa(diamond_func())
    entry = ssa.blocks[0]
    dup = entry.instrs[0].dst
    entry.instrs.append(IrInstr(kind="li", dst=dup, imm=9))
    with pytest.raises(CompileError):
        verify_ssa(ssa)


def test_verify_catches_use_not_dominated_by_def():
    """Moving the join's use of the phi up into the entry block leaves
    every def unique but breaks def-dominates-use."""
    ssa = build_ssa(diamond_func())
    join = ssa.block_by_label("join")
    mov = [i for i in join.instrs if i.kind == "mov"][0]
    join.instrs.remove(mov)
    entry = ssa.blocks[0]
    entry.instrs.insert(len(entry.instrs) - 1, mov)
    with pytest.raises(CompileError):
        verify_ssa(ssa)


# -- individual passes ---------------------------------------------------------


def test_constant_branch_folds_and_prunes():
    ssa = build_ssa(diamond_func(cond_imm=1))
    live_before = len(ssa.live_blocks())
    assert propagate_constants(ssa) > 0
    assert len(ssa.live_blocks()) < live_before  # else arm unreachable
    assert not any(i.kind == "br" for b in ssa.live_blocks()
                   for i in b.instrs)
    # The surviving single-source phi is a pure rename; copies collapse.
    assert copy_propagate(ssa) >= 0
    assert not all_phis(ssa)
    verify_ssa(ssa)


def test_copy_propagation_rewrites_through_chain():
    f = IrFunction("f")
    a, b, c, d = (f.new_vreg() for _ in range(4))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="la_frame", dst=a, base=("frame", f.new_slot("p", 1))),
        IrInstr(kind="mov", dst=b, a=a),
        IrInstr(kind="mov", dst=c, a=b),
        IrInstr(kind="bin", op="add", dst=d, a=c, b=c),
        IrInstr(kind="mov", dst=v0, a=d),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    assert copy_propagate(ssa) > 0
    add = [i for b in ssa.live_blocks() for i in b.instrs
           if i.kind == "bin"][0]
    root = [i for b in ssa.live_blocks() for i in b.instrs
            if i.kind == "la_frame"][0]
    assert add.a is root.dst and add.b is root.dst
    verify_ssa(ssa)


def test_value_numbering_merges_commutative_duplicates():
    f = IrFunction("f")
    a, b, x, y, z = (f.new_vreg() for _ in range(5))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="la_frame", dst=a, base=("frame", f.new_slot("p", 1))),
        IrInstr(kind="la_frame", dst=b, base=("frame", f.new_slot("q", 1))),
        IrInstr(kind="bin", op="add", dst=x, a=a, b=b),
        IrInstr(kind="bin", op="add", dst=y, a=b, b=a),  # commuted dup
        IrInstr(kind="bin", op="xor", dst=z, a=x, b=y),
        IrInstr(kind="mov", dst=v0, a=z),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    assert value_number(ssa) > 0
    kinds = [i.kind for i in ssa.blocks[0].instrs]
    assert kinds.count("bin") == 2  # y's add became a mov of x
    verify_ssa(ssa)


def test_store_to_load_forwarding_on_unescaped_slot():
    f = IrFunction("f")
    val, out = f.new_vreg(), f.new_vreg()
    slot = f.new_slot("s", 1)
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=val, imm=5),
        IrInstr(kind="store", a=val, base=("frame", slot), imm=0),
        IrInstr(kind="load", dst=out, base=("frame", slot), imm=0),
        IrInstr(kind="mov", dst=v0, a=out),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    assert forward_stores(ssa) == 1
    assert not any(i.kind == "load" for b in ssa.live_blocks()
                   for i in b.instrs)
    verify_ssa(ssa)


def test_no_forwarding_through_escaped_slot():
    """Once ``la_frame`` exposes the address, calls/pointers may write
    the slot: every load must really load."""
    f = IrFunction("f")
    val, addr, out = f.new_vreg(), f.new_vreg(), f.new_vreg()
    slot = f.new_slot("s", 1)
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=val, imm=5),
        IrInstr(kind="la_frame", dst=addr, base=("frame", slot)),
        IrInstr(kind="store", a=val, base=("frame", slot), imm=0),
        IrInstr(kind="call", sym="g", args=[]),
        IrInstr(kind="load", dst=out, base=("frame", slot), imm=0),
        IrInstr(kind="mov", dst=v0, a=out),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    assert forward_stores(ssa) == 0
    assert eliminate_dead_stores(ssa) == 0


def test_dead_store_eliminated():
    f = IrFunction("f")
    val = f.new_vreg()
    slot = f.new_slot("s", 1)
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=val, imm=5),
        IrInstr(kind="store", a=val, base=("frame", slot), imm=0),
        IrInstr(kind="li", dst=v0, imm=0),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    assert eliminate_dead_stores(ssa) == 1
    assert not any(i.kind == "store" for b in ssa.live_blocks()
                   for i in b.instrs)


def test_dce_removes_unused_phi_and_chain():
    ssa = build_ssa(diamond_func())
    # Cut the only use of the phi: return a constant instead.
    join = ssa.block_by_label("join")
    for instr in join.instrs:
        if instr.kind == "mov" and instr.dst is not None \
                and instr.dst.precolored:
            instr.kind = "li"
            instr.imm = 0
            instr.a = None
    assert eliminate_dead(ssa) >= 3  # the phi and both arm defs
    assert not all_phis(ssa)
    verify_ssa(ssa)


def test_licm_hoists_invariant_into_preheader():
    f = loop_func()
    ssa = build_ssa(f)
    blocks_before = len(ssa.live_blocks())
    assert hoist_invariants(ssa) == 1
    assert len(ssa.live_blocks()) == blocks_before + 1  # the preheader
    header = ssa.block_by_label("head")
    assert not any(i.op == "mul" for i in header.instrs)
    muls = [(b.index, i) for b in ssa.live_blocks() for i in b.instrs
            if i.op == "mul"]
    assert len(muls) == 1
    pre_index = muls[0][0]
    assert ssa.blocks[pre_index].succ == [header.index]
    verify_ssa(ssa)
    destroy_ssa(ssa)  # the spliced preheader must linearize cleanly
    assert not all_phis(ssa)


def test_trapping_div_never_hoisted():
    """The loop may execute zero times; a hoisted div could introduce a
    divide-by-zero trap the original program never performs."""
    f = IrFunction("f")
    n, i, a, b, q, t = (f.new_vreg() for _ in range(6))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=n, imm=10),
        IrInstr(kind="li", dst=i, imm=0),
        IrInstr(kind="la_frame", dst=a, base=("frame", f.new_slot("p", 1))),
        IrInstr(kind="la_frame", dst=b, base=("frame", f.new_slot("q", 1))),
        IrInstr(kind="label", sym="head"),
        IrInstr(kind="bin", op="div", dst=q, a=a, b=b),  # may trap
        IrInstr(kind="bini", op="add", dst=i, a=i, imm=1),
        IrInstr(kind="bin", op="slt", dst=t, a=i, b=n),
        IrInstr(kind="br", a=t, sym="head"),
        IrInstr(kind="mov", dst=v0, a=q),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    assert hoist_invariants(ssa) == 0
    header = ssa.block_by_label("head")
    assert any(i.op == "div" for i in header.instrs)


# -- destruction ---------------------------------------------------------------


def test_destroy_produces_linear_ir_with_phi_copies():
    f = diamond_func()
    ssa = build_ssa(f)
    destroy_ssa(ssa)
    assert not all_phis(ssa)
    kinds = [i.kind for i in f.body]
    assert "label" in kinds and "ret" in kinds
    # Phi became copies: one isolation temp per arm plus the join head.
    assert kinds.count("mov") >= 3


def test_verify_linear_catches_duplicate_label():
    f = IrFunction("f")
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="label", sym="a"),
        IrInstr(kind="label", sym="a"),
        IrInstr(kind="li", dst=v0, imm=0),
        IrInstr(kind="ret", args=[v0]),
    ]
    with pytest.raises(CompileError, match="duplicate label"):
        verify_linear(f)


def test_verify_linear_catches_jump_to_unknown_label():
    f = IrFunction("f")
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="jmp", sym="nowhere"),
        IrInstr(kind="li", dst=v0, imm=0),
        IrInstr(kind="ret", args=[v0]),
    ]
    with pytest.raises(CompileError, match="unknown label"):
        verify_linear(f)


def test_verify_linear_catches_br_without_condition():
    f = IrFunction("f")
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="label", sym="a"),
        IrInstr(kind="br", sym="a"),
        IrInstr(kind="li", dst=v0, imm=0),
        IrInstr(kind="ret", args=[v0]),
    ]
    with pytest.raises(CompileError, match="condition"):
        verify_linear(f)


def test_roundtrip_preserves_behaviour_through_codegen():
    """build_ssa + destroy_ssa with *no* passes in between is a no-op
    semantically: the roundtripped program must behave identically."""
    source = """
int collatz(int n) {
    int steps = 0;
    while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps++;
    }
    return steps;
}
int main() { print(collatz(27)); return 0; }
"""
    outs = []
    for level in (0, 2):
        program = compile_source(source, CompilerOptions(opt_level=level))
        vm, _ = run_program(program, max_instructions=100_000)
        assert vm.exit_code == 0
        outs.append(vm.stdout)
    assert outs[0] == outs[1] == "111"


# -- the -O knob ---------------------------------------------------------------


def test_normalize_opt_level_spellings():
    assert normalize_opt_level(None) == 2
    assert normalize_opt_level(None, default=0) == 0
    assert normalize_opt_level(1) == 1
    assert normalize_opt_level("0") == 0
    assert normalize_opt_level("O2") == 2
    assert normalize_opt_level("-O1") == 1


@pytest.mark.parametrize("bad", (3, -1, "fast", "O9", "", "O3", "Ox",
                                 "-O3"))
def test_normalize_opt_level_rejects_garbage(bad):
    with pytest.raises(CompileError, match="accepted levels"):
        normalize_opt_level(bad)


def test_run_pipeline_level0_is_identity():
    f = diamond_func()
    before = [repr(i) for i in f.body]
    stats = run_pipeline(f, 0)
    assert [repr(i) for i in f.body] == before
    assert stats.folded == stats.removed == stats.phis == 0


def test_pipeline_counters_reach_compile_stats():
    source = """
int g;
int main() {
    int k = g;
    int acc = 0;
    int i;
    for (i = 0; i < 20; i++) { acc += k * 3 + 1; }
    print(acc);
    return 0;
}
"""
    o2 = CompileStats()
    compile_source(source, CompilerOptions(opt_level=2), stats=o2)
    assert o2.ssa_phis > 0
    assert o2.ssa_hoisted >= 1
    o1 = CompileStats()
    compile_source(source, CompilerOptions(opt_level=1), stats=o1)
    assert o1.ssa_phis == 0 and o1.ssa_hoisted == 0


def test_optimized_builds_never_larger_than_o0_on_minis():
    """Static size: both optimizing levels beat the naive build.  (O2 may
    be a couple of instructions above O1 — preheader jumps and out-of-SSA
    copies — which the *dynamic* acceptance test more than recovers.)"""
    from repro.workloads import MINIC_PROGRAMS

    for name, (source, _) in sorted(MINIC_PROGRAMS.items())[:3]:
        sizes = {}
        for level in (0, 1, 2):
            stats = CompileStats()
            compile_source(source, CompilerOptions(opt_level=level),
                           stats=stats)
            sizes[level] = stats.instructions
        assert sizes[1] <= sizes[0], (name, sizes)
        assert sizes[2] <= sizes[0], (name, sizes)

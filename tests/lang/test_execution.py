"""End-to-end compiler tests: compile mini-C, run on the VM, check output.

These are the compiler's ground truth — every language feature is verified
by executing real programs.
"""

import pytest

from repro.lang import CompilerOptions, compile_source
from repro.lang.frontend import CompileStats
from repro.vm import run_program


def run_source(source):
    vm, trace = run_program(compile_source(source))
    assert vm.exit_code == 0, f"program exited with {vm.exit_code}"
    return vm.stdout, trace


def expect(source, output):
    stdout, _ = run_source(source)
    assert stdout == output


def test_return_value_becomes_exit_code():
    vm, _ = run_program(compile_source("int main() { return 7; }"))
    assert vm.exit_code == 7


def test_print_int():
    expect("int main() { print(42); return 0; }", "42")


def test_arithmetic_expression():
    expect("int main() { print(2 + 3 * 4 - 6 / 2); return 0; }", "11")


def test_modulo_and_shifts():
    expect("int main() { print(17 % 5); print(1 << 4); print(64 >> 3); "
           "return 0; }", "2168")


def test_bitwise_ops():
    expect("int main() { print(12 & 10); print(12 | 10); print(12 ^ 10); "
           "return 0; }", "8146")


def test_comparisons():
    expect("int main() { print(1 < 2); print(2 <= 2); print(3 > 4); "
           "print(3 >= 4); print(5 == 5); print(5 != 5); return 0; }",
           "110010")


def test_logical_short_circuit():
    # the second operand would divide by zero if evaluated
    expect("int zero() { return 0; } "
           "int main() { int x = 0; print(x != 0 && 10 / x > 1); "
           "print(x == 0 || 10 / x > 1); return 0; }", "01")


def test_unary_minus_and_not():
    expect("int main() { int x = 5; print(-x); print(!x); print(!!x); "
           "return 0; }", "-501")


def test_if_else_chains():
    expect("""
int classify(int x) {
    if (x < 0) return -1;
    else if (x == 0) return 0;
    else return 1;
}
int main() {
    print(classify(-5)); print(classify(0)); print(classify(9));
    return 0;
}
""", "-101")


def test_while_loop():
    expect("int main() { int i = 0; int s = 0; "
           "while (i < 10) { s += i; i++; } print(s); return 0; }", "45")


def test_for_loop_with_break_continue():
    expect("""
int main() {
    int s = 0;
    int i;
    for (i = 0; i < 100; i++) {
        if (i % 2 == 0) continue;
        if (i > 10) break;
        s += i;
    }
    print(s);
    return 0;
}
""", "25")  # 1+3+5+7+9


def test_nested_loops():
    expect("""
int main() {
    int total = 0;
    int i; int j;
    for (i = 0; i < 4; i++) {
        for (j = 0; j < 4; j++) {
            if (j > i) break;
            total++;
        }
    }
    print(total);
    return 0;
}
""", "10")


def test_recursion_fibonacci():
    expect("""
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { print(fib(12)); return 0; }
""", "144")


def test_parity_recursion():
    expect("""
int helper(int n, int parity) {
    if (n == 0) return parity;
    return helper(n - 1, 1 - parity);
}
int main() { print(helper(10, 1)); print(helper(9, 1)); return 0; }
""", "10")


def test_more_than_four_arguments():
    expect("""
int sum6(int a, int b, int c, int d, int e, int f) {
    return a + b + c + d + e + f;
}
int main() { print(sum6(1, 2, 3, 4, 5, 6)); return 0; }
""", "21")


def test_local_arrays():
    expect("""
int main() {
    int a[8];
    int i;
    for (i = 0; i < 8; i++) a[i] = i * i;
    int s = 0;
    for (i = 0; i < 8; i++) s += a[i];
    print(s);
    return 0;
}
""", "140")


def test_global_arrays_and_scalars():
    expect("""
int table[4];
int counter = 10;
int main() {
    table[0] = counter;
    table[3] = table[0] * 2;
    print(table[3] + counter);
    return 0;
}
""", "30")


def test_pointers_and_address_of():
    expect("""
void bump(int *p) { *p = *p + 1; }
int main() {
    int x = 41;
    bump(&x);
    print(x);
    return 0;
}
""", "42")


def test_pointer_arithmetic():
    expect("""
int main() {
    int a[5];
    int i;
    for (i = 0; i < 5; i++) a[i] = i + 1;
    int *p = a + 1;
    print(*p);
    print(p[2]);
    print((a + 4) - p);
    return 0;
}
""", "243")


def test_array_passed_to_function():
    expect("""
int sum(int *arr, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += arr[i];
    return s;
}
int main() {
    int local[4];
    local[0] = 1; local[1] = 2; local[2] = 3; local[3] = 4;
    print(sum(local, 4));
    return 0;
}
""", "10")


def test_float_arithmetic():
    expect("""
int main() {
    float a = 1.5;
    float b = 2.0;
    printfl(a * b + 0.5);
    return 0;
}
""", "3.5")


def test_float_int_mixing():
    expect("""
int main() {
    int i = 7;
    float f = i / 2;    // int division then conversion
    printfl(f);
    printc(' ');
    float g = i / 2.0;  // float division
    printfl(g);
    return 0;
}
""", "3 3.5")


def test_float_comparisons():
    expect("""
int main() {
    float a = 1.5;
    float b = 2.5;
    print(a < b); print(a > b); print(a == a);
    return 0;
}
""", "101")


def test_float_function():
    expect("""
float average(float a, float b) { return (a + b) / 2.0; }
int main() { printfl(average(1.0, 4.0)); return 0; }
""", "2.5")


def test_sbrk_heap():
    expect("""
int main() {
    int *buf = sbrk(40);
    int i;
    for (i = 0; i < 10; i++) buf[i] = i;
    int s = 0;
    for (i = 0; i < 10; i++) s += buf[i];
    print(s);
    return 0;
}
""", "45")


def test_printc():
    expect("int main() { printc('h'); printc('i'); return 0; }", "hi")


def test_global_initializer():
    expect("float pi = 3.5; int main() { printfl(pi); return 0; }", "3.5")


def test_deep_recursion_stack_integrity():
    expect("""
int depth(int n) {
    int marker = n * 3;
    if (n == 0) return 0;
    int below = depth(n - 1);
    if (marker != n * 3) return -999;  // frame corrupted
    return below + 1;
}
int main() { print(depth(50)); return 0; }
""", "50")


def test_spill_heavy_expression():
    """Enough simultaneously-live values to force register spilling."""
    names = [f"v{i}" for i in range(24)]
    decls = "\n".join(f"    int {n} = {i + 1};" for i, n in enumerate(names))
    total = " + ".join(names)
    source = f"""
int use_all(int seed) {{
{decls}
    if (seed > 0) {{ seed = use_all(seed - 1); }}
    return {total} + seed;
}}
int main() {{ print(use_all(2)); return 0; }}
"""
    stats = CompileStats()
    # O1: the SSA pipeline (O2 default) folds the whole constant sum and
    # nothing stays live long enough to spill; this test is about the
    # register allocator, not the mid-end.
    program = compile_source(
        source, CompilerOptions(source_name="spill.mc", opt_level=1),
        stats=stats)
    vm, _ = run_program(program)
    assert vm.exit_code == 0
    # sum(1..24) = 300 added at each of the three recursion levels
    assert vm.stdout == "900"
    assert stats.spilled_vregs > 0


def test_compile_stats_populated():
    stats = CompileStats()
    compile_source("int main() { return 0; }", stats=stats)
    assert stats.functions == 1
    assert stats.instructions > 0


def test_locality_annotations_in_trace():
    _, trace = run_source("""
int glob[8];
int touch(int *p) { return p[0]; }
int main() {
    int local[8];
    local[0] = 5;
    glob[0] = local[0];
    print(touch(local) + touch(glob));
    return 0;
}
""")
    mem = [i for i in trace if i.is_mem]
    assert any(i.local_hint is True for i in mem)    # local array access
    assert any(i.local_hint is False for i in mem)   # global access
    assert any(i.local_hint is None for i in mem)    # via pointer parameter

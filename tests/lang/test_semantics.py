"""Tests for the semantic pass (types, scoping, address-taken tracking)."""

import pytest

from repro.errors import CompileError
from repro.lang.parser import parse
from repro.lang.semantics import analyze


def check(source):
    return analyze(parse(source))


def test_requires_main():
    with pytest.raises(CompileError):
        check("int f() { return 0; }")


def test_undefined_variable():
    with pytest.raises(CompileError):
        check("int main() { return ghost; }")


def test_redefinition_in_same_scope():
    with pytest.raises(CompileError):
        check("int main() { int x; int x; return 0; }")


def test_shadowing_in_inner_scope_ok():
    check("int main() { int x = 1; { int x = 2; } return x; }")


def test_duplicate_function():
    with pytest.raises(CompileError):
        check("int f() { return 0; } int f() { return 1; } "
              "int main() { return 0; }")


def test_void_variable_rejected():
    with pytest.raises(CompileError):
        check("int main() { void x; return 0; }")


def test_call_arity_checked():
    with pytest.raises(CompileError):
        check("int f(int a) { return a; } int main() { return f(); }")


def test_unknown_function():
    with pytest.raises(CompileError):
        check("int main() { return nope(); }")


def test_break_outside_loop():
    with pytest.raises(CompileError):
        check("int main() { break; return 0; }")


def test_return_value_from_void():
    with pytest.raises(CompileError):
        check("void f() { return 1; } int main() { return 0; }")


def test_return_nothing_from_int():
    with pytest.raises(CompileError):
        check("int f() { return; } int main() { return 0; }")


def test_int_float_coercion_allowed():
    check("float f(int a) { return a; } int main() { return f(3); }")
    check("int main() { float x = 1; int y = 1.5; return y; }")


def test_pointer_arithmetic_types():
    check("int main() { int a[4]; int *p = a + 1; return p - a; }")


def test_deref_non_pointer_rejected():
    with pytest.raises(CompileError):
        check("int main() { int x; return *x; }")


def test_index_non_pointer_rejected():
    with pytest.raises(CompileError):
        check("int main() { int x; return x[0]; }")


def test_float_index_rejected():
    with pytest.raises(CompileError):
        check("int main() { int a[4]; float f; return a[f]; }")


def test_mod_requires_ints():
    with pytest.raises(CompileError):
        check("int main() { float x; return x % 2; }")


def test_assign_to_array_rejected():
    with pytest.raises(CompileError):
        check("int main() { int a[4]; int b[4]; a = b; return 0; }")


def test_address_of_literal_rejected():
    with pytest.raises(CompileError):
        check("int main() { return &5; }")


def test_address_taken_flags_needs_memory():
    ast = parse("int main() { int x = 1; int *p = &x; int y = 2; "
                "return *p + y; }")
    analyze(ast)
    decls = [s for s in ast.functions[0].body.stmts
             if type(s).__name__ == "VarDecl"]
    x_decl = next(d for d in decls if d.name == "x")
    y_decl = next(d for d in decls if d.name == "y")
    assert x_decl.symbol.needs_memory
    assert not y_decl.symbol.needs_memory


def test_arrays_always_need_memory():
    ast = parse("int main() { int a[4]; return a[0]; }")
    analyze(ast)
    decl = ast.functions[0].body.stmts[0]
    assert decl.symbol.needs_memory


def test_array_decays_to_pointer():
    ast = parse("int sum(int *p) { return p[0]; } "
                "int main() { int a[4]; return sum(a); }")
    analyze(ast)  # must not raise


def test_expression_types_annotated():
    ast = parse("int main() { float f = 1.5; int i = 2; return i; }")
    analyze(ast)
    decl = ast.functions[0].body.stmts[0]
    assert decl.init.ty.is_float


def test_comparison_yields_int():
    ast = parse("int main() { float a; float b; return a < b; }")
    analyze(ast)
    ret = ast.functions[0].body.stmts[-1]
    assert str(ret.value.ty) == "int"

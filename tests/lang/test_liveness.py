"""Tests for CFG construction and liveness analysis."""

from repro.lang.ir import IrFunction, IrInstr, VReg
from repro.lang.liveness import analyze_liveness, build_cfg, instruction_liveness


def make_func(instrs):
    func = IrFunction("f")
    func.body = instrs
    return func


def test_single_block():
    a = VReg(1)
    blocks = build_cfg(make_func([
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="ret", args=[]),
    ]))
    assert len(blocks) == 1
    assert blocks[0].succ == []


def test_branch_creates_two_successors():
    cond = VReg(1)
    blocks = build_cfg(make_func([
        IrInstr(kind="li", dst=cond, imm=1),
        IrInstr(kind="br", a=cond, sym="L"),
        IrInstr(kind="li", dst=cond, imm=2),
        IrInstr(kind="label", sym="L"),
    ]))
    assert len(blocks) == 3
    assert sorted(blocks[0].succ) == [1, 2]
    assert blocks[1].succ == [2]


def test_jmp_single_successor():
    blocks = build_cfg(make_func([
        IrInstr(kind="jmp", sym="L"),
        IrInstr(kind="li", dst=VReg(1), imm=0),  # unreachable
        IrInstr(kind="label", sym="L"),
    ]))
    assert blocks[0].succ == [2]


def test_liveness_through_straight_line():
    a, b = VReg(1), VReg(2)
    func = make_func([
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="mov", dst=b, a=a),
        IrInstr(kind="ret", args=[b]),
    ])
    blocks = analyze_liveness(func)
    pairs = instruction_liveness(blocks[0])
    # in reverse order: after ret nothing; after mov b live; after li a live
    (_, after_ret), (_, after_mov), (_, after_li) = pairs
    assert after_ret == set()
    assert b in after_mov
    assert a in after_li and b not in after_li


def test_loop_keeps_value_live():
    i, one = VReg(1), VReg(2)
    func = make_func([
        IrInstr(kind="li", dst=i, imm=0),
        IrInstr(kind="li", dst=one, imm=1),
        IrInstr(kind="label", sym="top"),
        IrInstr(kind="bin", op="add", dst=i, a=i, b=one),
        IrInstr(kind="br", a=i, sym="top"),
    ])
    blocks = analyze_liveness(func)
    loop_block = blocks[-1]
    # `one` is read every iteration: live into the loop block.
    assert one in loop_block.live_in
    assert i in loop_block.live_in


def test_dead_value_not_live():
    a, b = VReg(1), VReg(2)
    func = make_func([
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="li", dst=b, imm=2),
        IrInstr(kind="ret", args=[b]),
    ])
    blocks = analyze_liveness(func)
    assert a not in blocks[0].live_in
    assert blocks[0].live_out == set()


def test_branch_both_paths_merge():
    c, x = VReg(1), VReg(2)
    func = make_func([
        IrInstr(kind="li", dst=x, imm=1),
        IrInstr(kind="li", dst=c, imm=0),
        IrInstr(kind="br", a=c, sym="skip"),
        IrInstr(kind="mov", dst=x, a=x),
        IrInstr(kind="label", sym="skip"),
        IrInstr(kind="ret", args=[x]),
    ])
    blocks = analyze_liveness(func)
    # x live across the branch on both paths
    assert x in blocks[0].live_out

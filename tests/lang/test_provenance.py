"""The flow-sensitive provenance pass: locality bits at control-flow
joins, where lowering's linear approximation was unsound.

The historical bug: after ``p = g; if (c) p = x;`` the last-lowered
branch won and ``*p`` kept a hard ``local_hint``, steering a possibly-
global access past the main load/store queue.  These tests pin the fix
at every level — pass unit tests, compiler integration, and dynamic
ground truth from a real run.
"""

from repro.analyze import analyze_source
from repro.lang import CompilerOptions, compile_source
from repro.lang.frontend import CompileStats
from repro.lang.ir import IrFunction, IrInstr, VReg
from repro.lang.provenance import annotate_localities

#: The join-bug probe: p is global on one path, stack on the other.
PROBE = """
int g[4];
int pick;

int main() {
    int x[2];
    int *p;
    x[0] = 1;
    x[1] = 2;
    p = g;
    if (pick) { p = x; }
    *p = 5;
    return x[0] + g[0] + *p;
}
"""


def vreg_accesses(body):
    return [ins for ins in body
            if ins.kind in ("load", "store") and isinstance(ins.base, VReg)]


# ---------------------------------------------------------------------------
# pass-level unit tests
# ---------------------------------------------------------------------------

def test_frame_derived_pointer_becomes_local():
    f = IrFunction("f")
    slot = f.new_slot("x", 2)
    p, v = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("la_frame", dst=p, base=("frame", slot)))
    f.emit(IrInstr("li", dst=v, imm=5))
    # Deliberately mis-annotated: the pass must overwrite it.
    f.emit(IrInstr("store", a=v, base=p, imm=0, locality=False))
    f.emit(IrInstr("ret"))
    annotated, changed = annotate_localities(f)
    assert (annotated, changed) == (1, 1)
    assert vreg_accesses(f.body)[0].locality is True


def test_global_derived_pointer_becomes_nonlocal():
    f = IrFunction("f")
    p, v = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("la_global", dst=p, sym="g"))
    f.emit(IrInstr("load", dst=v, base=p, imm=0, locality=True))
    f.emit(IrInstr("ret"))
    annotate_localities(f)
    assert vreg_accesses(f.body)[0].locality is False


def test_merged_pointer_becomes_ambiguous():
    # p = &g on the fallthrough path, p = &x when the branch is taken:
    # at the join nothing can be proven, so the bit must drop to None.
    f = IrFunction("f")
    slot = f.new_slot("x", 2)
    c, p, v = f.new_vreg(), f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("li", dst=c, imm=1))
    f.emit(IrInstr("la_global", dst=p, sym="g"))
    f.emit(IrInstr("br", a=c, sym="join"))
    f.emit(IrInstr("la_frame", dst=p, base=("frame", slot)))
    f.emit(IrInstr("label", sym="join"))
    f.emit(IrInstr("li", dst=v, imm=5))
    f.emit(IrInstr("store", a=v, base=p, imm=0, locality=True))
    f.emit(IrInstr("ret"))
    _, changed = annotate_localities(f)
    assert changed == 1
    assert vreg_accesses(f.body)[0].locality is None


def test_offsetting_preserves_provenance():
    f = IrFunction("f")
    slot = f.new_slot("x", 4)
    p, q, i, v = (f.new_vreg() for _ in range(4))
    f.emit(IrInstr("la_frame", dst=p, base=("frame", slot)))
    f.emit(IrInstr("li", dst=i, imm=8))
    f.emit(IrInstr("bin", dst=q, a=p, b=i, op="add"))  # q = p + 8
    f.emit(IrInstr("load", dst=v, base=q, imm=0, locality=None))
    f.emit(IrInstr("ret"))
    _, changed = annotate_localities(f)
    assert changed == 1
    assert vreg_accesses(f.body)[0].locality is True


def test_loaded_pointer_stays_ambiguous():
    f = IrFunction("f")
    slot = f.new_slot("x", 1)
    p, v = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("load", dst=p, base=("frame", slot), imm=0))
    f.emit(IrInstr("load", dst=v, base=p, imm=0, locality=None))
    f.emit(IrInstr("ret"))
    _, changed = annotate_localities(f)
    assert changed == 0
    assert vreg_accesses(f.body)[-1].locality is None


def test_call_result_is_ambiguous_except_sbrk():
    f = IrFunction("f")
    v0 = VReg(0, phys=2)  # $v0
    p, v = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("call", sym="@sbrk", dst=p, args=[]))
    f.emit(IrInstr("store", a=v0, base=p, imm=0, locality=None))
    f.emit(IrInstr("call", sym="mystery", dst=v, args=[]))
    f.emit(IrInstr("store", a=v0, base=v, imm=0, locality=None))
    f.emit(IrInstr("ret"))
    annotate_localities(f)
    first, second = vreg_accesses(f.body)
    assert first.locality is False   # sbrk returns a heap address
    assert second.locality is None   # an unknown callee's result


# ---------------------------------------------------------------------------
# compiler integration: the join-bug probe
# ---------------------------------------------------------------------------

def test_probe_compiles_with_ambiguous_merged_access():
    ir_map = {}
    stats = CompileStats()
    compile_source(PROBE, CompilerOptions(source_name="probe.mc"),
                   stats=stats, ir_out=ir_map)
    # Lowering's linear map got the join wrong; the pass must have
    # rewritten at least the merged *p accesses.
    assert stats.localities_refined >= 1
    merged = [ins for ins in vreg_accesses(ir_map["main"].body)
              if ins.locality is None]
    assert merged  # *p stays ambiguous: the hardware predictor decides


def test_probe_verifies_clean_statically_and_dynamically():
    for optimize in (True, False):
        report = analyze_source(PROBE, name="probe.mc", optimize=optimize)
        assert report.ok, [d.render() for d in report.errors]
        assert report.metrics["dynamic.unsound_hint_pcs"] == 0


def test_probe_architectural_result_unchanged():
    from repro.vm.machine import Machine

    program = compile_source(PROBE, CompilerOptions())
    vm = Machine(program)
    vm.run(max_instructions=100_000)
    # x = {1, 2}, g untouched except *p=5 lands in g[0] (pick == 0):
    # x[0] + g[0] + *p = 1 + 5 + 5.
    assert vm.exit_code == 11


def test_every_compile_runs_the_pass():
    # Single-path pointers must still get hard bits (not regress to
    # None): la_frame-only stays True, la_global-only stays False.
    source = """
    int g[2];
    int main() {
        int x[2];
        int *p;
        int *q;
        p = x;
        q = g;
        *p = 1;
        *q = 2;
        return *p + *q;
    }
    """
    ir_map = {}
    compile_source(source, CompilerOptions(source_name="hard.mc"),
                   ir_out=ir_map)
    localities = {ins.locality for ins in vreg_accesses(ir_map["main"].body)}
    assert localities == {True, False}

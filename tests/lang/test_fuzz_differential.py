"""Differential fuzzing: random mini-C expressions vs a Python oracle.

Hypothesis builds random integer expression trees; we render each both as
mini-C (compiled and run on the VM) and as a Python-evaluated model with
C semantics (32-bit wrap-around, truncating division).  Any divergence is
a bug somewhere in lexer/parser/semantics/lowering/optimizer/regalloc/
codegen/assembler/VM.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang import CompilerOptions, compile_source
from repro.utils import to_signed32
from repro.vm import run_program

# -- expression trees ----------------------------------------------------------

_BIN_OPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
            "<", "<=", ">", ">=", "==", "!=")

_VAR_NAMES = ("a", "b", "c")
_VAR_VALUES = {"a": 7, "b": -3, "c": 100}


def _leaf():
    return st.one_of(
        st.integers(min_value=0, max_value=1000).map(lambda v: ("lit", v)),
        st.sampled_from(_VAR_NAMES).map(lambda n: ("var", n)),
    )


def _node(children):
    return st.one_of(
        st.tuples(st.just("bin"), st.sampled_from(_BIN_OPS),
                  children, children),
        st.tuples(st.just("neg"), children),
        st.tuples(st.just("not"), children),
    )


EXPRESSIONS = st.recursive(_leaf(), _node, max_leaves=18)


# -- the oracle ----------------------------------------------------------------

class _Skip(Exception):
    """Raised for expressions we exclude (division by zero)."""


def evaluate(tree) -> int:
    kind = tree[0]
    if kind == "lit":
        return tree[1]
    if kind == "var":
        return _VAR_VALUES[tree[1]]
    if kind == "neg":
        return to_signed32(-evaluate(tree[1]))
    if kind == "not":
        return int(evaluate(tree[1]) == 0)
    _, op, left, right = tree
    a, b = evaluate(left), evaluate(right)
    if op == "+":
        return to_signed32(a + b)
    if op == "-":
        return to_signed32(a - b)
    if op == "*":
        return to_signed32(a * b)
    if op == "/":
        if b == 0:
            raise _Skip()
        q = abs(a) // abs(b)
        return to_signed32(-q if (a < 0) != (b < 0) else q)
    if op == "%":
        if b == 0:
            raise _Skip()
        q = abs(a) // abs(b)
        q = -q if (a < 0) != (b < 0) else q
        return to_signed32(a - q * b)
    if op == "&":
        return to_signed32(a & b)
    if op == "|":
        return to_signed32(a | b)
    if op == "^":
        return to_signed32(a ^ b)
    if op == "<<":
        return to_signed32(a << (b & 31))
    if op == ">>":
        # arithmetic shift: C's signed >>, count masked to 5 bits
        return to_signed32(a >> (b & 31))
    comparisons = {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
                   "==": a == b, "!=": a != b}
    return int(comparisons[op])


def render(tree) -> str:
    kind = tree[0]
    if kind == "lit":
        return str(tree[1])
    if kind == "var":
        return tree[1]
    if kind == "neg":
        return f"(-{render(tree[1])})"
    if kind == "not":
        return f"(!{render(tree[1])})"
    _, op, left, right = tree
    return f"({render(left)} {op} {render(right)})"


# -- the property --------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(EXPRESSIONS)
def test_expression_matches_oracle(tree):
    try:
        expected = evaluate(tree)
    except _Skip:
        return  # division by zero somewhere in the tree
    source = (
        "int main() {\n"
        f"    int a = {_VAR_VALUES['a']};\n"
        f"    int b = {_VAR_VALUES['b']};\n"
        f"    int c = {_VAR_VALUES['c']};\n"
        f"    print({render(tree)});\n"
        "    return 0;\n"
        "}\n"
    )
    program = compile_source(source)
    vm, _ = run_program(program, max_instructions=200_000)
    assert vm.exit_code == 0
    assert int(vm.stdout) == expected, source


@settings(max_examples=25, deadline=None)
@given(EXPRESSIONS)
def test_optimizer_preserves_semantics(tree):
    """Optimized and unoptimized code must print the same value."""
    try:
        evaluate(tree)
    except _Skip:
        return
    source = (
        "int main() { int a = 7; int b = -3; int c = 100; "
        f"print({render(tree)}); return 0; }}"
    )
    outputs = []
    for flag in (True, False):
        vm, _ = run_program(
            compile_source(source, CompilerOptions(optimize=flag)),
            max_instructions=200_000,
        )
        outputs.append(vm.stdout)
    assert outputs[0] == outputs[1], source


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(-100, 100), min_size=1, max_size=12))
def test_array_sum_matches_python(values):
    """Array writes + loop reads round-trip through the whole stack."""
    stores = "\n".join(f"    data[{i}] = {v};"
                       for i, v in enumerate(values))
    source = f"""
int data[16];
int main() {{
{stores}
    int total = 0;
    int i;
    for (i = 0; i < {len(values)}; i++) total += data[i];
    print(total);
    return 0;
}}
"""
    vm, _ = run_program(compile_source(source), max_instructions=500_000)
    assert int(vm.stdout) == sum(values)

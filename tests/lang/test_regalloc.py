"""Tests for the Chaitin-Briggs register allocator."""

from repro.isa.registers import Reg
from repro.lang.ir import IrFunction, IrInstr, VReg
from repro.lang.regalloc import INT_PALETTE, allocate, build_graphs


def test_independent_values_any_colors():
    func = IrFunction("f")
    a, b = func.new_vreg(), func.new_vreg()
    func.body = [
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="ret", args=[a]),
        IrInstr(kind="li", dst=b, imm=2),
        IrInstr(kind="ret", args=[b]),
    ]
    result = allocate(func)
    assert result.color(a) in INT_PALETTE
    assert result.color(b) in INT_PALETTE
    assert result.spilled == 0


def test_interfering_values_get_distinct_colors():
    func = IrFunction("f")
    regs = [func.new_vreg() for _ in range(5)]
    body = [IrInstr(kind="li", dst=r, imm=i) for i, r in enumerate(regs)]
    # one op reading all of them keeps them simultaneously live
    body.append(IrInstr(kind="ret", args=list(regs)))
    func.body = body
    result = allocate(func)
    colors = [result.color(r) for r in regs]
    assert len(set(colors)) == len(colors)


def _high_pressure_function(extra=4):
    """Define K+extra values, then consume them pairwise at the end.

    Every value stays live until the consumption chain, so more values are
    simultaneously live than registers exist — but each instruction has at
    most two operands, as real code does.
    """
    func = IrFunction("f")
    count = len(INT_PALETTE) + extra
    regs = [func.new_vreg() for _ in range(count)]
    body = [IrInstr(kind="li", dst=r, imm=i) for i, r in enumerate(regs)]
    acc = regs[0]
    for reg in regs[1:]:
        new_acc = func.new_vreg()
        body.append(IrInstr(kind="bin", op="add", dst=new_acc, a=acc, b=reg))
        acc = new_acc
    body.append(IrInstr(kind="ret", args=[acc]))
    func.body = body
    return func, regs


def test_more_values_than_registers_spills():
    func, _ = _high_pressure_function()
    result = allocate(func)
    assert result.spilled > 0
    assert any(slot.is_spill for slot in func.slots)
    assert result.spill_rounds >= 1


def test_spill_inserts_frame_traffic():
    func, _ = _high_pressure_function(extra=2)
    allocate(func)
    kinds = [i.kind for i in func.body]
    assert "store" in kinds and "load" in kinds
    spill_ops = [i for i in func.body if i.kind in ("store", "load")]
    assert all(op.locality is True for op in spill_ops)


def test_call_clobbers_force_callee_saved():
    """A value live across a call must avoid caller-saved registers."""
    func = IrFunction("f", has_calls=True)
    v = func.new_vreg()
    func.body = [
        IrInstr(kind="li", dst=v, imm=1),
        IrInstr(kind="call", sym="g", args=[]),
        IrInstr(kind="ret", args=[v]),
    ]
    result = allocate(func)
    from repro.isa.registers import CALLER_SAVED

    assert result.color(v) not in {int(r) for r in CALLER_SAVED}


def test_precolored_interference_respected():
    """A value live while $a0 is live cannot be colored $a0."""
    func = IrFunction("f")
    v = func.new_vreg()
    a0 = VReg(0, phys=int(Reg.A0))
    func.body = [
        IrInstr(kind="li", dst=v, imm=1),
        IrInstr(kind="mov", dst=a0, a=v),
        IrInstr(kind="call", sym="g", args=[a0]),
        IrInstr(kind="ret", args=[v]),
    ]
    result = allocate(func)
    assert result.color(v) != int(Reg.A0)


def test_float_and_int_classes_separate():
    func = IrFunction("f")
    i = func.new_vreg()
    f = func.new_vreg(is_float=True)
    func.body = [
        IrInstr(kind="li", dst=i, imm=1),
        IrInstr(kind="lfi", dst=f, imm=1.5),
        IrInstr(kind="ret", args=[i, f]),
    ]
    result = allocate(func)
    assert result.color(i) < 32
    assert result.color(f) >= 32


def test_used_callee_saved_reported():
    func = IrFunction("f", has_calls=True)
    v = func.new_vreg()
    func.body = [
        IrInstr(kind="li", dst=v, imm=1),
        IrInstr(kind="call", sym="g", args=[]),
        IrInstr(kind="ret", args=[v]),
    ]
    result = allocate(func)
    assert result.color(v) in result.used_callee_saved()


def test_build_graphs_mov_does_not_self_interfere():
    func = IrFunction("f")
    a, b = func.new_vreg(), func.new_vreg()
    func.body = [
        IrInstr(kind="li", dst=a, imm=1),
        IrInstr(kind="mov", dst=b, a=a),
        IrInstr(kind="ret", args=[b]),
    ]
    int_graph, _ = build_graphs(func)
    assert b not in int_graph.adj.get(a, set())

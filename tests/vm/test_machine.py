"""Functional tests of the VM's instruction semantics.

Each test assembles a fragment, runs it, and checks the printed results —
the assembler and VM are exercised together, which is how every downstream
user consumes them.
"""

import pytest

from repro.asm import assemble
from repro.errors import VmError
from repro.vm import run_program
from repro.vm.machine import Machine


def run_asm(body, max_instructions=1_000_000):
    source = "main:\n" + body + "\n    li $a0, 0\n    syscall 0\n"
    vm, trace = run_program(assemble(source),
                            max_instructions=max_instructions)
    return vm, trace


def print_reg(reg):
    return f"    move $a0, {reg}\n    syscall 1\n    li $a0, 32\n    syscall 2\n"


def test_arithmetic():
    vm, _ = run_asm(
        "    li $t0, 7\n"
        "    li $t1, -3\n"
        "    add $t2, $t0, $t1\n"
        "    sub $t3, $t0, $t1\n"
        "    mul $t4, $t0, $t1\n"
        + print_reg("$t2") + print_reg("$t3") + print_reg("$t4")
    )
    assert vm.stdout.split() == ["4", "10", "-21"]


def test_division_truncates_toward_zero():
    vm, _ = run_asm(
        "    li $t0, -7\n"
        "    li $t1, 2\n"
        "    div $t2, $t0, $t1\n"
        "    rem $t3, $t0, $t1\n"
        + print_reg("$t2") + print_reg("$t3")
    )
    assert vm.stdout.split() == ["-3", "-1"]


def test_division_by_zero_faults():
    source = "main:\n    li $t0, 1\n    div $t1, $t0, $zero\n"
    vm = Machine(assemble(source))
    with pytest.raises(VmError):
        vm.run()


def test_logic_and_shifts():
    vm, _ = run_asm(
        "    li $t0, 12\n"
        "    li $t1, 10\n"
        "    and $t2, $t0, $t1\n"
        "    or  $t3, $t0, $t1\n"
        "    xor $t4, $t0, $t1\n"
        "    sll $t5, $t0, 2\n"
        "    sra $t6, $t0, 1\n"
        + print_reg("$t2") + print_reg("$t3") + print_reg("$t4")
        + print_reg("$t5") + print_reg("$t6")
    )
    assert vm.stdout.split() == ["8", "14", "6", "48", "6"]


def test_srl_is_logical():
    vm, _ = run_asm(
        "    li $t0, -4\n"
        "    srl $t1, $t0, 1\n"
        + print_reg("$t1")
    )
    assert int(vm.stdout.split()[0]) == (0xFFFFFFFC >> 1)


def test_slt_family():
    vm, _ = run_asm(
        "    li $t0, -5\n"
        "    li $t1, 3\n"
        "    slt  $t2, $t0, $t1\n"
        "    slt  $t3, $t1, $t0\n"
        "    sltu $t4, $t0, $t1\n"  # -5 unsigned is huge
        "    slti $t5, $t0, 0\n"
        + print_reg("$t2") + print_reg("$t3") + print_reg("$t4")
        + print_reg("$t5")
    )
    assert vm.stdout.split() == ["1", "0", "0", "1"]


def test_zero_register_immutable():
    vm, _ = run_asm(
        "    li $zero, 99\n"
        + print_reg("$zero")
    )
    assert vm.stdout.split() == ["0"]


def test_lui():
    vm, _ = run_asm("    lui $t0, 2\n" + print_reg("$t0"))
    assert vm.stdout.split() == [str(2 << 16)]


def test_memory_word_ops():
    vm, _ = run_asm(
        "    li $t0, 1234\n"
        "    addi $sp, $sp, -8\n"
        "    sw $t0, 4($sp)\n"
        "    lw $t1, 4($sp)\n"
        "    addi $sp, $sp, 8\n"
        + print_reg("$t1")
    )
    assert vm.stdout.split() == ["1234"]


def test_branches():
    vm, _ = run_asm(
        "    li $t0, 3\n"
        "    li $t1, 0\n"
        "loop:\n"
        "    add $t1, $t1, $t0\n"
        "    addi $t0, $t0, -1\n"
        "    bgtz $t0, loop\n"
        + print_reg("$t1")
    )
    assert vm.stdout.split() == ["6"]


def test_call_and_return():
    source = """
main:
    li   $a0, 5
    jal  double
    move $a0, $v0
    syscall 1
    li   $a0, 0
    syscall 0
double:
    add  $v0, $a0, $a0
    jr   $ra
"""
    vm, trace = run_program(assemble(source))
    assert vm.stdout == "10"
    assert trace.stats.calls == 1


def test_float_ops():
    vm, _ = run_asm(
        "    li $t0, 3\n"
        "    cvt.s.w $f1, $t0\n"
        "    li $t1, 2\n"
        "    cvt.s.w $f2, $t1\n"
        "    div.s $f3, $f1, $f2\n"
        "    mov.s $f12, $f3\n"
        "    syscall 4\n"
    )
    assert vm.stdout == "1.5"


def test_float_compare():
    vm, _ = run_asm(
        "    li $t0, 1\n"
        "    cvt.s.w $f1, $t0\n"
        "    li $t1, 2\n"
        "    cvt.s.w $f2, $t1\n"
        "    c.lt.s $t2, $f1, $f2\n"
        "    c.eq.s $t3, $f1, $f2\n"
        + print_reg("$t2") + print_reg("$t3")
    )
    assert vm.stdout.split() == ["1", "0"]


def test_cvt_truncates():
    vm, _ = run_asm(
        "    li $t0, 7\n"
        "    cvt.s.w $f1, $t0\n"
        "    li $t1, 2\n"
        "    cvt.s.w $f2, $t1\n"
        "    div.s $f3, $f1, $f2\n"
        "    cvt.w.s $t2, $f3\n"
        + print_reg("$t2")
    )
    assert vm.stdout.split() == ["3"]


def test_sbrk_allocates_increasing():
    vm, _ = run_asm(
        "    li $a0, 16\n"
        "    syscall 3\n"
        "    move $t0, $v0\n"
        "    li $a0, 16\n"
        "    syscall 3\n"
        "    sub $t1, $v0, $t0\n"
        + print_reg("$t1")
    )
    assert vm.stdout.split() == ["16"]


def test_instruction_budget_stops_run():
    source = "main:\nloop:\n    j loop\n"
    vm = Machine(assemble(source))
    code = vm.run(max_instructions=100)
    assert code == -1
    assert vm.instructions_executed == 100


def test_trace_records_locality():
    _, trace = run_asm(
        "    addi $sp, $sp, -4\n"
        "    sw $t0, 0($sp)\n"
        "    lw $t1, 0($sp)\n"
        "    addi $sp, $sp, 4\n"
    )
    mem = [i for i in trace if i.is_mem]
    assert len(mem) == 2
    assert all(i.is_local and i.sp_based for i in mem)


def test_frame_size_measured():
    source = """
main:
    jal f
    li $a0, 0
    syscall 0
f:
    addi $sp, $sp, -16
    sw   $t0, 0($sp)
    addi $sp, $sp, 16
    jr   $ra
"""
    _, trace = run_program(assemble(source))
    assert trace.stats.frame_sizes.max() == 4  # 16 bytes = 4 words


def test_trace_can_be_disabled():
    vm, trace = run_program(assemble("main:\n    li $a0, 0\n    syscall 0\n"),
                            trace=False)
    assert trace is None
    assert vm.exit_code == 0

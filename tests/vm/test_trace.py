"""Tests for repro.vm.trace."""

from repro.isa.opcodes import FuClass
from repro.vm.trace import DynInst, NO_REG, Trace, TraceStats


def _load(addr=0x7FFFE000, local=True, hint=True):
    return DynInst(int(FuClass.LOAD), dst=8, srcs=(29,), addr=addr, size=4,
                   local_hint=hint, is_local=local, sp_based=local)


def _store(addr=0x10000000, local=False):
    return DynInst(int(FuClass.STORE), srcs=(5, 9), addr=addr, size=4,
                   local_hint=local, is_local=local)


def test_dyninst_kind_predicates():
    load = _load()
    store = _store()
    alu = DynInst(int(FuClass.IALU), dst=8, srcs=(9,))
    assert load.is_load and load.is_mem and not load.is_store
    assert store.is_store and store.is_mem and not store.is_load
    assert not alu.is_mem


def test_stats_counts():
    stats = TraceStats()
    stats.observe(_load(local=True))
    stats.observe(_load(local=False, hint=False))
    stats.observe(_store(local=False))
    stats.observe(DynInst(int(FuClass.IALU), dst=8))
    assert stats.instructions == 4
    assert stats.loads == 2
    assert stats.stores == 1
    assert stats.local_loads == 1
    assert stats.local_stores == 0
    assert stats.mem_refs == 3
    assert stats.local_refs == 1


def test_stats_fractions():
    stats = TraceStats()
    for _ in range(3):
        stats.observe(_load())
    stats.observe(DynInst(int(FuClass.IALU), dst=8))
    assert stats.load_fraction == 0.75
    assert stats.local_fraction == 1.0


def test_stats_ambiguous_counted():
    stats = TraceStats()
    stats.observe(DynInst(int(FuClass.LOAD), dst=8, addr=4, size=4,
                          local_hint=None, is_local=True))
    assert stats.ambiguous_refs == 1


def test_empty_stats_fractions_are_zero():
    stats = TraceStats()
    assert stats.local_fraction == 0.0
    assert stats.load_fraction == 0.0


def test_trace_append_updates_stats():
    trace = Trace("t")
    trace.append(_load())
    trace.extend([_store(), _store()])
    assert len(trace) == 3
    assert trace.stats.stores == 2
    assert list(trace)[0].is_load


def test_no_reg_sentinel():
    inst = DynInst(int(FuClass.STORE), srcs=(1,), addr=4, size=4)
    assert inst.dst == NO_REG

"""Tests for the VM's sparse memory, including a model-based property."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import VmError
from repro.vm.memory import SparseMemory


def test_zero_initialised():
    mem = SparseMemory()
    assert mem.load_word(0x1000) == 0
    assert mem.load_byte(0x1003) == 0


def test_word_roundtrip():
    mem = SparseMemory()
    mem.store_word(0x100, 12345)
    assert mem.load_word(0x100) == 12345


def test_word_wraps_to_signed32():
    mem = SparseMemory()
    mem.store_word(0x100, 0xFFFFFFFF)
    assert mem.load_word(0x100) == -1
    mem.store_word(0x100, 2**31)
    assert mem.load_word(0x100) == -(2**31)


def test_float_storage():
    mem = SparseMemory()
    mem.store_word(0x100, 2.5)
    assert mem.load_word(0x100) == 2.5


def test_unaligned_word_access_rejected():
    mem = SparseMemory()
    with pytest.raises(VmError):
        mem.load_word(0x101)
    with pytest.raises(VmError):
        mem.store_word(0x102, 1)


def test_negative_address_rejected():
    mem = SparseMemory()
    with pytest.raises(VmError):
        mem.load_word(-4)


def test_byte_access_within_word():
    mem = SparseMemory()
    mem.store_word(0x100, 0x01020304)
    assert mem.load_byte(0x100) == 0x04
    assert mem.load_byte(0x101) == 0x03
    assert mem.load_byte(0x103) == 0x01


def test_byte_store_updates_one_byte():
    mem = SparseMemory()
    mem.store_word(0x100, 0x01020304)
    mem.store_byte(0x101, 0xAB)
    assert mem.load_word(0x100) == 0x0102AB04


def test_byte_sign_extension():
    mem = SparseMemory()
    mem.store_byte(0x100, 0xFF)
    assert mem.load_byte(0x100) == -1


def test_byte_access_to_float_word_rejected():
    mem = SparseMemory()
    mem.store_word(0x100, 1.5)
    with pytest.raises(VmError):
        mem.load_byte(0x100)
    with pytest.raises(VmError):
        mem.store_byte(0x101, 1)


def test_footprint_and_clear():
    mem = SparseMemory()
    mem.store_word(0x100, 1)
    mem.store_word(0x200, 2)
    assert mem.footprint_words() == 2
    mem.clear()
    assert mem.footprint_words() == 0
    assert mem.load_word(0x100) == 0


@given(st.lists(
    st.tuples(st.integers(0, 255).map(lambda a: a * 4),
              st.integers(-(2**31), 2**31 - 1)),
    min_size=1, max_size=100,
))
def test_memory_matches_dict_model(writes):
    """Property: SparseMemory behaves like a plain dict of words."""
    mem = SparseMemory()
    model = {}
    for addr, value in writes:
        mem.store_word(addr, value)
        model[addr] = value
    for addr, value in model.items():
        assert mem.load_word(addr) == value


@given(st.lists(st.tuples(st.integers(0, 1023), st.integers(0, 255)),
                min_size=1, max_size=100))
def test_byte_writes_match_bytearray_model(writes):
    """Property: byte stores/loads behave like a bytearray."""
    mem = SparseMemory()
    model = bytearray(1024)
    for addr, value in writes:
        mem.store_byte(addr, value)
        model[addr] = value
    for addr, _ in writes:
        expected = model[addr] - 256 if model[addr] >= 128 else model[addr]
        assert mem.load_byte(addr) == expected

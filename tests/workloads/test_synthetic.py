"""Calibration tests: generated traces must match the paper's statistics."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.spec import ALL_PROGRAMS, INT_PROGRAMS, get_spec
from repro.workloads.synthetic import SyntheticGenerator, generate_trace

LENGTH = 60_000


@pytest.fixture(scope="module")
def traces():
    return {name: generate_trace(get_spec(name), LENGTH, seed=3)
            for name in ALL_PROGRAMS}


def test_requested_length_respected(traces):
    for trace in traces.values():
        assert LENGTH <= len(trace) <= LENGTH + 40  # bursts may overshoot


def test_load_store_fractions_match_calibration(traces):
    """Figure 2 calibration: within 15% relative tolerance."""
    for name, trace in traces.items():
        spec = get_spec(name)
        stats = trace.stats
        assert stats.load_fraction == pytest.approx(spec.load_frac,
                                                    rel=0.15)
        assert stats.store_fraction == pytest.approx(spec.store_frac,
                                                     rel=0.20)


def test_local_fraction_matches_calibration(traces):
    for name, trace in traces.items():
        spec = get_spec(name)
        assert trace.stats.local_fraction == pytest.approx(
            spec.local_mem_frac, rel=0.2, abs=0.03
        )


def test_frame_sizes_small(traces):
    """Figure 3: dynamic frames average a few words.

    126.gcc is the calibrated exception: its large-frame tail (which drives
    the paper's Figure 6 LVC miss rates) pulls its mean up.
    """
    for name in INT_PROGRAMS:
        mean = traces[name].stats.frame_sizes.mean()
        bound = 40.0 if name == "126.gcc" else 12.0
        assert 1.0 <= mean <= bound, name


def test_gcc_has_large_frame_tail(traces):
    gcc = traces["126.gcc"].stats.frame_sizes
    li = traces["130.li"].stats.frame_sizes
    assert gcc.max() > 100
    assert gcc.percentile(0.99) > li.percentile(0.99)


def test_call_depths_match_spec(traces):
    for name, trace in traces.items():
        assert trace.stats.max_call_depth <= get_spec(name).max_depth + 1


def test_deterministic_per_seed():
    spec = get_spec("130.li")
    a = generate_trace(spec, 5000, seed=9)
    b = generate_trace(spec, 5000, seed=9)
    assert len(a) == len(b)
    assert all(x.fu == y.fu and x.addr == y.addr
               for x, y in zip(a.insts, b.insts))


def test_seeds_differ():
    spec = get_spec("130.li")
    a = generate_trace(spec, 5000, seed=1)
    b = generate_trace(spec, 5000, seed=2)
    assert any(x.addr != y.addr for x, y in zip(a.insts, b.insts))


def test_local_refs_in_stack_region(traces):
    from repro.isa.program import STACK_BASE, STACK_LIMIT

    for trace in traces.values():
        for inst in trace.insts[:2000]:
            if inst.is_mem and inst.is_local:
                assert STACK_LIMIT <= inst.addr < STACK_BASE


def test_global_refs_below_stack(traces):
    for trace in traces.values():
        for inst in trace.insts[:2000]:
            if inst.is_mem and not inst.is_local:
                assert inst.addr < 0x20000000


def test_sp_based_refs_have_frame_keys(traces):
    trace = traces["147.vortex"]
    for inst in trace.insts[:3000]:
        if inst.is_mem and inst.sp_based:
            assert inst.frame_id > 0 or inst.offset >= 0


def test_ambiguous_fraction_small(traces):
    """Section 2.2.3: <1% of references are ambiguous."""
    for trace in traces.values():
        stats = trace.stats
        if stats.mem_refs:
            assert stats.ambiguous_refs / stats.mem_refs < 0.02


def test_fp_programs_emit_fp_ops(traces):
    from repro.isa.opcodes import FuClass

    fp_ops = sum(1 for i in traces["102.swim"].insts
                 if i.fu in (int(FuClass.FADD), int(FuClass.FMUL)))
    assert fp_ops > 0.1 * LENGTH


def test_integer_programs_no_fp(traces):
    from repro.isa.opcodes import FuClass

    fp_ops = sum(1 for i in traces["130.li"].insts
                 if i.fu in (int(FuClass.FADD), int(FuClass.FMUL)))
    assert fp_ops == 0


def test_bad_length_rejected():
    with pytest.raises(WorkloadError):
        SyntheticGenerator(get_spec("130.li"), 0)

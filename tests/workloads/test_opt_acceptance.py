"""PR acceptance gate for the SSA mid-end: on every mini workload the
-O2 build must reach the *bit-identical* architectural result of the -O0
build (exit code, stdout, final global memory) while executing strictly
fewer dynamic instructions."""

from __future__ import annotations

import pytest

from repro.fuzz.oracles import check_opt
from repro.lang import CompilerOptions, compile_source
from repro.vm.machine import Machine
from repro.workloads import MINIC_PROGRAMS


def _run(source: str, level: int) -> Machine:
    program = compile_source(source, CompilerOptions(opt_level=level))
    vm = Machine(program, trace=False)
    vm.run(max_instructions=5_000_000)
    return vm


@pytest.mark.parametrize("name", sorted(MINIC_PROGRAMS))
def test_o2_identical_state_and_strictly_fewer_instructions(name):
    source = MINIC_PROGRAMS[name][0]
    vm_o0 = _run(source, 0)
    vm_o2 = _run(source, 2)
    assert check_opt(vm_o2, vm_o0) == []
    assert vm_o2.instructions_executed < vm_o0.instructions_executed, (
        f"{name}: O2 executed {vm_o2.instructions_executed}, "
        f"O0 {vm_o0.instructions_executed}")


def test_mini_suite_is_at_least_eight_workloads():
    """The strict-improvement claim must quantify over >= 8 programs."""
    assert len(MINIC_PROGRAMS) >= 8

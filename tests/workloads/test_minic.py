"""Tests for the mini-C benchmark programs."""

import pytest

from repro.errors import WorkloadError
from repro.lang import compile_source
from repro.vm import run_program
from repro.workloads.minic import MINIC_PROGRAMS, minic_source


@pytest.mark.parametrize("name", sorted(MINIC_PROGRAMS))
def test_program_compiles_and_exits_cleanly(name):
    program = compile_source(minic_source(name))
    vm, trace = run_program(program, max_instructions=2_000_000)
    assert vm.exit_code == 0, f"{name} exited with {vm.exit_code}"
    assert vm.stdout.strip(), f"{name} printed no checksum"
    assert trace.stats.instructions > 1000


def test_expected_checksums_stable():
    """Pin the checksums: any compiler/VM regression changes them."""
    expected = {}
    for name in sorted(MINIC_PROGRAMS):
        vm, _ = run_program(compile_source(minic_source(name)),
                            max_instructions=2_000_000)
        expected[name] = vm.stdout
    # run twice: outputs must be identical (deterministic toolchain)
    for name in sorted(MINIC_PROGRAMS):
        vm, _ = run_program(compile_source(minic_source(name)),
                            max_instructions=2_000_000)
        assert vm.stdout == expected[name]


def test_qsort_sorts():
    vm, _ = run_program(compile_source(minic_source("mini.qsort")),
                        max_instructions=2_000_000)
    assert vm.stdout.strip() != "-1"  # -1 means a sortedness check failed


def test_hashdb_has_call_heavy_local_traffic():
    _, trace = run_program(compile_source(minic_source("mini.hashdb")),
                           max_instructions=2_000_000)
    assert trace.stats.calls > 500
    assert trace.stats.local_fraction > 0.3


def test_treesearch_recursion_depth():
    _, trace = run_program(compile_source(minic_source("mini.treesearch")),
                           max_instructions=2_000_000)
    assert trace.stats.max_call_depth >= 6


def test_stencil_is_float_heavy():
    from repro.isa.opcodes import FuClass

    _, trace = run_program(compile_source(minic_source("mini.stencil")),
                           max_instructions=2_000_000)
    fp = sum(1 for i in trace if i.fu in (int(FuClass.FADD),
                                          int(FuClass.FMUL),
                                          int(FuClass.FDIV)))
    assert fp > 1000


def test_unknown_program_rejected():
    with pytest.raises(WorkloadError):
        minic_source("mini.nope")

"""Tests for the workload registry."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.spec import (
    ALL_PROGRAMS,
    FP_PROGRAMS,
    INT_PROGRAMS,
    get_spec,
)


def test_paper_program_set():
    """Table 2: eight integer and four floating-point programs."""
    assert len(ALL_PROGRAMS) == 12
    assert len(INT_PROGRAMS) == 8
    assert len(FP_PROGRAMS) == 4
    assert set(INT_PROGRAMS) | set(FP_PROGRAMS) == set(ALL_PROGRAMS)


def test_paper_instruction_counts():
    """Table 2 dynamic instruction counts (in millions)."""
    expected = {
        "099.go": 541, "124.m88ksim": 250, "126.gcc": 220,
        "129.compress": 293, "130.li": 434, "132.ijpeg": 621,
        "134.perl": 525, "147.vortex": 284, "101.tomcatv": 549,
        "102.swim": 473, "103.su2cor": 676, "107.mgrid": 684,
    }
    for name, minst in expected.items():
        assert get_spec(name).paper_minst == minst


def test_unknown_workload():
    with pytest.raises(WorkloadError):
        get_spec("999.nonsense")


def test_default_length_scaled_from_paper():
    spec = get_spec("126.gcc")
    assert spec.default_length == 220 * 1_000_000 // 4000


def test_vortex_is_most_local():
    """Figure 2: 147.vortex has ~71% local refs, the suite maximum."""
    vortex = get_spec("147.vortex").local_mem_frac
    assert vortex == max(get_spec(p).local_mem_frac for p in ALL_PROGRAMS)
    assert vortex > 0.6


def test_compress_is_least_local_integer():
    compress = get_spec("129.compress").local_mem_frac
    assert compress == min(get_spec(p).local_mem_frac for p in INT_PROGRAMS)


def test_average_local_fraction_near_paper():
    """Figure 2: local refs average ~36% of memory references."""
    avg = sum(get_spec(p).local_mem_frac for p in ALL_PROGRAMS) / 12
    assert 0.25 < avg < 0.45


def test_fp_programs_poorly_interleaved():
    """Section 4.3: FP local/non-local accesses are poorly interleaved."""
    for name in FP_PROGRAMS:
        assert get_spec(name).interleave < 0.5
    for name in INT_PROGRAMS:
        assert get_spec(name).interleave == 1.0


def test_mem_frac_reasonable():
    for name in ALL_PROGRAMS:
        spec = get_spec(name)
        assert 0.2 <= spec.mem_frac <= 0.5

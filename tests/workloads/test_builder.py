"""Tests for trace building and caching."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.builder import build_trace, clear_trace_cache


def test_synthetic_by_name():
    trace = build_trace("130.li", length=5000, seed=2)
    assert trace.name == "130.li"
    assert len(trace) >= 5000


def test_cache_returns_same_object():
    a = build_trace("130.li", length=5000, seed=2)
    b = build_trace("130.li", length=5000, seed=2)
    assert a is b


def test_cache_key_includes_length_and_seed():
    a = build_trace("130.li", length=5000, seed=2)
    b = build_trace("130.li", length=6000, seed=2)
    c = build_trace("130.li", length=5000, seed=3)
    assert a is not b and a is not c


def test_clear_cache():
    a = build_trace("130.li", length=5000, seed=2)
    clear_trace_cache()
    b = build_trace("130.li", length=5000, seed=2)
    assert a is not b


def test_minic_by_name():
    trace = build_trace("mini.compress", length=50_000)
    assert trace.name == "mini.compress"
    assert 0 < len(trace) <= 50_000


def test_unknown_names_rejected():
    with pytest.raises(WorkloadError):
        build_trace("mini.ghost")
    with pytest.raises(WorkloadError):
        build_trace("777.ghost")


def test_opt_suffix_split():
    from repro.workloads.builder import split_opt_suffix

    assert split_opt_suffix("mini.qsort") == ("mini.qsort", None)
    assert split_opt_suffix("mini.qsort@O0") == ("mini.qsort", 0)
    assert split_opt_suffix("mini.qsort@o2") == ("mini.qsort", 2)
    for bad in ("mini.qsort@", "mini.qsort@O3", "mini.qsort@2",
                "mini.qsort@Ox"):
        with pytest.raises(WorkloadError):
            split_opt_suffix(bad)


def test_opt_levels_are_distinct_cache_entries():
    """``@O0`` and ``@O2`` streams must never collide in the memo (the
    level rides in the name, so the name must stay on the trace too)."""
    o0 = build_trace("mini.linkedlist@O0", length=100_000)
    o2 = build_trace("mini.linkedlist@O2", length=100_000)
    bare = build_trace("mini.linkedlist", length=100_000)
    assert o0.name == "mini.linkedlist@O0"
    assert o2.name == "mini.linkedlist@O2"
    assert o0 is not o2 and o2 is not bare
    assert len(o0) > len(o2)  # the optimizer shortened the stream
    assert len(bare) == len(o2)  # the bare name is the default, O2


def test_bad_opt_suffix_rejected_by_builder():
    with pytest.raises(WorkloadError):
        build_trace("mini.linkedlist@O7")

"""Tests for trace building and caching."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.builder import build_trace, clear_trace_cache


def test_synthetic_by_name():
    trace = build_trace("130.li", length=5000, seed=2)
    assert trace.name == "130.li"
    assert len(trace) >= 5000


def test_cache_returns_same_object():
    a = build_trace("130.li", length=5000, seed=2)
    b = build_trace("130.li", length=5000, seed=2)
    assert a is b


def test_cache_key_includes_length_and_seed():
    a = build_trace("130.li", length=5000, seed=2)
    b = build_trace("130.li", length=6000, seed=2)
    c = build_trace("130.li", length=5000, seed=3)
    assert a is not b and a is not c


def test_clear_cache():
    a = build_trace("130.li", length=5000, seed=2)
    clear_trace_cache()
    b = build_trace("130.li", length=5000, seed=2)
    assert a is not b


def test_minic_by_name():
    trace = build_trace("mini.compress", length=50_000)
    assert trace.name == "mini.compress"
    assert 0 < len(trace) <= 50_000


def test_unknown_names_rejected():
    with pytest.raises(WorkloadError):
        build_trace("mini.ghost")
    with pytest.raises(WorkloadError):
        build_trace("777.ghost")

"""Tests for the window-sizing ablation."""

import pytest

from repro.experiments import ablation_window


def test_rob_sweep_structure():
    rows = ablation_window.run_rob(scale=0.08, programs=("130.li",),
                                   sizes=(64, 128))
    row = rows["130.li"]
    assert row[128] == pytest.approx(1.0)
    assert row[64] < 1.0


def test_lvaq_sweep_structure():
    rows = ablation_window.run_lvaq(scale=0.08, programs=("130.li",),
                                    sizes=(16, 64))
    row = rows["130.li"]
    assert row[64] == pytest.approx(1.0)
    assert row[16] <= 1.0


def test_render_combined():
    rob = ablation_window.run_rob(scale=0.08, programs=("130.li",),
                                  sizes=(64, 128))
    lvaq = ablation_window.run_lvaq(scale=0.08, programs=("130.li",),
                                    sizes=(16, 64))
    text = ablation_window.render(rob, lvaq)
    assert "ROB size" in text
    assert "LVAQ size" in text


def test_registered_in_runner():
    from repro.experiments.runner import EXPERIMENTS

    assert "ablation-window" in EXPERIMENTS

"""Smoke and shape tests for the experiment harness at a reduced scale.

These run every figure/table module end to end on two or three programs
with short traces, asserting structure and basic sanity; the full paper
shapes are covered by the benchmark harness and the integration tests.
"""

import pytest

from repro.experiments import (
    fig2_memfreq,
    fig3_framesize,
    fig5_bandwidth,
    fig6_lvc_miss,
    fig7_ports,
    fig8_combining,
    fig9_optimized,
    fig10_latency,
    fig11_programs,
    mix_interference,
    table1_config,
    table2_workloads,
    table3_forwarding,
)

SCALE = 0.12
FAST_PROGRAMS = ("130.li", "129.compress")


def test_fig2_rows():
    rows = fig2_memfreq.run(scale=SCALE, programs=FAST_PROGRAMS)
    assert len(rows) == 2
    li = rows[0]
    assert 0 < li.load_frac < 0.5
    assert 0 < li.local_mem_frac < 1
    assert "program" in fig2_memfreq.render(rows)


def test_fig3_histograms():
    hists = fig3_framesize.run(scale=SCALE, programs=("130.li", "126.gcc"))
    assert set(hists) == {"130.li", "126.gcc"}
    pooled = fig3_framesize.pooled(hists)
    assert pooled.total > 0
    points = fig3_framesize.distribution_points(pooled)
    assert points[0][0] == 0.5
    assert fig3_framesize.render(hists)


def test_fig5_relative_to_limit():
    rows = fig5_bandwidth.run(scale=SCALE, programs=("130.li",),
                              ports=(1, 2, 4))
    curve = rows["130.li"]
    assert curve[1] <= curve[2] <= curve[4] <= 1.02
    assert fig5_bandwidth.average_curve(rows)[1] == pytest.approx(curve[1])


def test_fig6_miss_rates_decrease_with_size():
    rows = fig6_lvc_miss.run(scale=SCALE, programs=("126.gcc",))
    curve = rows["126.gcc"]
    assert curve[512] >= curve[2048] >= curve[4096]
    assert fig6_lvc_miss.render(rows)


def test_fig6_l2_traffic_helper():
    change = fig6_lvc_miss.l2_traffic_change(scale=SCALE,
                                             programs=("130.li",))
    assert 0 < change["130.li"] < 2.0


def test_fig7_surface_structure():
    rows = fig7_ports.run(scale=SCALE, programs=("130.li",),
                          n_values=(2,), m_values=(0, 2))
    assert rows["130.li"][(2, 0)] == pytest.approx(1.0)
    assert rows["130.li"][(2, 2)] > 0.9
    assert fig7_ports.render(rows)


def test_table3_rows():
    rows = table3_forwarding.run(scale=SCALE, programs=FAST_PROGRAMS)
    assert len(rows) == 2
    for row in rows:
        assert -0.1 < row.speedup < 0.5
        assert 0 <= row.forward_rate <= 1
    assert table3_forwarding.render(rows)


def test_fig8_combining_speedups():
    rows = fig8_combining.run(scale=SCALE, programs=("130.li",),
                              configs=((3, 1),), degrees=(1, 2))
    assert rows["130.li"][(3, 1, 1)] == pytest.approx(1.0)
    assert rows["130.li"][(3, 1, 2)] >= 0.98
    assert fig8_combining.render(rows)


def test_fig9_uses_optimizations():
    rows = fig9_optimized.run(scale=SCALE, programs=("130.li",),
                              n_values=(2,), m_values=(0, 1))
    assert (2, 1) in rows["130.li"]
    assert fig9_optimized.render(rows)


def test_fig10_configs_present():
    rows = fig10_latency.run(scale=SCALE, programs=("130.li",))
    row = rows["130.li"]
    for name in fig10_latency.CONFIG_NAMES:
        assert name in row
    assert row["(2+0)"] == pytest.approx(1.0)
    # a slower cache can never be faster
    assert row["(4+0) 3cyc"] <= row["(4+0)"] + 0.01
    assert fig10_latency.render(rows)


def test_fig11_default_program_set():
    assert fig11_programs.PROGRAMS == ("126.gcc", "130.li", "147.vortex",
                                       "102.swim")


def test_table1_all_match():
    rows = table1_config.run()
    assert all(ok for _, _, ok in rows)
    assert "MISMATCH" not in table1_config.render(rows)


def test_table2_rows():
    rows = table2_workloads.run(scale=SCALE, programs=FAST_PROGRAMS)
    assert [r.program for r in rows] == list(FAST_PROGRAMS)
    for row in rows:
        assert row.trace_len > 0
        assert 0 < row.mem_frac < 0.6
    assert table2_workloads.render(rows)


def test_mix_interference_rows():
    rows = mix_interference.run(scale=0.02, pairs=[FAST_PROGRAMS])
    pair = "+".join(FAST_PROGRAMS)
    assert set(rows) == {pair}
    assert set(rows[pair]) == {"(2+0)", "(2+2:opt)"}
    for cell in rows[pair].values():
        for program in FAST_PROGRAMS:
            metrics = cell[program]
            # Co-scheduling cannot speed a program up.
            assert metrics["slowdown"] >= 1.0
            assert metrics["mix_ipc"] <= metrics["solo_ipc"]
    assert "geomean slowdown" in mix_interference.render(rows)


def test_runner_lists_every_experiment():
    from repro.experiments.runner import EXPERIMENTS

    expected = {"table1", "table2", "table3", "fig2", "fig3", "fig5",
                "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
                "ablation-multiport", "ablation-realism",
                "ablation-window", "disc-small-l1", "mix-interference",
                "opt-levels"}
    assert set(EXPERIMENTS) == expected


def test_opt_levels_rows():
    from repro.experiments import opt_levels

    # hashdb keeps a high local (frame) fraction at both levels, so the
    # LVAQ columns are meaningful; pointer-chasing minis sit near zero.
    rows = opt_levels.run(scale=SCALE, programs=("mini.hashdb",))
    assert len(rows) == 1
    row = rows[0]
    assert row.program == "mini.hashdb"
    assert row.instructions[2] < row.instructions[0]
    assert 0 < row.inst_ratio < 1
    for level in opt_levels.LEVELS:
        assert 0 < row.local_fraction[level] <= 1
        assert row.lvaq_speedup[level] > 0.9
    rendered = opt_levels.render(rows)
    assert "mini.hashdb" in rendered
    assert "average" in rendered

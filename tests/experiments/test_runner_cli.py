"""The repro-experiments CLI: --list, multiple names, --keep-going,
exit codes, prewarm + manifest plumbing."""

from __future__ import annotations

import json

import pytest

from repro.experiments import common, runner
from repro.runtime import plans
from repro.runtime.job import SimJob


@pytest.fixture(autouse=True)
def _isolate_runtime(monkeypatch):
    """Keep each CLI invocation's session out of the shared module state."""
    monkeypatch.setattr(common, "_SESSION", None)
    yield
    common.clear_result_cache()
    common._SESSION = None


def test_list_prints_every_experiment(capsys):
    assert runner.main(["--list"]) == 0
    printed = capsys.readouterr().out.split()
    assert printed == sorted(runner.EXPERIMENTS)


def test_no_experiments_is_a_usage_error():
    with pytest.raises(SystemExit) as exc:
        runner.main([])
    assert exc.value.code == 2


def test_unknown_experiment_is_a_usage_error():
    with pytest.raises(SystemExit) as exc:
        runner.main(["not-a-figure"])
    assert exc.value.code == 2


def _fake_experiments(monkeypatch, log):
    def ok():
        log.append("ok")
        print("ok output")

    def boom():
        log.append("boom")
        raise RuntimeError("injected failure")

    monkeypatch.setattr(runner, "EXPERIMENTS", {"ok": ok, "boom": boom})


def test_failure_aborts_without_keep_going(monkeypatch, capsys):
    log = []
    _fake_experiments(monkeypatch, log)
    rc = runner.main(["boom", "ok", "--no-cache"])
    captured = capsys.readouterr()
    assert rc == 1
    assert log == ["boom"]  # "ok" never ran
    assert "boom" in captured.err
    assert "injected failure" in captured.err


def test_keep_going_runs_the_rest_and_reports(monkeypatch, capsys):
    log = []
    _fake_experiments(monkeypatch, log)
    rc = runner.main(["boom", "ok", "--keep-going", "--no-cache"])
    captured = capsys.readouterr()
    assert rc == 1
    assert log == ["boom", "ok"]
    assert "ok output" in captured.out
    assert "1 experiment(s) failed: boom" in captured.err


def test_multiple_names_run_in_order(monkeypatch, capsys):
    log = []
    _fake_experiments(monkeypatch, log)
    rc = runner.main(["ok", "ok", "--no-cache"])
    assert rc == 0
    assert log == ["ok"]  # duplicates collapse
    assert "[ok took" in capsys.readouterr().out


def test_prewarm_writes_manifest_and_seeds_results(monkeypatch, tmp_path,
                                                   capsys):
    ran = []

    def fake_main():
        # The render phase must find the prewarmed result in the memo.
        result = common.run_sim("130.li", common.nm_config(2, 0),
                                scale=0.12)
        ran.append(result.cycles)

    monkeypatch.setattr(runner, "EXPERIMENTS", {"fake": fake_main})
    monkeypatch.setitem(
        plans.PLANNERS, "fake",
        lambda scale: [SimJob("130.li", common.nm_config(2, 0),
                              scale=0.12)])
    manifest_path = tmp_path / "manifest.json"
    rc = runner.main(["fake", "--jobs", "1",
                      "--cache-dir", str(tmp_path / "cache"),
                      "--manifest", str(manifest_path)])
    captured = capsys.readouterr()
    assert rc == 0
    assert ran and ran[0] > 0
    assert "[runtime]" in captured.err
    payload = json.loads(manifest_path.read_text())
    assert payload["jobs_total"] == 1
    assert payload["jobs_ran"] == 1
    assert payload["jobs"][0]["workload"] == "130.li"
    assert payload["jobs"][0]["status"] == "ran"

    # Second invocation: warm cache, manifest reports the hit rate.
    monkeypatch.setattr(common, "_SESSION", None)
    common.clear_result_cache()
    rc = runner.main(["fake", "--jobs", "1",
                      "--cache-dir", str(tmp_path / "cache"),
                      "--manifest", str(manifest_path)])
    assert rc == 0
    payload = json.loads(manifest_path.read_text())
    assert payload["jobs_cached"] == 1
    assert payload["cache_hit_rate"] == 1.0


def test_manifest_write_is_deterministic(tmp_path):
    """Same batch -> byte-identical manifest, regardless of the order the
    engine finished the jobs in (worker scheduling is not deterministic)."""
    from repro.runtime.engine import EngineReport, JobOutcome
    from repro.runtime.manifest import RunManifest

    def make_report(order):
        outcomes = {}
        for key in order:
            job = SimJob(key, common.nm_config(2, 0), scale=0.1)
            outcomes[f"k-{key}"] = JobOutcome(job, "cached", wall=0.0,
                                              attempts=1, worker="cache")
        return EngineReport(outcomes, elapsed=1.0, duplicates=0, workers=2)

    first = tmp_path / "a.json"
    second = tmp_path / "b.json"
    RunManifest(make_report(["130.li", "099.go"]), salt="s",
                scale=0.1, experiments=["fake"]).write(str(first))
    RunManifest(make_report(["099.go", "130.li"]), salt="s",
                scale=0.1, experiments=["fake"]).write(str(second))
    assert first.read_bytes() == second.read_bytes()

    payload = json.loads(first.read_text())
    assert "created_unix" not in payload
    assert [j["key"] for j in payload["jobs"]] == sorted(
        j["key"] for j in payload["jobs"])

"""Tests for the extension experiments (ablation + Section 4.4)."""

import pytest

from repro.experiments import ablation_multiport, disc_small_l1


def test_ablation_structure():
    rows = ablation_multiport.run(scale=0.1, programs=("147.vortex",))
    row = rows["147.vortex"]
    for name in ablation_multiport.CONFIG_NAMES:
        assert name in row
    assert row["ideal(4+0)"] == pytest.approx(1.0)
    assert ablation_multiport.render(rows)


def test_ablation_real_ports_lose():
    rows = ablation_multiport.run(scale=0.1,
                                  programs=("147.vortex", "130.li"))
    for row in rows.values():
        assert row["banked(4+0)"] < 1.0
        assert row["replicated(4+0)"] < 1.0


def test_ablation_decoupled_competitive():
    """The paper's point: (2+2) with simple components rivals ideal 4+0."""
    rows = ablation_multiport.run(scale=0.1, programs=("147.vortex",))
    assert rows["147.vortex"]["ideal(2+2)"] > 0.9


def test_small_l1_structure():
    rows = disc_small_l1.run(scale=0.1, programs=("130.li",),
                             l2_latencies=(2, 12))
    row = rows["130.li"]
    assert set(row) == {2, 12}
    assert disc_small_l1.render(rows)


def test_small_l1_better_only_with_fast_l2():
    """Section 4.4: the small L1 wins only when the L2 is very close."""
    rows = disc_small_l1.run(scale=0.12,
                             programs=("130.li", "126.gcc"),
                             l2_latencies=(2, 12))
    for row in rows.values():
        assert row[2] > row[12]  # faster L2 always favours the small cache


def test_crossover_helper():
    rows = {"x": {2: 1.05, 4: 1.01, 8: 0.98, 12: 0.95}}
    assert disc_small_l1.crossover_latency(rows) == 4
    rows = {"x": {2: 0.9, 4: 0.9}}
    assert disc_small_l1.crossover_latency(rows) == 0


def test_registered_in_runner():
    from repro.experiments.runner import EXPERIMENTS

    assert "ablation-multiport" in EXPERIMENTS
    assert "disc-small-l1" in EXPERIMENTS

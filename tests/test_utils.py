"""Tests for repro.utils."""

import pytest
from hypothesis import given, strategies as st

from repro.utils import (
    align_down,
    align_up,
    chunked,
    clamp,
    fmt_ratio,
    geometric_mean,
    is_power_of_two,
    log2_int,
    make_rng,
    moving_sum,
    sign_extend,
    to_signed32,
    to_unsigned32,
    weighted_choice,
)


def test_is_power_of_two():
    assert is_power_of_two(1)
    assert is_power_of_two(1024)
    assert not is_power_of_two(0)
    assert not is_power_of_two(3)
    assert not is_power_of_two(-4)


def test_log2_int():
    assert log2_int(1) == 0
    assert log2_int(32) == 5
    with pytest.raises(ValueError):
        log2_int(3)


def test_alignment():
    assert align_down(37, 8) == 32
    assert align_up(37, 8) == 40
    assert align_up(40, 8) == 40


def test_sign_extend():
    assert sign_extend(0xFF, 8) == -1
    assert sign_extend(0x7F, 8) == 127
    assert sign_extend(0x80, 8) == -128


@given(st.integers(-(2**40), 2**40))
def test_signed_unsigned_roundtrip(value):
    assert to_signed32(to_unsigned32(value)) == to_signed32(value)
    assert -(2**31) <= to_signed32(value) < 2**31
    assert 0 <= to_unsigned32(value) < 2**32


def test_chunked():
    assert list(chunked([1, 2, 3, 4, 5], 2)) == [[1, 2], [3, 4], [5]]
    with pytest.raises(ValueError):
        list(chunked([1], 0))


def test_geometric_mean():
    assert geometric_mean([2, 8]) == pytest.approx(4.0)
    assert geometric_mean([]) == 0.0
    with pytest.raises(ValueError):
        geometric_mean([1, -1])


def test_rng_deterministic():
    assert make_rng(7).random() == make_rng(7).random()
    assert make_rng(7).random() != make_rng(8).random()


def test_weighted_choice():
    rng = make_rng(1)
    assert weighted_choice(rng, ["a", "b"], [1.0, 0.0]) == "a"
    with pytest.raises(ValueError):
        weighted_choice(rng, ["a"], [1.0, 2.0])


def test_clamp():
    assert clamp(5, 0, 10) == 5
    assert clamp(-1, 0, 10) == 0
    assert clamp(99, 0, 10) == 10


def test_fmt_ratio():
    assert fmt_ratio(1, 4) == 0.25
    assert fmt_ratio(1, 0) == 0.0
    assert fmt_ratio(1, 0, default=9.0) == 9.0


def test_moving_sum():
    assert moving_sum([1, 2, 3, 4], 2) == [3, 5, 7]
    with pytest.raises(ValueError):
        moving_sum([1], 0)

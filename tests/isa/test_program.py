"""Tests for repro.isa.program."""

import pytest

from repro.errors import IsaError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import DATA_BASE, DataItem, Program


def _jump(label):
    return Instruction(Opcode.J, label=label, imm=0)


def test_entry_index():
    program = Program([_jump("main")], labels={"main": 0})
    assert program.entry_index == 0


def test_missing_entry_raises():
    program = Program([_jump("x")], labels={"x": 0}, entry="main")
    with pytest.raises(IsaError):
        program.entry_index


def test_data_layout_sequential():
    data = [DataItem("a", [1, 2]), DataItem("b", [3])]
    program = Program([], labels={}, data=data, entry="a")
    assert program.data_address("a") == DATA_BASE
    assert program.data_address("b") == DATA_BASE + 8


def test_byte_items_word_aligned():
    data = [DataItem("a", [0] * 5, element_size=1), DataItem("b", [1])]
    program = Program([], labels={}, data=data)
    assert program.data_address("b") == DATA_BASE + 8  # 5 bytes -> 8


def test_duplicate_data_symbol_rejected():
    with pytest.raises(IsaError):
        Program([], data=[DataItem("a", [1]), DataItem("a", [2])])


def test_unknown_data_symbol():
    program = Program([])
    with pytest.raises(IsaError):
        program.data_address("nope")
    assert not program.has_data("nope")


def test_resolve_branch_labels():
    ins = _jump("target")
    program = Program([ins, Instruction(Opcode.NOP)],
                      labels={"target": 1, "main": 0})
    program.resolve()
    assert ins.imm == 1


def test_resolve_data_labels():
    ins = Instruction(Opcode.LA, rd=8, label="tbl", imm=0)
    program = Program([ins], labels={"main": 0},
                      data=[DataItem("tbl", [0])])
    program.resolve()
    assert ins.imm == DATA_BASE


def test_resolve_unknown_symbol_raises():
    program = Program([_jump("ghost")], labels={"main": 0})
    with pytest.raises(IsaError):
        program.resolve()


def test_data_item_bad_element_size():
    with pytest.raises(IsaError):
        DataItem("x", [1], element_size=2)

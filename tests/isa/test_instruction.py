"""Tests for repro.isa.instruction."""

import pytest

from repro.errors import IsaError
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg


def test_rrr_reads_writes():
    ins = Instruction(Opcode.ADD, rd=8, rs=9, rt=10)
    assert ins.reads == (9, 10)
    assert ins.writes == (8,)


def test_load_reads_base_writes_dest():
    ins = Instruction(Opcode.LW, rd=8, rs=29, imm=4)
    assert ins.reads == (29,)
    assert ins.writes == (8,)


def test_store_reads_base_and_value():
    ins = Instruction(Opcode.SW, rt=8, rs=29, imm=4)
    assert ins.reads == (29, 8)
    assert ins.writes == ()


def test_jal_writes_ra():
    ins = Instruction(Opcode.JAL, label="f", imm=0)
    assert ins.writes == (int(Reg.RA),)


def test_syscall_dataflow():
    ins = Instruction(Opcode.SYSCALL, imm=1)
    assert int(Reg.A0) in ins.reads
    assert int(Reg.V0) in ins.writes


def test_branch_reads_both_operands():
    ins = Instruction(Opcode.BNE, rs=8, rt=0, label="loop", imm=0)
    assert ins.reads == (8, 0)
    assert ins.writes == ()


def test_missing_operand_rejected():
    with pytest.raises(IsaError):
        Instruction(Opcode.ADD, rd=8, rs=9)  # no rt
    with pytest.raises(IsaError):
        Instruction(Opcode.LW, rd=8, rs=29)  # no offset
    with pytest.raises(IsaError):
        Instruction(Opcode.BEQ, rs=8, rt=9)  # no target


def test_mem_size():
    assert Instruction(Opcode.LW, rd=8, rs=29, imm=0).mem_size == 4
    assert Instruction(Opcode.LB, rd=8, rs=29, imm=0).mem_size == 1
    assert Instruction(Opcode.SB, rt=8, rs=29, imm=0).mem_size == 1


def test_local_annotation_preserved():
    ins = Instruction(Opcode.LW, rd=8, rs=29, imm=0, local=True)
    assert ins.local is True
    ins2 = Instruction(Opcode.LW, rd=8, rs=29, imm=0)
    assert ins2.local is None


def test_copy_is_equal_and_detached():
    ins = Instruction(Opcode.ADDI, rd=8, rs=9, imm=5)
    clone = ins.copy()
    assert clone == ins
    clone.imm = 6
    assert clone != ins


def test_nop_has_no_dataflow():
    nop = Instruction(Opcode.NOP)
    assert nop.reads == ()
    assert nop.writes == ()

"""Tests for repro.isa.registers."""

import pytest

from repro.isa.registers import (
    ALLOCATABLE_GPRS,
    CALLEE_SAVED,
    CALLER_SAVED,
    FPR_BASE,
    NUM_FPRS,
    NUM_GPRS,
    Reg,
    fpr,
    is_fpr,
    parse_reg,
    reg_name,
)


def test_machine_has_paper_register_counts():
    """Table 1: 32 GPRs and 32 FPRs."""
    assert NUM_GPRS == 32
    assert NUM_FPRS == 32


def test_abi_pin_points():
    assert int(Reg.ZERO) == 0
    assert int(Reg.SP) == 29
    assert int(Reg.FP) == 30
    assert int(Reg.RA) == 31


def test_fpr_flat_indices():
    assert fpr(0) == FPR_BASE
    assert fpr(31) == FPR_BASE + 31
    with pytest.raises(ValueError):
        fpr(32)
    with pytest.raises(ValueError):
        fpr(-1)


def test_is_fpr():
    assert not is_fpr(31)
    assert is_fpr(32)
    assert is_fpr(63)
    assert not is_fpr(64)


def test_reg_name_roundtrip_gprs():
    for r in Reg:
        assert parse_reg(reg_name(int(r))) == int(r)


def test_reg_name_roundtrip_fprs():
    for n in range(NUM_FPRS):
        assert parse_reg(reg_name(fpr(n))) == fpr(n)


def test_parse_numeric_gpr():
    assert parse_reg("$r7") == 7


def test_parse_bad_register():
    with pytest.raises(ValueError):
        parse_reg("$bogus")
    with pytest.raises(ValueError):
        parse_reg("$r99")


def test_reg_name_out_of_range():
    with pytest.raises(ValueError):
        reg_name(64)


def test_saved_sets_disjoint():
    caller = set(CALLER_SAVED)
    callee = set(CALLEE_SAVED)
    assert not caller & callee


def test_allocatable_excludes_reserved():
    reserved = {Reg.ZERO, Reg.AT, Reg.SP, Reg.RA, Reg.GP, Reg.K0, Reg.K1}
    assert not reserved & set(ALLOCATABLE_GPRS)

"""Tests for repro.isa.opcodes."""

from repro.isa.opcodes import BY_MNEMONIC, FuClass, LATENCY, Opcode


def test_r10000_latencies():
    """Table 1 requires MIPS R10000 instruction latencies."""
    assert LATENCY[FuClass.IALU] == 1
    assert LATENCY[FuClass.IMULT] == 5
    assert LATENCY[FuClass.IDIV] == 34
    assert LATENCY[FuClass.FADD] == 2
    assert LATENCY[FuClass.FMUL] == 2
    assert LATENCY[FuClass.FDIV] == 12


def test_every_fu_class_has_a_latency():
    for fu in FuClass:
        assert fu in LATENCY


def test_mnemonic_lookup_complete():
    for op in Opcode:
        assert BY_MNEMONIC[op.mnemonic] is op


def test_load_store_classification():
    assert Opcode.LW.is_load and not Opcode.LW.is_store
    assert Opcode.SW.is_store and not Opcode.SW.is_load
    assert Opcode.LS.is_load
    assert Opcode.SS.is_store
    assert Opcode.LW.is_mem and Opcode.SW.is_mem
    assert not Opcode.ADD.is_mem


def test_branch_classification():
    for op in (Opcode.BEQ, Opcode.BNE, Opcode.J, Opcode.JAL, Opcode.JR,
               Opcode.JALR, Opcode.BLEZ, Opcode.BGEZ):
        assert op.is_branch
    assert not Opcode.ADD.is_branch


def test_fp_ops_on_fp_units():
    assert Opcode.FADD.fu is FuClass.FADD
    assert Opcode.FMUL.fu is FuClass.FMUL
    assert Opcode.FDIV.fu is FuClass.FDIV
    assert Opcode.CVTSW.fu is FuClass.FADD


def test_mnemonics_unique():
    mnemonics = [op.mnemonic for op in Opcode]
    assert len(mnemonics) == len(set(mnemonics))

"""Tests for repro.isa.disasm."""

from repro.isa.disasm import disassemble, disassemble_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program


def test_rrr():
    text = disassemble(Instruction(Opcode.ADD, rd=8, rs=9, rt=10))
    assert text == "add $t0, $t1, $t2"


def test_mem_with_annotation():
    local = disassemble(Instruction(Opcode.SW, rt=8, rs=29, imm=4,
                                    local=True))
    assert local == "sw $t0, 4($sp)  # local"
    ambiguous = disassemble(Instruction(Opcode.LW, rd=8, rs=9, imm=0))
    assert ambiguous.endswith("# ambiguous")


def test_nonlocal_annotated_explicitly():
    text = disassemble(Instruction(Opcode.LW, rd=8, rs=9, imm=0,
                                   local=False))
    assert text.endswith("# nonlocal")


def test_branch_uses_label():
    text = disassemble(Instruction(Opcode.BNE, rs=8, rt=0, label="loop",
                                   imm=3))
    assert text == "bne $t0, $zero, loop"


def test_branch_falls_back_to_index():
    text = disassemble(Instruction(Opcode.J, imm=17))
    assert text == "j 17"


def test_la_label():
    text = disassemble(Instruction(Opcode.LA, rd=8, label="tbl", imm=0))
    assert text == "la $t0, tbl"


def test_syscall():
    assert disassemble(Instruction(Opcode.SYSCALL, imm=1)) == "syscall 1"


def test_program_disassembly_includes_labels():
    program = Program(
        [Instruction(Opcode.NOP), Instruction(Opcode.JR, rs=31)],
        labels={"main": 0, "exit": 1},
    )
    text = disassemble_program(program)
    assert "main:" in text
    assert "exit:" in text
    assert "jr $ra" in text

"""Tests for the set-associative cache, including an LRU model property."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigError
from repro.mem.cache import Cache, CacheGeometry


def make_cache(size=1024, assoc=2, line=32):
    return Cache("c", CacheGeometry(size, assoc, line))


def test_geometry_derivations():
    geom = CacheGeometry(32 * 1024, 2, 32)
    assert geom.num_sets == 512
    assert geom.line_of(0x40) == 2
    assert geom.set_of(geom.line_of(0x40)) == 2


def test_geometry_rejects_bad_shapes():
    with pytest.raises(ConfigError):
        CacheGeometry(1000, 2, 32)  # not divisible
    with pytest.raises(ConfigError):
        CacheGeometry(1024, 2, 33)  # line not power of two
    with pytest.raises(ConfigError):
        CacheGeometry(96 * 32, 2, 32)  # sets not power of two


def test_cold_miss_then_hit():
    cache = make_cache()
    assert cache.access(0x100, False) is False
    assert cache.access(0x100, False) is True
    assert cache.access(0x11C, False) is True  # same 32B line


def test_miss_rate():
    cache = make_cache()
    cache.access(0x000, False)
    cache.access(0x000, False)
    cache.access(0x000, False)
    cache.access(0x400, False)
    assert cache.miss_rate == pytest.approx(0.5)


def test_empty_cache_miss_rate_zero():
    assert make_cache().miss_rate == 0.0


def test_lru_eviction_order():
    # direct-ish: 2-way, force three lines into one set
    cache = make_cache(size=2 * 32 * 4, assoc=2, line=32)  # 4 sets
    set_stride = 4 * 32  # lines mapping to set 0
    a, b, c = 0, set_stride, 2 * set_stride
    cache.access(a, False)
    cache.access(b, False)
    cache.access(a, False)  # a is now MRU
    cache.access(c, False)  # evicts b (LRU)
    assert cache.present(a)
    assert not cache.present(b)
    assert cache.present(c)


def test_dirty_writeback_counted():
    cache = make_cache(size=2 * 32 * 1, assoc=1, line=32)  # 2 sets, DM
    stride = 2 * 32
    cache.access(0, True)        # dirty line in set 0
    cache.access(stride, False)  # evicts dirty line
    assert cache.counters.get("c.writebacks") == 1


def test_clean_eviction_no_writeback():
    cache = make_cache(size=2 * 32 * 1, assoc=1, line=32)
    stride = 2 * 32
    cache.access(0, False)
    cache.access(stride, False)
    assert cache.counters.get("c.writebacks") == 0


def test_invalidate():
    cache = make_cache()
    cache.access(0x100, True)
    assert cache.invalidate(0x100)
    assert not cache.present(0x100)
    assert not cache.invalidate(0x100)


def test_flush_counts_dirty_lines():
    cache = make_cache()
    cache.access(0x000, True)   # set 0
    cache.access(0x020, True)   # set 1
    cache.access(0x040, False)  # set 2, clean
    assert cache.flush() == 2
    assert cache.resident_lines() == 0


def test_capacity_bounded():
    cache = make_cache(size=256, assoc=2, line=32)  # 8 lines total
    for i in range(64):
        cache.access(i * 32, False)
    assert cache.resident_lines() <= 8


@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()),
                min_size=1, max_size=300))
def test_matches_reference_lru_model(accesses):
    """Property: hit/miss sequence matches a straightforward LRU model."""
    assoc, num_sets, line = 2, 4, 32
    cache = Cache("m", CacheGeometry(assoc * num_sets * line, assoc, line))
    model = {s: [] for s in range(num_sets)}  # MRU-first line lists
    for line_no, is_store in accesses:
        addr = line_no * line
        set_index = line_no % num_sets
        ways = model[set_index]
        expected_hit = line_no in ways
        if expected_hit:
            ways.remove(line_no)
        elif len(ways) >= assoc:
            ways.pop()
        ways.insert(0, line_no)
        assert cache.access(addr, is_store) == expected_hit


@given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
def test_small_working_set_always_hits_after_warmup(lines):
    """Anything that fits in the cache never misses after first touch."""
    cache = make_cache(size=1024, assoc=2, line=32)  # 32 lines, 16 sets
    warm = set()
    for line_no in lines:
        hit = cache.access(line_no * 32, False)
        assert hit == (line_no in warm)
        warm.add(line_no)

"""Tests for the full memory hierarchy."""

import pytest

from repro.errors import ConfigError
from repro.mem.hierarchy import MemSystemConfig, MemoryHierarchy


def make(l1_ports=2, lvc_ports=2, **kwargs):
    return MemoryHierarchy(MemSystemConfig(l1_ports=l1_ports,
                                           lvc_ports=lvc_ports, **kwargs))


def test_notation():
    assert MemSystemConfig(l1_ports=3, lvc_ports=2).notation() == "(3+2)"
    assert MemSystemConfig(l1_ports=4, lvc_ports=0).notation() == "(4+0)"


def test_l1_must_have_a_port():
    with pytest.raises(ConfigError):
        MemSystemConfig(l1_ports=0)


def test_no_lvc_when_zero_ports():
    hierarchy = make(lvc_ports=0)
    assert hierarchy.lvc is None
    with pytest.raises(ConfigError):
        hierarchy.access_lvc(0x100, False, 0)


def test_l1_hit_latency():
    hierarchy = make()
    hierarchy.access_l1(0x100, False, now=0)       # cold miss, fills line
    result = hierarchy.access_l1(0x100, False, now=100)
    assert result.hit
    assert result.ready == 100 + 2  # paper: 2-cycle L1 hit


def test_lvc_hit_latency_one_cycle():
    hierarchy = make()
    hierarchy.access_lvc(0x7FFF0000, True, now=0)
    result = hierarchy.access_lvc(0x7FFF0000, False, now=100)
    assert result.hit
    assert result.ready == 101  # paper: 1-cycle LVC hit


def test_l1_miss_goes_through_l2():
    hierarchy = make()
    result = hierarchy.access_l1(0x100, False, now=0)
    assert not result.hit
    # miss path: 2 (L1 lookup) + 12 (L2) + 50 (memory, L2 cold too)
    assert result.ready == 2 + 12 + 50


def test_l2_hit_after_warmup():
    hierarchy = make()
    hierarchy.access_l1(0x100, False, now=0)  # fills L2 and L1
    hierarchy.l1.invalidate(0x100)
    result = hierarchy.access_l1(0x100, False, now=100)
    assert not result.hit
    assert result.ready == 100 + 2 + 12  # L2 hit this time


def test_mshr_merges_secondary_miss():
    hierarchy = make()
    first = hierarchy.access_l1(0x100, False, now=0)
    second = hierarchy.access_l1(0x104, False, now=1)  # same line, in flight
    assert second.ready == max(first.ready, 1 + 2)
    assert hierarchy.l1_mshr.merged == 1
    assert hierarchy.l2_traffic == 1  # only one bus transaction


def test_bus_serialises_misses():
    hierarchy = make(bus_occupancy=4)
    a = hierarchy.access_l1(0x1000, False, now=0)
    b = hierarchy.access_l1(0x2000, False, now=0)
    assert b.ready > a.ready  # second miss queued behind the first


def test_l2_traffic_counted():
    hierarchy = make()
    hierarchy.access_l1(0x1000, False, now=0)
    hierarchy.access_l1(0x2000, False, now=10)
    hierarchy.access_l1(0x1000, False, now=100)  # hit, no traffic
    assert hierarchy.l2_traffic == 2


def test_ports_refill_each_cycle():
    hierarchy = make(l1_ports=1)
    assert hierarchy.l1_ports.try_take()
    assert not hierarchy.l1_ports.try_take()
    hierarchy.new_cycle()
    assert hierarchy.l1_ports.try_take()


def test_lvc_and_l1_are_independent_tag_stores():
    hierarchy = make()
    hierarchy.access_lvc(0x7FFF0000, True, now=0)
    assert not hierarchy.l1.present(0x7FFF0000)
    assert hierarchy.lvc.present(0x7FFF0000)


def test_stores_mark_lines_dirty_for_writeback():
    hierarchy = make(l1_size=64, l1_assoc=1, lvc_ports=0)  # 2-line L1
    stride = 2 * 32
    hierarchy.access_l1(0, True, now=0)
    hierarchy.access_l1(stride, False, now=10)  # evicts dirty line
    assert hierarchy.counters.get("l1.writebacks") == 1


def test_mshr_full_adds_delay():
    hierarchy = make(mshr_entries=1)
    first = hierarchy.access_l1(0x1000, False, now=0)
    second = hierarchy.access_l1(0x2000, False, now=0)
    # second miss could not allocate an MSHR: penalised
    assert second.ready > first.ready

"""Tests for the MSHR file."""

import pytest

from repro.errors import ConfigError
from repro.mem import MshrFile


def test_allocate_and_lookup():
    mshr = MshrFile(4)
    assert mshr.lookup(10, now=0) is None
    assert mshr.allocate(10, ready=20, now=0)
    assert mshr.lookup(10, now=5) == 20
    assert mshr.merged == 1


def test_entries_expire():
    mshr = MshrFile(4)
    mshr.allocate(10, ready=20, now=0)
    assert mshr.lookup(10, now=20) is None
    assert mshr.occupancy(20) == 0


def test_capacity_limit():
    mshr = MshrFile(2)
    assert mshr.allocate(1, ready=100, now=0)
    assert mshr.allocate(2, ready=100, now=0)
    assert not mshr.allocate(3, ready=100, now=0)
    assert mshr.full_events == 1


def test_expiry_frees_capacity():
    mshr = MshrFile(1)
    mshr.allocate(1, ready=10, now=0)
    assert mshr.allocate(2, ready=30, now=10)


def test_zero_entries_rejected():
    with pytest.raises(ConfigError):
        MshrFile(0)


def test_occupancy_counts_live_entries():
    mshr = MshrFile(8)
    mshr.allocate(1, ready=10, now=0)
    mshr.allocate(2, ready=20, now=0)
    assert mshr.occupancy(0) == 2
    assert mshr.occupancy(15) == 1

"""Tests for the per-cycle port arbiter."""

import pytest

from repro.errors import ConfigError
from repro.mem.ports import PortArbiter


def test_budget_consumed():
    ports = PortArbiter(2)
    assert ports.try_take()
    assert ports.try_take()
    assert not ports.try_take()


def test_new_cycle_refills():
    ports = PortArbiter(1)
    assert ports.try_take()
    ports.new_cycle()
    assert ports.try_take()


def test_multi_take():
    ports = PortArbiter(3)
    assert ports.try_take(2)
    assert not ports.try_take(2)
    assert ports.try_take(1)


def test_zero_ports_always_refuse():
    ports = PortArbiter(0)
    assert not ports.try_take()


def test_negative_count_rejected():
    with pytest.raises(ConfigError):
        PortArbiter(-1)


def test_invalid_request_rejected():
    ports = PortArbiter(2)
    with pytest.raises(ValueError):
        ports.try_take(0)


def test_saturation_counted():
    ports = PortArbiter(1)
    ports.new_cycle()
    ports.try_take()
    ports.new_cycle()  # previous cycle ended exhausted
    assert ports.cycles_saturated == 1


def test_busy_transactions_accumulate():
    ports = PortArbiter(4)
    ports.try_take(3)
    ports.new_cycle()
    ports.try_take(1)
    assert ports.busy_transactions == 4

"""Tests for the port-arbitration policies."""

import pytest

from repro.errors import ConfigError
from repro.mem.ports import (
    PORT_POLICIES,
    BankedPorts,
    FinitePorts,
    PortArbiter,
    ReplicatedPorts,
    make_ports,
)


# -- ideal (plain PortArbiter) ------------------------------------------------

def test_budget_consumed():
    ports = PortArbiter(2)
    assert ports.try_take()
    assert ports.try_take()
    assert not ports.try_take()


def test_new_cycle_refills():
    ports = PortArbiter(1)
    assert ports.try_take()
    ports.new_cycle()
    assert ports.try_take()


def test_multi_take():
    ports = PortArbiter(3)
    assert ports.try_take(2)
    assert not ports.try_take(2)
    assert ports.try_take(1)


def test_zero_ports_always_refuse():
    ports = PortArbiter(0)
    assert not ports.try_take()


def test_negative_count_rejected():
    with pytest.raises(ConfigError):
        PortArbiter(-1)


def test_invalid_request_rejected():
    ports = PortArbiter(2)
    with pytest.raises(ValueError):
        ports.try_take(0)


def test_saturation_counted():
    ports = PortArbiter(1)
    ports.new_cycle()
    ports.try_take()
    ports.new_cycle()  # previous cycle ended exhausted
    assert ports.cycles_saturated == 1


def test_busy_transactions_accumulate():
    ports = PortArbiter(4)
    ports.try_take(3)
    ports.new_cycle()
    ports.try_take(1)
    assert ports.busy_transactions == 4


def test_ideal_any_mix():
    ports = PortArbiter(2)
    assert ports.try_take(1, line=0, is_store=True)
    assert ports.try_take(1, line=0, is_store=False)
    assert not ports.try_take(1, line=1)


# -- finite (contended ports over banks) --------------------------------------

def test_finite_same_bank_conflicts():
    ports = FinitePorts(2, banks=4)
    assert ports.try_take(1, line=0)
    assert not ports.try_take(1, line=4)  # same bank (4 & 3 == 0)
    assert ports.conflicts == 1
    assert ports.conflicts_by_bank[0] == 1
    assert ports.try_take(1, line=1)      # different bank is fine


def test_finite_port_budget_separate_from_banks():
    ports = FinitePorts(2, banks=8)
    assert ports.try_take(1, line=0)
    assert ports.try_take(1, line=1)
    # both ports consumed: a fresh bank still refuses, but it is a port
    # exhaustion, not a bank conflict
    assert not ports.try_take(1, line=2)
    assert ports.conflicts == 0


def test_finite_resets_each_cycle():
    ports = FinitePorts(1, banks=2)
    assert ports.try_take(1, line=0)
    ports.new_cycle()
    assert ports.try_take(1, line=0)


def test_finite_conflict_does_not_consume_port():
    ports = FinitePorts(2, banks=2)
    assert ports.try_take(1, line=0)
    assert not ports.try_take(1, line=2)  # bank 0 busy
    assert ports.try_take(1, line=1)      # the second port is still free
    assert ports.conflicts == 1


def test_finite_default_banks_power_of_two_with_headroom():
    ports = FinitePorts(2)
    assert ports.banks == 4
    assert FinitePorts(3).banks == 8


def test_finite_validation():
    with pytest.raises(ConfigError):
        FinitePorts(0)
    with pytest.raises(ConfigError):
        FinitePorts(2, banks=3)
    with pytest.raises(ConfigError):
        FinitePorts(4, banks=2)
    with pytest.raises(ValueError):
        FinitePorts(2, banks=4).try_take(2, line=0)


# -- banked (one port per bank) -----------------------------------------------

def test_banked_same_bank_conflicts():
    ports = BankedPorts(4)
    assert ports.try_take(1, line=0)
    assert not ports.try_take(1, line=4)  # same bank (4 % 4 == 0)
    assert ports.bank_conflicts == 1
    assert ports.try_take(1, line=1)      # different bank is fine


def test_banked_resets_each_cycle():
    ports = BankedPorts(2)
    assert ports.try_take(1, line=0)
    ports.new_cycle()
    assert ports.try_take(1, line=0)


def test_banked_total_budget():
    ports = BankedPorts(2)
    assert ports.try_take(1, line=0)
    assert ports.try_take(1, line=1)
    # both banks used: nothing left even for a fresh bank index
    assert not ports.try_take(1, line=2)


def test_banked_multi_request_rejected():
    with pytest.raises(ValueError):
        BankedPorts(4).try_take(2, line=0)


def test_banked_bank_count_power_of_two():
    with pytest.raises(ConfigError):
        BankedPorts(3)


# -- replicated (stores broadcast) --------------------------------------------

def test_replicated_loads_parallel():
    ports = ReplicatedPorts(3)
    assert ports.try_take(1, is_store=False)
    assert ports.try_take(1, is_store=False)
    assert ports.try_take(1, is_store=False)
    assert not ports.try_take(1, is_store=False)


def test_replicated_store_broadcasts():
    ports = ReplicatedPorts(3)
    assert ports.try_take(1, is_store=True)   # consumes all three copies
    assert not ports.try_take(1, is_store=False)


def test_replicated_store_blocked_after_load():
    ports = ReplicatedPorts(2)
    assert ports.try_take(1, is_store=False)
    assert not ports.try_take(1, is_store=True)
    assert ports.store_blocks == 1


# -- factory ------------------------------------------------------------------

def test_make_ports_factory():
    ideal = make_ports("ideal", 2)
    assert type(ideal) is PortArbiter  # fast path requires the exact type
    assert isinstance(make_ports("finite", 2), FinitePorts)
    assert isinstance(make_ports("banked", 4), BankedPorts)
    assert isinstance(make_ports("replicated", 2), ReplicatedPorts)
    with pytest.raises(ConfigError):
        make_ports("quantum", 2)


def test_make_ports_banks_only_for_finite():
    finite = make_ports("finite", 2, banks=16)
    assert finite.banks == 16
    banked = make_ports("banked", 4, banks=16)
    assert banked.banks == 4


def test_policy_registry_complete():
    assert set(PORT_POLICIES) == {"ideal", "finite", "banked", "replicated"}


def test_policies_integrate_with_machine():
    """End to end: each policy runs a trace and the contended ones lose."""
    from repro.core import MachineConfig, Processor
    from repro.workloads.builder import build_trace

    trace = build_trace("147.vortex", length=12_000, seed=5)
    ipc = {}
    for policy in ("ideal", "finite", "banked", "replicated"):
        config = MachineConfig.baseline(l1_ports=4, lvc_ports=0,
                                        l1_port_policy=policy)
        ipc[policy] = Processor(config).run(trace.insts, "v").ipc
    assert ipc["banked"] < ipc["ideal"]
    assert ipc["replicated"] < ipc["ideal"]
    assert ipc["finite"] <= ipc["ideal"]

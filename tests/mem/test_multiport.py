"""Tests for the realistic multi-port implementations."""

import pytest

from repro.errors import ConfigError
from repro.mem.multiport import (
    BankedPorts,
    IdealPorts,
    ReplicatedPorts,
    make_ports,
)


def test_ideal_any_mix():
    ports = IdealPorts(2)
    assert ports.try_take(1, line=0, is_store=True)
    assert ports.try_take(1, line=0, is_store=False)
    assert not ports.try_take(1, line=1)


def test_banked_same_bank_conflicts():
    ports = BankedPorts(4)
    assert ports.try_take(1, line=0)
    assert not ports.try_take(1, line=4)  # same bank (4 % 4 == 0)
    assert ports.bank_conflicts == 1
    assert ports.try_take(1, line=1)      # different bank is fine


def test_banked_resets_each_cycle():
    ports = BankedPorts(2)
    assert ports.try_take(1, line=0)
    ports.new_cycle()
    assert ports.try_take(1, line=0)


def test_banked_total_budget():
    ports = BankedPorts(2)
    assert ports.try_take(1, line=0)
    assert ports.try_take(1, line=1)
    # both banks used: nothing left even for a fresh bank index
    assert not ports.try_take(1, line=2)


def test_banked_multi_request_rejected():
    with pytest.raises(ValueError):
        BankedPorts(4).try_take(2, line=0)


def test_banked_bank_count_power_of_two():
    with pytest.raises(ConfigError):
        BankedPorts(3)


def test_replicated_loads_parallel():
    ports = ReplicatedPorts(3)
    assert ports.try_take(1, is_store=False)
    assert ports.try_take(1, is_store=False)
    assert ports.try_take(1, is_store=False)
    assert not ports.try_take(1, is_store=False)


def test_replicated_store_broadcasts():
    ports = ReplicatedPorts(3)
    assert ports.try_take(1, is_store=True)   # consumes all three copies
    assert not ports.try_take(1, is_store=False)


def test_replicated_store_blocked_after_load():
    ports = ReplicatedPorts(2)
    assert ports.try_take(1, is_store=False)
    assert not ports.try_take(1, is_store=True)
    assert ports.store_blocks == 1


def test_make_ports_factory():
    assert isinstance(make_ports("ideal", 2), IdealPorts)
    assert isinstance(make_ports("banked", 4), BankedPorts)
    assert isinstance(make_ports("replicated", 2), ReplicatedPorts)
    with pytest.raises(ConfigError):
        make_ports("quantum", 2)


def test_policies_integrate_with_machine():
    """End to end: each policy runs a trace and banked/replicated lose."""
    from repro.core import MachineConfig, Processor
    from repro.workloads.builder import build_trace

    trace = build_trace("147.vortex", length=12_000, seed=5)
    ipc = {}
    for policy in ("ideal", "banked", "replicated"):
        config = MachineConfig.baseline(l1_ports=4, lvc_ports=0,
                                        l1_port_policy=policy)
        ipc[policy] = Processor(config).run(trace.insts, "v").ipc
    assert ipc["banked"] < ipc["ideal"]
    assert ipc["replicated"] < ipc["ideal"]

"""The ``repro-cc analyze`` command-line front end."""

import json
import os

import pytest

from repro.cli import main

CLEAN = """
int main() {
    int total = 0;
    int i;
    for (i = 1; i <= 10; i++) total += i;
    print(total);
    return 0;
}
"""

#: Compiles fine but carries IR-level warnings: a dead store and a
#: use-before-init (the analyzer's exit code must stay 0 without
#: --strict — warnings are not soundness errors).
WARNY = """
int main() {
    int a[2];
    int b[2];
    a[0] = 7;
    return b[0] - b[0];
}
"""

ASM = """
main:
    li $a0, 0
    syscall 0
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.mc"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def warny_file(tmp_path):
    path = tmp_path / "warny.mc"
    path.write_text(WARNY)
    return str(path)


def test_analyze_clean_file_exits_zero(clean_file, capsys):
    assert main(["analyze", clean_file]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "static.hint_coverage" in out


def test_analyze_workload_by_name(capsys):
    assert main(["analyze", "mini.qsort", "--static-only"]) == 0
    assert "mini.qsort: CLEAN" in capsys.readouterr().out


def test_analyze_no_targets_is_usage_error(capsys):
    assert main(["analyze"]) == 2


def test_analyze_json_shape(clean_file, capsys):
    assert main(["analyze", clean_file, "--json", "--static-only"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert isinstance(payload, list) and len(payload) == 1
    report = payload[0]
    assert report["ok"] is True
    assert report["errors"] == 0
    assert "main" in report["frames"]
    assert report["frames"]["main"]["frame_size"] % 8 == 0
    assert "static.mem_accesses" in report["metrics"]


def test_analyze_warnings_do_not_fail_by_default(warny_file, capsys):
    assert main(["analyze", warny_file, "--no-opt", "--static-only"]) == 0
    out = capsys.readouterr().out
    assert "ir.dead-store" in out
    assert "ir.use-before-init" in out


def test_analyze_strict_promotes_warnings(warny_file):
    assert main(["analyze", warny_file, "--no-opt", "--static-only",
                 "--strict"]) == 1


def test_analyze_assembly_degrades_to_note(tmp_path, capsys):
    path = tmp_path / "hand.s"
    path.write_text(ASM)
    assert main(["analyze", str(path), "--verbose"]) == 0
    assert "frames.missing" in capsys.readouterr().out


def test_analyze_multiple_targets(clean_file, capsys):
    assert main(["analyze", clean_file, "mini.stencil",
                 "--static-only"]) == 0
    out = capsys.readouterr().out
    assert out.count("CLEAN") == 2


def test_example_pipeline_source_verifies_clean(capsys):
    # The embedded mini-C program in examples/compiler_pipeline.py is
    # user-facing documentation; it must stay verifier-clean.
    import ast

    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    text = open(os.path.join(root, "examples",
                             "compiler_pipeline.py")).read()
    # Evaluate the string literal so Python-level escapes ('\\n') become
    # what the module itself would pass to the compiler.
    chunk = text.split("SOURCE = ", 1)[1]
    chunk = chunk[:chunk.index('"""', 3) + 3]
    source = ast.literal_eval(chunk)

    from repro.analyze import analyze_source

    report = analyze_source(source, name="examples/compiler_pipeline")
    assert report.ok and not report.warnings

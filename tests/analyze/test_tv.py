"""Translation validation of the SSA mid-end (:mod:`repro.analyze.tv`).

Two halves.  The *sabotage suite* hand-builds SSA, mutates it the way a
buggy pass would, and asserts the certifier rejects the mutation with
the documented rule id — each test is the mutation that proves one rule
pulls its weight.  The *certification suite* proves the honest pipeline
passes with zero findings everywhere the repo compiles code: every
bundled mini at -O2, the analyze driver, the fuzz oracle, and the CLI.
"""

from __future__ import annotations

import pytest

from repro.analyze import tv
from repro.analyze.driver import analyze_source
from repro.cli import main
from repro.errors import CompileError
from repro.isa.registers import Reg
from repro.lang import CompileStats, CompilerOptions, compile_source
from repro.lang import passes
from repro.lang.ir import IrFunction, IrInstr, VReg
from repro.lang.passes import hoist_invariants
from repro.lang.pipeline import run_pipeline
from repro.lang.ssa import build_ssa
from repro.workloads import MINIC_PROGRAMS


def v0_reg() -> VReg:
    return VReg(0, phys=int(Reg.V0))


def rules(cert) -> set:
    return {d.rule for d in cert.findings}


def find_instr(ssa, **attrs):
    for block in ssa.live_blocks():
        for instr in block.instrs:
            if all(getattr(instr, k) == v for k, v in attrs.items()):
                return block, instr
    raise AssertionError(f"no instruction matching {attrs}")


def straightline_func() -> IrFunction:
    """``return 2 + 3`` with the add left for the mid-end to fold."""
    f = IrFunction("f")
    a, b, c = (f.new_vreg() for _ in range(3))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=a, imm=2),
        IrInstr(kind="li", dst=b, imm=3),
        IrInstr(kind="bin", op="add", dst=c, a=a, b=b),
        IrInstr(kind="mov", dst=v0, a=c),
        IrInstr(kind="ret", args=[v0]),
    ]
    return f


def diamond_func(cond_imm: int = 1) -> IrFunction:
    f = IrFunction("f")
    c, x = f.new_vreg(), f.new_vreg()
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=c, imm=cond_imm),
        IrInstr(kind="br", a=c, sym="then"),
        IrInstr(kind="li", dst=x, imm=1),
        IrInstr(kind="jmp", sym="join"),
        IrInstr(kind="label", sym="then"),
        IrInstr(kind="li", dst=x, imm=2),
        IrInstr(kind="label", sym="join"),
        IrInstr(kind="mov", dst=v0, a=x),
        IrInstr(kind="ret", args=[v0]),
    ]
    return f


def loop_func() -> IrFunction:
    """A do-while loop with one loop-invariant multiply in the body."""
    f = IrFunction("f")
    n, i, a, inv, t = (f.new_vreg() for _ in range(5))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=n, imm=10),
        IrInstr(kind="li", dst=i, imm=0),
        IrInstr(kind="la_frame", dst=a, base=("frame", f.new_slot("p", 1))),
        IrInstr(kind="label", sym="head"),
        IrInstr(kind="bin", op="mul", dst=inv, a=a, b=a),
        IrInstr(kind="bini", op="add", dst=i, a=i, imm=1),
        IrInstr(kind="bin", op="slt", dst=t, a=i, b=n),
        IrInstr(kind="br", a=t, sym="head"),
        IrInstr(kind="mov", dst=v0, a=inv),
        IrInstr(kind="ret", args=[v0]),
    ]
    return f


def store_load_func() -> IrFunction:
    """Store a value to an unescaped slot, load it straight back."""
    f = IrFunction("f")
    val, out = f.new_vreg(), f.new_vreg()
    slot = f.new_slot("s", 1)
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=val, imm=5),
        IrInstr(kind="store", a=val, base=("frame", slot), imm=0),
        IrInstr(kind="load", dst=out, base=("frame", slot), imm=0),
        IrInstr(kind="mov", dst=v0, a=out),
        IrInstr(kind="ret", args=[v0]),
    ]
    return f


# -- sabotage suite: each mutation must be rejected with its rule id ----------


def test_sccp_accepts_true_constant_fold():
    ssa = build_ssa(straightline_func())
    snap = tv.snapshot(ssa)
    _, add = find_instr(ssa, kind="bin", op="add")
    add.kind, add.op, add.a, add.b, add.imm = "li", None, None, None, 5
    cert = tv.certify_pass("propagate_constants", snap, ssa)
    assert cert.ok and cert.events == 1


def test_sccp_rejects_wrong_constant():
    ssa = build_ssa(straightline_func())
    snap = tv.snapshot(ssa)
    _, add = find_instr(ssa, kind="bin", op="add")
    add.kind, add.op, add.a, add.b, add.imm = "li", None, None, None, 7
    cert = tv.certify_pass("propagate_constants", snap, ssa)
    assert "tv.sccp.const-fold" in rules(cert)


def test_sccp_rejects_branch_folded_the_wrong_way():
    # The lattice proves the branch *taken*; a pass claiming it fell
    # through (dropping the br) has miscompiled the function.
    ssa = build_ssa(diamond_func(cond_imm=1))
    snap = tv.snapshot(ssa)
    entry, br = find_instr(ssa, kind="br")
    entry.instrs.remove(br)
    cert = tv.certify_pass("propagate_constants", snap, ssa)
    assert "tv.sccp.branch-fold" in rules(cert)


def test_copy_prop_rejects_rewrite_to_unrelated_name():
    f = IrFunction("f")
    a, b, c, d, e = (f.new_vreg() for _ in range(5))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="la_frame", dst=a, base=("frame", f.new_slot("p", 1))),
        IrInstr(kind="la_frame", dst=e, base=("frame", f.new_slot("q", 1))),
        IrInstr(kind="mov", dst=b, a=a),
        IrInstr(kind="mov", dst=c, a=b),
        IrInstr(kind="bin", op="add", dst=d, a=c, b=c),
        IrInstr(kind="mov", dst=v0, a=d),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    snap = tv.snapshot(ssa)
    _, add = find_instr(ssa, kind="bin", op="add")
    la_frames = [i for blk in ssa.live_blocks() for i in blk.instrs
                 if i.kind == "la_frame"]
    add.a = la_frames[1].dst  # e: never on c's copy chain (c -> b -> a)
    cert = tv.certify_pass("copy_propagate", snap, ssa)
    assert "tv.copy.not-copy" in rules(cert)


def gvn_func() -> IrFunction:
    f = IrFunction("f")
    a, b, x, y, z = (f.new_vreg() for _ in range(5))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="la_frame", dst=a, base=("frame", f.new_slot("p", 1))),
        IrInstr(kind="la_frame", dst=b, base=("frame", f.new_slot("q", 1))),
        IrInstr(kind="bin", op="add", dst=x, a=a, b=b),
        IrInstr(kind="bin", op="add", dst=y, a=b, b=a),  # commuted dup
        IrInstr(kind="bin", op="xor", dst=z, a=x, b=y),
        IrInstr(kind="mov", dst=v0, a=z),
        IrInstr(kind="ret", args=[v0]),
    ]
    return f


def test_gvn_accepts_commuted_congruent_merge():
    ssa = build_ssa(gvn_func())
    snap = tv.snapshot(ssa)
    _, first_add = find_instr(ssa, kind="bin", op="add")
    dup = [i for blk in ssa.live_blocks() for i in blk.instrs
           if i.kind == "bin" and i.op == "add" and i is not first_add][0]
    dup.kind, dup.op, dup.a, dup.b = "mov", None, first_add.dst, None
    cert = tv.certify_pass("value_number", snap, ssa)
    assert cert.ok


def test_gvn_rejects_non_congruent_merge():
    ssa = build_ssa(gvn_func())
    snap = tv.snapshot(ssa)
    _, first_add = find_instr(ssa, kind="bin", op="add")
    _, xor = find_instr(ssa, kind="bin", op="xor")
    xor.kind, xor.op, xor.a, xor.b = "mov", None, first_add.dst, None
    cert = tv.certify_pass("value_number", snap, ssa)
    assert "tv.gvn.not-congruent" in rules(cert)


def test_fwd_rejects_forwarding_a_clobbered_store():
    f = IrFunction("f")
    v1, v2, out = (f.new_vreg() for _ in range(3))
    slot = f.new_slot("s", 1)
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=v1, imm=5),
        IrInstr(kind="li", dst=v2, imm=6),
        IrInstr(kind="store", a=v1, base=("frame", slot), imm=0),
        IrInstr(kind="store", a=v2, base=("frame", slot), imm=0),
        IrInstr(kind="load", dst=out, base=("frame", slot), imm=0),
        IrInstr(kind="mov", dst=v0, a=out),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    snap = tv.snapshot(ssa)
    _, first_li = find_instr(ssa, kind="li", imm=5)
    _, load = find_instr(ssa, kind="load")
    # Forward the *overwritten* value: the nearest store wrote v2.
    load.kind, load.a, load.base, load.imm = "mov", first_li.dst, None, None
    cert = tv.certify_pass("forward_stores", snap, ssa)
    assert "tv.fwd.stale" in rules(cert)


def test_dse_rejects_removing_a_live_store():
    ssa = build_ssa(store_load_func())
    snap = tv.snapshot(ssa)
    block, store = find_instr(ssa, kind="store")
    block.instrs.remove(store)
    cert = tv.certify_pass("eliminate_dead_stores", snap, ssa)
    assert "tv.dse.live-store" in rules(cert)


def test_dce_rejects_removing_a_used_definition():
    ssa = build_ssa(straightline_func())
    snap = tv.snapshot(ssa)
    block, add = find_instr(ssa, kind="bin", op="add")
    block.instrs.remove(add)  # its dst feeds the return mov
    cert = tv.certify_pass("eliminate_dead", snap, ssa)
    assert "tv.dce.live" in rules(cert)


def test_dce_rejects_removing_an_effectful_instruction():
    ssa = build_ssa(store_load_func())
    snap = tv.snapshot(ssa)
    block, store = find_instr(ssa, kind="store")
    block.instrs.remove(store)
    cert = tv.certify_pass("eliminate_dead", snap, ssa)
    assert "tv.dce.effectful" in rules(cert)


def test_licm_rejects_hoisting_a_loop_variant():
    ssa = build_ssa(loop_func())
    snap = tv.snapshot(ssa)
    assert hoist_invariants(ssa) == 1  # legitimately hoists the mul
    header = ssa.block_by_label("head")
    inc = [i for i in header.instrs if i.kind == "bini"][0]
    header.instrs.remove(inc)
    pre, mul = find_instr(ssa, kind="bin", op="mul")
    pre.instrs.insert(pre.instrs.index(mul) + 1, inc)  # i is loop-variant
    cert = tv.certify_pass("hoist_invariants", snap, ssa)
    assert "tv.licm.unsafe-hoist" in rules(cert)


def test_licm_rejects_hoisting_a_trapping_op():
    f = IrFunction("f")
    n, i, a, inv, q, t = (f.new_vreg() for _ in range(6))
    v0 = v0_reg()
    f.body = [
        IrInstr(kind="li", dst=n, imm=10),
        IrInstr(kind="li", dst=i, imm=0),
        IrInstr(kind="la_frame", dst=a, base=("frame", f.new_slot("p", 1))),
        IrInstr(kind="label", sym="head"),
        IrInstr(kind="bin", op="mul", dst=inv, a=a, b=a),
        IrInstr(kind="bin", op="div", dst=q, a=a, b=a),  # may trap
        IrInstr(kind="bini", op="add", dst=i, a=i, imm=1),
        IrInstr(kind="bin", op="slt", dst=t, a=i, b=n),
        IrInstr(kind="br", a=t, sym="head"),
        IrInstr(kind="mov", dst=v0, a=inv),
        IrInstr(kind="ret", args=[v0]),
    ]
    ssa = build_ssa(f)
    snap = tv.snapshot(ssa)
    assert hoist_invariants(ssa) == 1  # the mul, never the div
    header = ssa.block_by_label("head")
    div = [ins for ins in header.instrs if ins.op == "div"][0]
    header.instrs.remove(div)
    pre, mul = find_instr(ssa, kind="bin", op="mul")
    pre.instrs.insert(pre.instrs.index(mul) + 1, div)
    cert = tv.certify_pass("hoist_invariants", snap, ssa)
    assert "tv.licm.trapping" in rules(cert)


def test_unjustified_insertion_is_flagged():
    ssa = build_ssa(diamond_func())
    snap = tv.snapshot(ssa)
    entry = ssa.blocks[0]
    entry.instrs.insert(
        0, IrInstr(kind="li", dst=ssa.func.new_vreg(), imm=1))
    cert = tv.certify_pass("copy_propagate", snap, ssa)
    assert "tv.diff.unjustified" in rules(cert)


def test_wellformedness_catches_duplicate_definition():
    ssa = build_ssa(diamond_func())
    snap = tv.snapshot(ssa)
    entry = ssa.blocks[0]
    dup = entry.instrs[0].dst
    entry.instrs.insert(1, IrInstr(kind="li", dst=dup, imm=9))
    cert = tv.certify_pass("eliminate_dead", snap, ssa)
    assert "tv.wf.ssa" in rules(cert)


def test_every_finding_carries_a_documented_rule_id():
    # PassCertificate.fail asserts membership; pin the table itself so a
    # rule can't be dropped while call sites still reference it.
    for rule, doc in tv.RULES.items():
        assert rule.startswith("tv.") and doc


# -- pipeline wiring: certificates, lying passes, the fixpoint cap ------------


def _lying_pass():
    """A pass that changes one li's constant while claiming to hoist."""
    fired = []

    def evil(ssa):
        if fired:
            return 0
        for block in ssa.live_blocks():
            for instr in block.instrs:
                if instr.kind == "li" and instr.dst is not None \
                        and not instr.dst.precolored:
                    instr.imm = (instr.imm or 0) + 1
                    fired.append(True)
                    return 1
        return 0

    return evil


def test_pipeline_certifies_honest_passes(monkeypatch):
    stats = run_pipeline(loop_func(), 2, verify="tv")
    assert stats.certificates
    assert stats.certified
    assert stats.certificates[0].pass_name == "build"
    assert stats.certificates[-1].pass_name == "fixpoint"


def test_pipeline_catches_a_lying_pass(monkeypatch):
    monkeypatch.setattr(passes, "hoist_invariants", _lying_pass())
    stats = run_pipeline(loop_func(), 2, verify="tv")
    assert not stats.certified
    findings = stats.certificate_findings()
    assert any(d.rule == "tv.diff.unjustified" for d in findings)
    assert any(cert.pass_name == "licm" and not cert.ok
               for cert in stats.certificates)


def test_pipeline_fixpoint_cap_fails_loudly_on_oscillation(monkeypatch):
    def oscillate(ssa):
        for block in ssa.live_blocks():
            for instr in block.instrs:
                if instr.kind == "li" and instr.dst is not None \
                        and not instr.dst.precolored:
                    instr.imm = (instr.imm or 0) ^ 1
                    return 1
        return 0

    monkeypatch.setattr(passes, "hoist_invariants", oscillate)
    with pytest.raises(CompileError, match="did not converge"):
        run_pipeline(loop_func(), 2)


def test_bad_verify_mode_is_rejected():
    with pytest.raises(CompileError, match="bad verify mode"):
        run_pipeline(loop_func(), 2, verify="paranoid")
    with pytest.raises(CompileError, match="bad verify mode"):
        CompilerOptions(verify="paranoid")


# -- certification suite: the honest compiler is machine-checked --------------


def test_every_mini_certifies_clean_at_o2():
    for name, (source, _scale) in sorted(MINIC_PROGRAMS.items()):
        stats = CompileStats()
        compile_source(source,
                       CompilerOptions(source_name=name, opt_level=2,
                                       verify="tv"),
                       stats=stats)
        bad = [cert for _f, cert in stats.certificates if not cert.ok]
        assert stats.certificates, name
        assert not bad, (name, [c.findings[:3] for c in bad])
        # Satellite: pipeline counters must reach CompileStats on every
        # mini — the O2 mid-end is demonstrably on, not silently skipped.
        assert stats.ssa_phis > 0, name
        assert stats.ops_folded + stats.ops_removed > 0, name


def _assert_snap_equal(snap, fresh) -> None:
    assert snap.fields == fresh.fields
    assert snap.raw == fresh.raw
    assert snap.block_of == fresh.block_of
    assert snap.pos_of == fresh.pos_of
    assert snap.phi_args == fresh.phi_args
    assert snap.phi_dst == fresh.phi_dst
    assert snap.phi_block == fresh.phi_block
    assert snap.labels == fresh.labels
    assert set(snap.blocks) == set(fresh.blocks)
    for index, bs in snap.blocks.items():
        fb = fresh.blocks[index]
        assert (bs.label, bs.succ, bs.pred) == (fb.label, fb.succ, fb.pred)
        assert bs.instr_ids == fb.instr_ids
        assert bs.phi_ids == fb.phi_ids
        assert bs.raw0 == fb.raw0
        assert bs.args0 == fb.args0
    # apply_diff may keep stale def_of entries for removed names (they
    # can no longer be referenced); every *live* definition must agree.
    for rid, where in fresh.def_of.items():
        assert snap.def_of.get(rid) == where


def test_incrementally_updated_snapshot_matches_fresh(monkeypatch):
    """``apply_diff`` must leave the snapshot bit-identical to a rebuild.

    This is the invariant the pipeline's snapshot-reuse fast path rests
    on; a drift here silently weakens every later certificate.
    """
    orig = tv.apply_diff
    checked = []

    def checking(snap, ssa, d):
        out = orig(snap, ssa, d)
        _assert_snap_equal(snap, tv.snapshot(ssa))
        checked.append(1)
        return out

    monkeypatch.setattr(tv, "apply_diff", checking)
    for name in ("mini.qsort", "mini.matmul"):
        source, _scale = MINIC_PROGRAMS[name]
        compile_source(source, CompilerOptions(opt_level=2, verify="tv"),
                       stats=CompileStats())
    assert checked


LOOPY = """
int main() {
    int total = 0;
    int i;
    for (i = 1; i <= 10; i++) total += i;
    print(total);
    return 0;
}
"""


def test_tv_oracle_is_registered_and_clean_on_honest_compiler():
    from repro.fuzz.oracles import ALL_ORACLES, check_tv, run_oracles

    assert "tv" in ALL_ORACLES
    assert check_tv(LOOPY, "loopy") == []
    assert run_oracles(LOOPY, "loopy", oracles=("tv",)) == []


def test_tv_oracle_flags_a_sabotaged_pass(monkeypatch):
    from repro.fuzz.oracles import check_tv

    monkeypatch.setattr(passes, "hoist_invariants", _lying_pass())
    divergences = check_tv(LOOPY, "loopy")
    assert divergences
    assert all(d.oracle == "tv" for d in divergences)
    assert any("tv." in d.detail for d in divergences)


def test_analyze_source_merges_certificate_metrics():
    report = analyze_source(LOOPY, name="loopy", static_only=True,
                            verify="tv")
    assert report.ok
    assert report.metrics["tv.certificates"] > 0
    assert report.metrics["tv.findings"] == 0
    assert report.metrics["tv.certified"] == 1.0


def test_analyze_source_without_verify_has_no_tv_metrics():
    report = analyze_source(LOOPY, name="loopy", static_only=True)
    assert "tv.certificates" not in report.metrics


# -- CLI ----------------------------------------------------------------------


def test_cli_analyze_tv_flag_reports_metrics(capsys):
    assert main(["analyze", "mini.stencil", "--static-only", "--tv"]) == 0
    out = capsys.readouterr().out
    assert "tv.certificates" in out
    assert "tv.certified" in out


def test_cli_fuzz_accepts_tv_oracle(capsys):
    assert main(["fuzz", "--count", "2", "--seed", "7",
                 "--oracle", "tv"]) == 0


@pytest.mark.parametrize("level", ("O3", "Ox"))
def test_cli_rejects_unknown_opt_levels(level, capsys):
    assert main(["analyze", "mini.stencil", "--static-only",
                 "-O", level]) == 1
    err = capsys.readouterr().err
    assert "accepted levels are O0, O1, and O2" in err


def test_cli_accepts_each_known_opt_level(capsys):
    for level in ("O0", "O1", "O2", "2"):
        assert main(["analyze", "mini.stencil", "--static-only",
                     "-O", level]) == 0
        capsys.readouterr()

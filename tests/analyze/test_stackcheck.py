"""The stack-discipline verifier: clean on real output, and each
mutation class it exists for is actually caught.

The mutation tests compile a healthy program and then corrupt the
*compiled* image — a broken prologue constant, an out-of-frame access,
a corrupted slot map — exactly the miscompiles the verifier gates
against.
"""

import pytest

from repro.analyze.machine import function_cfg, iter_frames
from repro.analyze.stackcheck import (check_frame_metadata, check_function,
                                      check_program)
from repro.isa.frames import FrameInfo, SlotInfo
from repro.isa.opcodes import Fmt, Opcode
from repro.isa.registers import Reg
from repro.lang import CompilerOptions, compile_source

SP = int(Reg.SP)
RA = int(Reg.RA)

#: A program with calls, callee-saves, local arrays, an addressed scalar
#: (to force direct sp-relative slot accesses), and globals — every frame
#: region the verifier knows about is exercised.
SOURCE = """
int g[8];

int sum(int *p, int n) {
    int s = 0;
    int i;
    for (i = 0; i < n; i++) s += p[i];
    return s;
}

void bump(int *p) { *p += 1; }

int main() {
    int x[8];
    int y = 3;
    int i;
    for (i = 0; i < 8; i++) { x[i] = i; g[i] = i + 1; }
    bump(&y);
    print(sum(x, 8) + sum(g, 8) + y);
    return 0;
}
"""


@pytest.fixture
def program():
    return compile_source(SOURCE, CompilerOptions(source_name="stack.mc"))


def rules(diags, severity="error"):
    return {d.rule for d in diags if d.severity == severity}


def body_of(program, name):
    frame = program.frames[name]
    return frame, program.instructions[frame.code_start:frame.code_end]


# ---------------------------------------------------------------------------
# healthy output verifies clean
# ---------------------------------------------------------------------------

def test_compiled_program_verifies_clean(program):
    diags, cfgs = check_program(program)
    assert diags == []
    assert set(cfgs) == set(program.frames)


def test_every_frame_has_sane_metadata(program):
    for frame in iter_frames(program):
        assert check_frame_metadata(frame) == []
        assert 0 <= frame.code_start < frame.code_end
    # main calls sum, so it must park $ra in the save area.
    main = program.frames["main"]
    assert main.saves_ra and RA in main.save_offsets


def test_workload_verifies_clean():
    from repro.workloads.minic import minic_source

    program = compile_source(minic_source("mini.qsort"),
                             CompilerOptions(source_name="mini.qsort"))
    diags, _ = check_program(program)
    assert diags == []


# ---------------------------------------------------------------------------
# mutation: a deliberately broken prologue
# ---------------------------------------------------------------------------

def test_broken_prologue_constant_is_caught(program):
    frame, body = body_of(program, "main")
    prologue = next(ins for ins in body
                    if ins.op is Opcode.ADDI and ins.rd == SP
                    and ins.rs == SP and ins.imm < 0)
    prologue.imm -= 8  # frame set up 8 bytes too deep
    diags = check_function(program, frame)
    found = rules(diags)
    assert "stack.sp-adjust" in found
    # With $sp off by 8, the return can no longer tear down to delta 0.
    assert "stack.return-with-frame" in found


def test_missing_epilogue_is_caught(program):
    frame, body = body_of(program, "main")
    epilogue = next(ins for ins in body
                    if ins.op is Opcode.ADDI and ins.rd == SP
                    and ins.rs == SP and ins.imm > 0)
    epilogue.imm = 0  # frame never torn down
    diags = check_function(program, frame)
    assert "stack.return-with-frame" in rules(diags)


def test_rogue_sp_write_is_caught(program):
    frame, body = body_of(program, "sum")
    # Turn some ordinary ALU instruction into a write of $sp.
    victim = next(ins for ins in body
                  if ins.op is Opcode.ADDI and ins.rd not in (SP, 0)
                  and ins.rs not in (SP,))
    victim.rd = SP
    diags = check_function(program, frame)
    assert "stack.sp-write" in rules(diags)


# ---------------------------------------------------------------------------
# mutation: an out-of-frame spill/local access
# ---------------------------------------------------------------------------

def _slot_access(frame, body, store=None):
    """An sp-relative access that targets a declared local/spill slot."""
    for ins in body:
        if ins.op.fmt is not Fmt.MEM or ins.rs != SP:
            continue
        if store is not None and ins.op.is_store != store:
            continue
        if any(slot.offset <= ins.imm < slot.end for slot in frame.slots):
            return ins
    raise AssertionError("no sp-relative slot access found")


def test_out_of_frame_access_is_caught(program):
    frame, body = body_of(program, "main")
    access = _slot_access(frame, body)
    access.imm = frame.frame_size + 64  # beyond frame + incoming args
    diags = check_function(program, frame)
    assert "stack.out-of-frame" in rules(diags)


def test_access_between_regions_is_caught():
    # The SSA pipeline (the O2 default) packs main's frame completely —
    # no undeclared word left to point the mutated access at — so this
    # test compiles at O1, whose frame keeps an alignment hole.
    program = compile_source(
        SOURCE, CompilerOptions(source_name="stack.mc", opt_level=1))
    frame, body = body_of(program, "main")
    access = _slot_access(frame, body)
    # An aligned offset inside the frame that hits no declared region:
    taken = [(s.offset, s.end) for s in frame.slots]
    taken += [(off, off + 4) for off in frame.save_offsets.values()]
    taken.append((0, 4 * frame.outgoing_words))
    hole = next(off for off in range(0, frame.frame_size, 4)
                if not any(lo <= off < hi for lo, hi in taken))
    access.imm = hole
    diags = check_function(program, frame)
    assert "stack.out-of-frame" in rules(diags)


def test_corrupted_slot_metadata_is_caught(program):
    frame, _ = body_of(program, "main")
    victim = next(s for s in frame.slots if not s.is_spill)
    victim.offset = frame.frame_size  # slot now ends past the frame
    found = rules(check_frame_metadata(frame))
    assert "frame.region-out-of-bounds" in found


def test_overlapping_slot_metadata_is_caught(program):
    frame, _ = body_of(program, "main")
    slots = sorted(frame.slots, key=lambda s: s.offset)
    assert len(slots) >= 2
    slots[1].offset = slots[0].offset  # two slots on the same bytes
    assert "frame.overlap" in rules(check_frame_metadata(frame))


def test_unaligned_frame_size_is_caught():
    frame = FrameInfo("f", frame_size=12, slots=[], save_offsets={},
                      saves_ra=False, outgoing_words=0, incoming_words=0,
                      code_start=0, code_end=1)
    assert "frame.unaligned" in rules(check_frame_metadata(frame))


def test_missing_ra_slot_is_caught():
    frame = FrameInfo("f", frame_size=16, slots=[], save_offsets={},
                      saves_ra=True, outgoing_words=0, incoming_words=0,
                      code_start=0, code_end=1)
    assert "frame.missing-ra-slot" in rules(check_frame_metadata(frame))


# ---------------------------------------------------------------------------
# mutation: the callee-save protocol
# ---------------------------------------------------------------------------

def test_unrestored_callee_save_is_caught(program):
    frame, body = body_of(program, "main")
    saved = [reg for reg in frame.save_offsets if reg != RA]
    if not saved:
        pytest.skip("main spills no callee-saved register here")
    reg, offset = saved[0], frame.save_offsets[saved[0]]
    restore = next(ins for ins in body
                   if ins.op.is_load and ins.rs == SP and ins.imm == offset)
    # Retarget the restore at a scratch register: the slot is read but
    # the callee-saved register never gets its value back.
    restore.rd = int(Reg.T0)
    diags = check_function(program, frame)
    found = rules(diags)
    assert "stack.unrestored-callee-saved" in found
    assert "stack.save-slot-misuse" in found


def test_ra_save_slot_clobber_is_caught(program):
    frame, body = body_of(program, "main")
    offset = frame.save_offsets[RA]
    save = next(ins for ins in body
                if ins.op.is_store and ins.rs == SP and ins.imm == offset)
    save.rt = int(Reg.T1)  # parks a scratch register over $ra's slot
    diags = check_function(program, frame)
    assert "stack.save-slot-misuse" in rules(diags)


# ---------------------------------------------------------------------------
# structural checks
# ---------------------------------------------------------------------------

def test_branch_out_of_function_is_caught(program):
    frame, body = body_of(program, "sum")
    branch = next(ins for ins in body
                  if ins.op in (Opcode.BEQ, Opcode.BNE, Opcode.BLEZ,
                                Opcode.BGTZ, Opcode.BLTZ, Opcode.BGEZ,
                                Opcode.J))
    # Point the branch into the next function. ``label`` must go too:
    # Program.resolve() re-derives ``imm`` from it on every call.
    branch.label = None
    branch.imm = frame.code_end + 5
    _, diags = function_cfg(program, frame)
    assert "cfg.branch-out-of-function" in rules(diags)


def test_overlapping_code_extents_are_caught(program):
    frame = program.frames["sum"]
    frame.code_start -= 2  # claims the tail of the previous function
    diags, _ = check_program(program)
    assert "frame.code-overlap" in rules(diags)

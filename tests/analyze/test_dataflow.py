"""Tests for the generic CFG / dominator / dataflow machinery."""

from repro.analyze.cfg import CFG, build_blocks, dominates, dominators
from repro.analyze.dataflow import DataflowProblem, solve


def diamond():
    """Blocks 0 -> {1, 2} -> 3 over 8 dummy instructions."""
    instrs = [("nop",)] * 8
    cfg = CFG(instrs, build_blocks(instrs, {2, 4, 6}))
    cfg.add_edge(0, 1)
    cfg.add_edge(0, 2)
    cfg.add_edge(1, 3)
    cfg.add_edge(2, 3)
    return cfg


def loop():
    """0 -> 1, 1 -> 2, 2 -> 1 (back edge), 1 -> 3."""
    instrs = [("nop",)] * 8
    cfg = CFG(instrs, build_blocks(instrs, {2, 4, 6}))
    cfg.add_edge(0, 1)
    cfg.add_edge(1, 2)
    cfg.add_edge(2, 1)
    cfg.add_edge(1, 3)
    return cfg


# ---------------------------------------------------------------------------
# CFG structure
# ---------------------------------------------------------------------------

def test_build_blocks_cuts_at_leaders():
    instrs = list(range(6))
    blocks = build_blocks(instrs, {3, 5})
    assert [(b.start, b.end) for b in blocks] == [(0, 3), (3, 5), (5, 6)]


def test_build_blocks_ignores_out_of_range_leaders():
    instrs = list(range(4))
    blocks = build_blocks(instrs, {-1, 2, 99})
    assert [(b.start, b.end) for b in blocks] == [(0, 2), (2, 4)]


def test_build_blocks_empty_sequence():
    assert build_blocks([], set()) == []


def test_add_edge_is_idempotent():
    cfg = diamond()
    before = list(cfg.blocks[0].succ)
    cfg.add_edge(0, 1)
    assert cfg.blocks[0].succ == before
    assert cfg.blocks[1].pred.count(0) == 1


def test_reachable_excludes_orphan_blocks():
    instrs = [("nop",)] * 6
    cfg = CFG(instrs, build_blocks(instrs, {2, 4}))
    cfg.add_edge(0, 2)  # block 1 has no incoming edge
    assert cfg.reachable() == {0, 2}


def test_rpo_starts_at_entry_and_respects_edges():
    cfg = diamond()
    order = cfg.rpo()
    assert order[0] == 0
    assert order.index(1) < order.index(3)
    assert order.index(2) < order.index(3)


# ---------------------------------------------------------------------------
# dominators
# ---------------------------------------------------------------------------

def test_dominators_diamond():
    idom = dominators(diamond())
    assert idom[0] == 0
    assert idom[1] == 0
    assert idom[2] == 0
    # The join point is dominated by the fork, not by either branch.
    assert idom[3] == 0
    assert dominates(idom, 0, 3)
    assert not dominates(idom, 1, 3)
    assert not dominates(idom, 2, 3)


def test_dominators_loop():
    idom = dominators(loop())
    assert idom == [0, 0, 1, 1]
    # The loop header dominates the body and the exit despite the
    # back edge.
    assert dominates(idom, 1, 2)
    assert dominates(idom, 1, 3)
    assert not dominates(idom, 2, 3)


def test_dominators_unreachable_block_is_none():
    instrs = [("nop",)] * 4
    cfg = CFG(instrs, build_blocks(instrs, {2}))
    # No edge into block 1.
    assert dominators(cfg) == [0, None]


# ---------------------------------------------------------------------------
# the fixpoint solver
# ---------------------------------------------------------------------------

class MustDefined(DataflowProblem):
    """Forward must-defined variables; instrs are ("def", var) tuples."""

    direction = "forward"

    def boundary_state(self):
        return frozenset()

    def initial_state(self):
        return None

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def transfer(self, index, instr, state):
        if state is None:
            return None
        if instr[0] == "def":
            return state | {instr[1]}
        return state


class LiveVars(DataflowProblem):
    """Backward liveness; instrs are ("use", var) / ("def", var)."""

    direction = "backward"

    def boundary_state(self):
        return frozenset()

    def initial_state(self):
        return None

    def meet(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a | b

    def transfer(self, index, instr, state):
        if state is None:
            return None
        if instr[0] == "use":
            return state | {instr[1]}
        if instr[0] == "def":
            return state - {instr[1]}
        return state


def _diamond_with(instrs):
    cfg = CFG(instrs, build_blocks(instrs, {2, 4, 6}))
    cfg.add_edge(0, 1)
    cfg.add_edge(0, 2)
    cfg.add_edge(1, 3)
    cfg.add_edge(2, 3)
    return cfg


def test_forward_meet_is_intersection_at_join():
    # 'x' defined on one branch only, 'y' on both.
    instrs = [("nop",), ("nop",),
              ("def", "x"), ("def", "y"),   # block 1
              ("def", "y"), ("nop",),       # block 2
              ("nop",), ("nop",)]           # block 3 (join)
    solution = solve(_diamond_with(instrs), MustDefined())
    assert solution.block_in[3] == frozenset({"y"})


def test_forward_instruction_states_walk_the_block():
    instrs = [("def", "a"), ("def", "b"),
              ("nop",), ("nop",), ("nop",), ("nop",), ("nop",), ("nop",)]
    solution = solve(_diamond_with(instrs), MustDefined())
    states = list(solution.instruction_states(0))
    # Forward: the yielded state is the one *before* each instruction.
    assert states[0][2] == frozenset()
    assert states[1][2] == frozenset({"a"})
    assert solution.block_out[0] == frozenset({"a", "b"})


def test_backward_liveness_through_a_join():
    instrs = [("nop",), ("nop",),           # block 0
              ("def", "x"), ("nop",),      # block 1 kills x
              ("nop",), ("nop",),           # block 2
              ("use", "x"), ("nop",)]       # block 3 uses x
    solution = solve(_diamond_with(instrs), LiveVars())
    # Backward solution: block_out is the state at the block *start*.
    assert "x" in solution.block_out[2]   # live through the empty branch
    assert "x" not in solution.block_out[1]  # killed by the def
    assert "x" in solution.block_in[0]    # live at end of block 0 (join)


def test_backward_instruction_states_yield_live_after():
    instrs = [("use", "x"), ("def", "x"),
              ("nop",), ("nop",), ("nop",), ("nop",),
              ("use", "x"), ("nop",)]
    solution = solve(_diamond_with(instrs), LiveVars())
    states = {i: s for i, _, s in solution.instruction_states(0)}
    # The state yielded for an instruction is the live-*after* set.
    assert "x" in states[1]       # block 3 reads x downstream of the def
    assert "x" not in states[0]   # the def at 1 kills it before any use
    # At the block start the use at 0 makes x live again.
    assert "x" in solution.block_out[0]


def test_loop_reaches_fixpoint():
    # A def inside the loop body must become must-defined at the exit
    # only if it is on *every* path; here the loop may run zero times.
    instrs = [("nop",), ("nop",),
              ("nop",), ("nop",),           # block 1: header
              ("def", "x"), ("nop",),       # block 2: body
              ("nop",), ("nop",)]           # block 3: exit
    cfg = CFG(instrs, build_blocks(instrs, {2, 4, 6}))
    cfg.add_edge(0, 1)
    cfg.add_edge(1, 2)
    cfg.add_edge(2, 1)
    cfg.add_edge(1, 3)
    solution = solve(cfg, MustDefined())
    assert solution.block_in[3] == frozenset()
    # Inside the body, x from a previous iteration is not guaranteed
    # either (first iteration).
    assert solution.block_in[2] == frozenset()


def test_solver_on_empty_cfg():
    cfg = CFG([], [])
    solution = solve(cfg, MustDefined())
    assert solution.block_in == [] and solution.block_out == []

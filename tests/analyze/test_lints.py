"""IR lints over hand-built linear IR: each rule fires on its target
pattern and stays quiet on the sound variant.
"""

from repro.analyze.lints import lint_function
from repro.lang.ir import IrFunction, IrInstr
from repro.lang import CompilerOptions, compile_source


def rules(diags):
    return [d.rule for d in diags]


# ---------------------------------------------------------------------------
# ir.use-before-init
# ---------------------------------------------------------------------------

def test_vreg_read_before_any_write_is_flagged():
    f = IrFunction("f")
    v, w = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("bin", dst=w, a=v, b=v, op="add"))  # v never written
    f.emit(IrInstr("ret"))
    assert "ir.use-before-init" in rules(lint_function("f", f.body))


def test_vreg_initialised_on_one_path_only_is_flagged():
    f = IrFunction("f")
    c, v, w = f.new_vreg(), f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("li", dst=c, imm=1))
    f.emit(IrInstr("br", a=c, sym="skip"))
    f.emit(IrInstr("li", dst=v, imm=7))      # only on the fallthrough path
    f.emit(IrInstr("label", sym="skip"))
    f.emit(IrInstr("mov", dst=w, a=v))       # may read garbage
    f.emit(IrInstr("ret"))
    assert "ir.use-before-init" in rules(lint_function("f", f.body))


def test_vreg_initialised_on_both_paths_is_clean():
    f = IrFunction("f")
    c, v, w = f.new_vreg(), f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("li", dst=c, imm=1))
    f.emit(IrInstr("br", a=c, sym="other"))
    f.emit(IrInstr("li", dst=v, imm=7))
    f.emit(IrInstr("jmp", sym="join"))
    f.emit(IrInstr("label", sym="other"))
    f.emit(IrInstr("li", dst=v, imm=9))
    f.emit(IrInstr("label", sym="join"))
    f.emit(IrInstr("mov", dst=w, a=v))
    f.emit(IrInstr("ret"))
    assert "ir.use-before-init" not in rules(lint_function("f", f.body))


def test_slot_loaded_before_any_store_is_flagged():
    f = IrFunction("f")
    slot = f.new_slot("x", 1)
    v = f.new_vreg()
    f.emit(IrInstr("load", dst=v, base=("frame", slot), imm=0))
    f.emit(IrInstr("ret"))
    assert "ir.use-before-init" in rules(lint_function("f", f.body))


def test_escaped_slot_may_be_initialised_by_callee():
    # &x handed to a call: the callee may store through the pointer, so
    # a later load is not use-before-init.
    f = IrFunction("f")
    slot = f.new_slot("x", 1)
    p, v = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("la_frame", dst=p, base=("frame", slot)))
    f.emit(IrInstr("call", sym="@init", args=[p]))
    f.emit(IrInstr("load", dst=v, base=("frame", slot), imm=0))
    f.emit(IrInstr("ret"))
    assert "ir.use-before-init" not in rules(lint_function("f", f.body))


# ---------------------------------------------------------------------------
# ir.dead-store
# ---------------------------------------------------------------------------

def test_store_never_read_is_flagged():
    f = IrFunction("f")
    slot = f.new_slot("x", 1)
    v = f.new_vreg()
    f.emit(IrInstr("li", dst=v, imm=5))
    f.emit(IrInstr("store", a=v, base=("frame", slot), imm=0))
    f.emit(IrInstr("ret"))
    assert "ir.dead-store" in rules(lint_function("f", f.body))


def test_store_with_later_load_is_clean():
    f = IrFunction("f")
    slot = f.new_slot("x", 1)
    v, w = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("li", dst=v, imm=5))
    f.emit(IrInstr("store", a=v, base=("frame", slot), imm=0))
    f.emit(IrInstr("load", dst=w, base=("frame", slot), imm=0))
    f.emit(IrInstr("ret"))
    assert "ir.dead-store" not in rules(lint_function("f", f.body))


def test_store_overwritten_before_read_is_flagged():
    f = IrFunction("f")
    slot = f.new_slot("x", 1)
    v, w = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("li", dst=v, imm=5))
    f.emit(IrInstr("store", a=v, base=("frame", slot), imm=0))  # dead
    f.emit(IrInstr("store", a=v, base=("frame", slot), imm=0))
    f.emit(IrInstr("load", dst=w, base=("frame", slot), imm=0))
    f.emit(IrInstr("ret"))
    diags = [d for d in lint_function("f", f.body)
             if d.rule == "ir.dead-store"]
    assert len(diags) == 1
    assert diags[0].index == 1  # the first store, not the second


def test_store_to_escaped_slot_is_never_dead():
    f = IrFunction("f")
    slot = f.new_slot("x", 1)
    p, v = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("la_frame", dst=p, base=("frame", slot)))
    f.emit(IrInstr("li", dst=v, imm=5))
    f.emit(IrInstr("store", a=v, base=("frame", slot), imm=0))
    f.emit(IrInstr("call", sym="@peek", args=[p]))  # may read through p
    f.emit(IrInstr("ret"))
    assert "ir.dead-store" not in rules(lint_function("f", f.body))


def test_store_read_only_on_one_path_is_live():
    f = IrFunction("f")
    slot = f.new_slot("x", 1)
    c, v, w = f.new_vreg(), f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("li", dst=c, imm=1))
    f.emit(IrInstr("li", dst=v, imm=5))
    f.emit(IrInstr("store", a=v, base=("frame", slot), imm=0))
    f.emit(IrInstr("br", a=c, sym="skip"))
    f.emit(IrInstr("load", dst=w, base=("frame", slot), imm=0))
    f.emit(IrInstr("label", sym="skip"))
    f.emit(IrInstr("ret"))
    assert "ir.dead-store" not in rules(lint_function("f", f.body))


# ---------------------------------------------------------------------------
# ir.unreachable
# ---------------------------------------------------------------------------

def test_code_after_unconditional_jump_is_flagged():
    f = IrFunction("f")
    v, w = f.new_vreg(), f.new_vreg()
    f.emit(IrInstr("li", dst=v, imm=1))
    f.emit(IrInstr("jmp", sym="end"))
    f.emit(IrInstr("li", dst=w, imm=2))      # unreachable
    f.emit(IrInstr("jmp", sym="end"))
    f.emit(IrInstr("label", sym="end"))
    f.emit(IrInstr("ret"))
    assert "ir.unreachable" in rules(lint_function("f", f.body))


def test_compiler_implicit_return_tail_is_not_flagged():
    # Lowering always appends ``li 0; mov $v0; ret`` before the exit
    # label; when every source path returns it is dead — but it is the
    # compiler's dead code, not the user's.
    from repro.isa.registers import Reg
    from repro.lang.ir import VReg

    f = IrFunction("f")
    v, r = f.new_vreg(), f.new_vreg()
    v0 = VReg(0, phys=int(Reg.V0))
    f.emit(IrInstr("li", dst=v, imm=1))
    f.emit(IrInstr("mov", dst=v0, a=v))
    f.emit(IrInstr("ret", args=[v0]))
    f.emit(IrInstr("jmp", sym=f.exit_label))
    f.emit(IrInstr("li", dst=r, imm=0))
    f.emit(IrInstr("mov", dst=v0, a=r))
    f.emit(IrInstr("ret", args=[v0]))
    f.emit(IrInstr("label", sym=f.exit_label))
    assert "ir.unreachable" not in rules(lint_function("f", f.body))


def test_dangling_label_alone_is_not_flagged():
    f = IrFunction("f")
    v = f.new_vreg()
    f.emit(IrInstr("li", dst=v, imm=1))
    f.emit(IrInstr("jmp", sym="end"))
    f.emit(IrInstr("label", sym="orphan"))   # nothing jumps here... but
    f.emit(IrInstr("label", sym="end"))      # labels alone are not code
    f.emit(IrInstr("ret"))
    assert "ir.unreachable" not in rules(lint_function("f", f.body))


# ---------------------------------------------------------------------------
# end to end through the compiler
# ---------------------------------------------------------------------------

def test_compiled_source_dead_code_is_flagged():
    source = """
    int main() {
        int a[2];
        a[0] = 7;
        return 0;
        a[1] = 9;
    }
    """
    ir_map = {}
    compile_source(source, CompilerOptions(source_name="dead.mc",
                                           optimize=False), ir_out=ir_map)
    found = rules(lint_function("main", ir_map["main"].body))
    assert "ir.unreachable" in found


def test_compiled_clean_source_has_no_findings():
    source = """
    int main() {
        int a[2];
        a[0] = 7;
        a[1] = a[0] + 1;
        print(a[1]);
        return 0;
    }
    """
    ir_map = {}
    compile_source(source, CompilerOptions(source_name="clean.mc"),
                   ir_out=ir_map)
    assert lint_function("main", ir_map["main"].body) == []

"""Local-hint soundness: clean compiler output verifies, every class of
unsound tag is caught, and untagged-but-provable accesses are counted.

Mutations flip the ``local`` bit on instructions of a healthy compiled
image — the exact failure mode the LVAQ steering hardware cannot survive
(a mis-tagged access bypasses the main load/store queue's ordering).
"""

import pytest

from repro.analyze.driver import analyze_program
from repro.analyze.hints import check_hints, check_program_hints
from repro.isa.opcodes import Fmt
from repro.isa.registers import Reg
from repro.lang import CompilerOptions, compile_source
from repro.vm.machine import Machine

SP = int(Reg.SP)

SOURCE = """
int g[8];

void bump(int *p) { *p += 1; }

int main() {
    int x[4];
    int y = 0;
    int i;
    for (i = 0; i < 4; i++) { x[i] = i; g[i] = 2 * i; bump(&y); }
    print(x[3] + g[3] + y);
    return 0;
}
"""


@pytest.fixture
def program():
    return compile_source(SOURCE, CompilerOptions(source_name="hints.mc"))


def mem_accesses(program, name, local=None, sp_based=None):
    frame = program.frames[name]
    body = program.instructions[frame.code_start:frame.code_end]
    out = []
    for ins in body:
        if ins.op.fmt is not Fmt.MEM:
            continue
        if local is not None and ins.local is not local:
            continue
        if sp_based is not None and (ins.rs == SP) != sp_based:
            continue
        out.append(ins)
    return out


def rules(diags, severity="error"):
    return {d.rule for d in diags if d.severity == severity}


# ---------------------------------------------------------------------------
# clean output
# ---------------------------------------------------------------------------

def test_compiled_hints_verify_clean(program):
    diags, counts = check_program_hints(program)
    assert rules(diags) == set()
    assert counts["mem_total"] > 0
    # Stack traffic is tagged local, global traffic non-local.
    assert counts["hint_local"] > 0
    assert counts["hint_global"] > 0


def test_sp_relative_accesses_are_tagged_local(program):
    # Every direct sp-relative access (saves, restores, y) carries
    # local_hint=True out of codegen.
    for ins in mem_accesses(program, "main", sp_based=True):
        assert ins.local is True


# ---------------------------------------------------------------------------
# mutations: each unsound tagging is a hard error
# ---------------------------------------------------------------------------

def test_unsound_local_hint_is_caught(program):
    # A global (la-derived) access mis-tagged as a stack access.
    victim = next(iter(mem_accesses(program, "main", local=False)))
    victim.local = True
    diags, _ = check_hints(program, program.frames["main"])
    assert "hint.unsound-local" in rules(diags)


def test_unsound_global_hint_is_caught(program):
    # A provably-stack access mis-tagged as non-stack.
    victim = next(iter(mem_accesses(program, "main", sp_based=True)))
    victim.local = False
    diags, _ = check_hints(program, program.frames["main"])
    assert "hint.unsound-global" in rules(diags)


def test_unprovable_global_hint_is_a_warning_only(program):
    # bump() accesses through a pointer parameter: the base register is
    # R_UNKNOWN to the prover, and the compiler leaves it untagged.
    # Force-tagging it non-local is unprovable — a warning, not an error.
    victim = next(ins for ins in mem_accesses(program, "bump")
                  if ins.rs != SP and ins.local is None)
    victim.local = False
    diags, _ = check_hints(program, program.frames["bump"])
    assert rules(diags) == set()
    assert "hint.unprovable-global" in rules(diags, "warning")


def test_untagged_stack_access_counts_as_missed(program):
    victim = next(iter(mem_accesses(program, "main", sp_based=True)))
    victim.local = None
    diags, counts = check_hints(program, program.frames["main"])
    assert rules(diags) == set()  # sound, just wasteful
    assert counts["missed_local"] >= 1
    assert counts["hint_none"] >= 1


# ---------------------------------------------------------------------------
# the dynamic cross-check (ground truth from a real run)
# ---------------------------------------------------------------------------

def test_dynamic_crosscheck_clean_on_healthy_build(program):
    vm = Machine(program, trace=True)
    vm.run(max_instructions=200_000)
    assert vm.exit_code == 0
    report = analyze_program(program, trace=vm.trace, name="hints.mc")
    assert report.ok
    assert report.metrics["dynamic.unsound_hint_pcs"] == 0
    # bump()'s pointer access is ambiguous: the predictor handles it,
    # mispredicting only on the cold first sighting.
    assert report.metrics["dynamic.predictor_predictions"] >= 4
    assert report.metrics["dynamic.predictor_accuracy"] >= 0.5


def test_dynamic_crosscheck_catches_flipped_hint(program):
    victim = next(iter(mem_accesses(program, "main", local=False)))
    victim.local = True  # global access claiming to be stack
    vm = Machine(program, trace=True)
    vm.run(max_instructions=200_000)
    assert vm.exit_code == 0  # hints never change architectural results
    report = analyze_program(program, trace=vm.trace, name="hints.mc")
    found = {d.rule for d in report.errors}
    # Caught twice, independently: by the static prover and by the run.
    assert "hint.unsound-local" in found
    assert "hint.dynamic-unsound" in found
    assert report.metrics["dynamic.unsound_hint_pcs"] >= 1


def test_static_coverage_metrics_shape(program):
    report = analyze_program(program, name="hints.mc")
    assert report.ok
    total = report.metrics["static.mem_accesses"]
    tagged = (report.metrics["static.hint_local"]
              + report.metrics["static.hint_global"])
    untagged = report.metrics["static.hint_none"]
    assert total == tagged + untagged
    assert report.metrics["static.hint_coverage"] == tagged / total
    assert report.metrics["static.missed_local"] == 0

"""Integration: source code -> compiler -> VM -> timing simulator."""

import pytest

from repro.core import MachineConfig, Processor
from repro.lang import compile_source
from repro.vm import run_program

SOURCE = """
int table[256];

int mix(int a, int b) {
    int t0 = a * 31 + b;
    int t1 = t0 ^ (t0 >> 4);
    return t1 & 255;
}

int churn(int rounds) {
    int acc = 0;
    int i;
    for (i = 0; i < rounds; i++) {
        int h = mix(i, acc);
        table[h] = table[h] + 1;
        acc = (acc + table[h] + h) & 65535;
    }
    return acc;
}

int main() {
    print(churn(600));
    return 0;
}
"""


@pytest.fixture(scope="module")
def compiled_trace():
    vm, trace = run_program(compile_source(SOURCE))
    assert vm.exit_code == 0
    return vm, trace


def test_functional_result(compiled_trace):
    vm, _ = compiled_trace
    assert vm.stdout.isdigit()


def test_trace_has_both_streams(compiled_trace):
    _, trace = compiled_trace
    stats = trace.stats
    assert stats.local_refs > 0      # call save/restore traffic
    assert stats.mem_refs > stats.local_refs  # global table traffic


def test_timing_simulation_of_compiled_code(compiled_trace):
    _, trace = compiled_trace
    result = Processor(MachineConfig.baseline(2, 0)).run(trace.insts, "e2e")
    assert result.instructions == len(trace)
    assert 0.3 < result.ipc < 16


def test_decoupling_consistent_on_compiled_code(compiled_trace):
    """The decoupled machine must service exactly the same references."""
    _, trace = compiled_trace
    coupled = Processor(MachineConfig.baseline(2, 0)).run(trace.insts, "c")
    decoupled = Processor(MachineConfig.baseline(2, 2)).run(trace.insts, "d")
    c = decoupled.counters
    assert (c.get("lvaq.loads") + c.get("lsq.loads")
            == coupled.counters.get("lsq.loads"))
    assert (c.get("lvaq.stores") + c.get("lsq.stores")
            == coupled.counters.get("lsq.stores"))


def test_optimizations_never_break_completion(compiled_trace):
    _, trace = compiled_trace
    config = MachineConfig.baseline(2, 2, fast_forwarding=True, combining=4)
    result = Processor(config).run(trace.insts, "opt")
    assert result.instructions == len(trace)


def test_ambiguous_classification_handled(compiled_trace):
    """Compiled code contains pointer accesses classified at run time."""
    _, trace = compiled_trace
    result = Processor(MachineConfig.baseline(2, 2)).run(trace.insts, "amb")
    # every memory reference landed in exactly one queue
    c = result.counters
    total = (c.get("lvaq.loads") + c.get("lsq.loads")
             + c.get("lvaq.stores") + c.get("lsq.stores"))
    assert total == trace.stats.mem_refs

"""The paper's headline claims, verified at reduced scale.

Each test asserts one qualitative result from the evaluation section
(Section 4).  Trace lengths are reduced for test-suite runtime; the
benchmark harness reruns the same experiments at full scale.
"""

import pytest

from repro.core import MachineConfig, Processor
from repro.workloads.builder import build_trace

LENGTH = 40_000


def simulate(program, n, m, ff=False, comb=1, **mem):
    trace = build_trace(program, length=LENGTH, seed=1)
    config = MachineConfig.baseline(l1_ports=n, lvc_ports=m,
                                    fast_forwarding=ff, combining=comb,
                                    **mem)
    return Processor(config).run(trace.insts, program)


# -- Figure 5 -----------------------------------------------------------------

def test_bandwidth_saturates_with_ports():
    """(Fig 5) IPC grows monotonically with ports and flattens."""
    ipcs = [simulate("147.vortex", n, 0).ipc for n in (1, 2, 4, 16)]
    assert ipcs[0] < ipcs[1] < ipcs[2] <= ipcs[3] * 1.01
    # 4 ports are much closer to the limit than 1 port is
    assert ipcs[2] / ipcs[3] > 0.75
    assert ipcs[0] / ipcs[3] < 0.6


def test_li_and_vortex_most_bandwidth_sensitive():
    """(Fig 5) li/vortex lose more at 1 port than compress does."""
    def sensitivity(program):
        one = simulate(program, 1, 0).ipc
        limit = simulate(program, 16, 0).ipc
        return one / limit

    assert sensitivity("130.li") < sensitivity("129.compress")
    assert sensitivity("147.vortex") < sensitivity("129.compress")


# -- Figure 6 -----------------------------------------------------------------

def test_2kb_lvc_hit_rate_over_99_percent():
    """(Fig 6) A 2KB LVC exceeds 99% hit rate except for gcc."""
    for program in ("130.li", "147.vortex", "129.compress"):
        result = simulate(program, 3, 2)
        assert result.lvc_miss_rate < 0.01, program


def test_gcc_is_the_lvc_miss_outlier():
    gcc = simulate("126.gcc", 3, 2).lvc_miss_rate
    li = simulate("130.li", 3, 2).lvc_miss_rate
    assert gcc > 3 * li


# -- Figure 7 -----------------------------------------------------------------

def test_one_port_lvc_degrades_vortex():
    """(Fig 7) (N+1) loses IPC on the most local-heavy program."""
    base = simulate("147.vortex", 3, 0).ipc
    one_port = simulate("147.vortex", 3, 1).ipc
    assert one_port < base


def test_two_port_lvc_restores_and_beats():
    """(Fig 7) (N+2) beats (N+0)."""
    base = simulate("147.vortex", 3, 0).ipc
    two_port = simulate("147.vortex", 3, 2).ipc
    assert two_port > base


def test_lvc_ports_show_diminishing_returns():
    """(Fig 7) each extra LVC port helps less than the one before."""
    one = simulate("147.vortex", 3, 1).ipc
    two = simulate("147.vortex", 3, 2).ipc
    three = simulate("147.vortex", 3, 3).ipc
    sixteen = simulate("147.vortex", 3, 16).ipc
    assert two / one > three / two > sixteen / three
    assert sixteen / three < 1.15


# -- Table 3 ------------------------------------------------------------------

def test_fast_forwarding_speedups_small():
    """(Table 3) fast forwarding gives small speedups (paper: <= 3.9%)."""
    for program in ("124.m88ksim", "130.li"):
        base = simulate(program, 3, 2).ipc
        fast = simulate(program, 3, 2, ff=True).ipc
        assert -0.02 < fast / base - 1 < 0.08, program


def test_m88ksim_gains_nothing_from_fast_forwarding():
    """(Table 3) m88ksim's reuse distances are too long to forward."""
    base = simulate("124.m88ksim", 3, 2).ipc
    fast = simulate("124.m88ksim", 3, 2, ff=True).ipc
    assert abs(fast / base - 1) < 0.03


# -- Figure 8 -----------------------------------------------------------------

def test_combining_helps_most_at_one_port():
    """(Fig 8) two-way combining matters more at (3+1) than (3+2)."""
    gain_1port = (simulate("147.vortex", 3, 1, comb=2).ipc
                  / simulate("147.vortex", 3, 1).ipc)
    gain_2port = (simulate("147.vortex", 3, 2, comb=2).ipc
                  / simulate("147.vortex", 3, 2).ipc)
    assert gain_1port > gain_2port
    assert gain_1port > 1.02


# -- Figure 10 ----------------------------------------------------------------

def test_three_cycle_l1_loses_performance():
    """(Fig 10) a 3-cycle 4-port cache loses vs the 2-cycle one."""
    normal = simulate("099.go", 4, 0).ipc
    slow = simulate("099.go", 4, 0, l1_hit_latency=3).ipc
    assert slow < normal


def test_decoupled_2plus2_competitive_with_4plus0_integer():
    """(Fig 10) (2+2) with optimizations rivals (4+0) on integer code."""
    decoupled = simulate("147.vortex", 2, 2, ff=True, comb=2).ipc
    four_port = simulate("147.vortex", 4, 0).ipc
    assert decoupled > 0.9 * four_port


def test_fp_programs_gain_little_from_decoupling():
    """(Fig 10 / §4.3) FP local accesses are too poorly interleaved."""
    base = simulate("102.swim", 2, 0).ipc
    decoupled = simulate("102.swim", 2, 2, ff=True, comb=2).ipc
    assert decoupled / base < 1.10


# -- Figure 11 ----------------------------------------------------------------

def test_li_lvc_gain_shrinks_with_l1_ports():
    """(Fig 11) adding an LVC helps li hugely at N=2, little at N=4."""
    gain_n2 = (simulate("130.li", 2, 2, ff=True, comb=2).ipc
               / simulate("130.li", 2, 0).ipc)
    gain_n4 = (simulate("130.li", 4, 2, ff=True, comb=2).ipc
               / simulate("130.li", 4, 0).ipc)
    assert gain_n2 > 1.15
    assert gain_n4 < gain_n2 - 0.1


# -- Section 4.2.1 -------------------------------------------------------------

def test_lvc_reduces_l2_traffic_for_li():
    """(§4.2.1) li's stack/data conflicts shrink with an LVC."""
    base = simulate("130.li", 3, 0).l2_traffic
    with_lvc = simulate("130.li", 3, 2).l2_traffic
    assert with_lvc <= base


# -- Section 4.3 ---------------------------------------------------------------

def test_lvc_latency_insensitive():
    """(§4.3) a 2-cycle LVC performs nearly the same as a 1-cycle one."""
    fast = simulate("147.vortex", 3, 2, ff=True, comb=2).ipc
    slow = simulate("147.vortex", 3, 2, ff=True, comb=2,
                    lvc_hit_latency=2).ipc
    assert abs(fast - slow) / fast < 0.05

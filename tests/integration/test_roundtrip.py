"""Toolchain round trip: compile -> disassemble -> reassemble -> run.

The disassembler's output must be valid assembler input, and the
reassembled program must behave identically — this locks the three tools
(compiler, disassembler, assembler) to one consistent ISA surface.
"""

import pytest

from repro.asm import assemble
from repro.errors import ReproError
from repro.isa.disasm import disassemble_program
from repro.lang import compile_source
from repro.vm import run_program

PROGRAMS = {
    "arith": """
int main() {
    int acc = 0;
    int i;
    for (i = 1; i <= 20; i++) acc += i * i % 7;
    print(acc);
    return 0;
}
""",
    "calls": """
int add3(int a, int b, int c) { return a + b + c; }
int twice(int x) { return add3(x, x, 0); }
int main() { print(twice(add3(1, 2, 3))); return 0; }
""",
    "memory": """
int g[8];
int main() {
    int local[8];
    int i;
    for (i = 0; i < 8; i++) { local[i] = i; g[i] = i * 2; }
    int s = 0;
    for (i = 0; i < 8; i++) s += local[i] + g[i];
    print(s);
    return 0;
}
""",
    "floats": """
float half(float x) { return x / 2.0; }
int main() { printfl(half(7.0)); return 0; }
""",
}


def _data_section(program):
    """Render the program's data segment back to assembler directives."""
    lines = [".data"]
    for item in program.data:
        if item.element_size == 1:
            values = ", ".join(str(int(v)) for v in item.values)
            lines.append(f"{item.name}: .byte {values}")
        elif any(isinstance(v, float) for v in item.values):
            values = ", ".join(str(float(v)) for v in item.values)
            lines.append(f"{item.name}: .float {values}")
        else:
            values = ", ".join(str(int(v)) for v in item.values)
            lines.append(f"{item.name}: .word {values}")
    lines.append(".text")
    return "\n".join(lines)


def _roundtrip(source):
    original = compile_source(source)
    vm1, trace1 = run_program(original, max_instructions=1_000_000)

    listing = _data_section(original) + "\n" + disassemble_program(original)
    reassembled = assemble(listing, entry="__start")
    vm2, trace2 = run_program(reassembled, max_instructions=1_000_000)
    return vm1, trace1, vm2, trace2


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_roundtrip_preserves_behaviour(name):
    vm1, trace1, vm2, trace2 = _roundtrip(PROGRAMS[name])
    assert vm2.exit_code == vm1.exit_code
    assert vm2.stdout == vm1.stdout
    assert len(trace2) == len(trace1)


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_roundtrip_preserves_classification(name):
    """Locality annotations must survive the textual round trip."""
    _, trace1, _, trace2 = _roundtrip(PROGRAMS[name])
    hints1 = [i.local_hint for i in trace1 if i.is_mem]
    hints2 = [i.local_hint for i in trace2 if i.is_mem]
    assert hints1 == hints2


def test_error_hierarchy_rooted():
    """Every library error is catchable as ReproError."""
    from repro import errors

    for name in ("ConfigError", "IsaError", "AssemblerError",
                 "CompileError", "VmError", "SimulationError",
                 "WorkloadError"):
        assert issubclass(getattr(errors, name), ReproError), name

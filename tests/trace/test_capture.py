"""Trace capture: determinism, content-addressed store, salting."""

from __future__ import annotations

import json
import os

import pytest

from repro.trace.capture import (
    TraceJob,
    TraceStore,
    build_capture,
    capture_salt,
    capture_trace,
)
from repro.trace.format import TRACE_FORMAT_VERSION, read_trace

#: Small spec capture: scale far below the 10k-instruction floor, so the
#: functional frontend runs in milliseconds.
JOB_ARGS = dict(workload="130.li", scale=0.0001, seed=5)


def test_capture_is_byte_identical(tmp_path):
    """Same workload + config => byte-identical trace file."""
    job = TraceJob(**JOB_ARGS)
    path, cached = capture_trace(job, cache_dir=str(tmp_path))
    assert not cached
    first = open(path, "rb").read()
    path_again, cached = capture_trace(job, cache_dir=str(tmp_path),
                                       force=True)
    assert path_again == path and not cached
    assert open(path, "rb").read() == first


def test_capture_cache_hit(tmp_path):
    job = TraceJob(**JOB_ARGS)
    path, cached = capture_trace(job, cache_dir=str(tmp_path))
    assert not cached
    again, cached = capture_trace(job, cache_dir=str(tmp_path))
    assert cached and again == path


def test_store_layout_and_meta_sidecar(tmp_path):
    job = TraceJob(**JOB_ARGS)
    path, _cached = capture_trace(job, cache_dir=str(tmp_path))
    store = TraceStore(str(tmp_path))
    assert path == store.path(job.key)
    assert path.endswith(os.path.join(job.key[:2], job.key + ".trace"))
    assert os.sep + "v1" + os.sep in path
    sidecar = os.path.join(os.path.dirname(path), job.key + ".json")
    with open(sidecar) as handle:
        meta = json.load(handle)
    assert meta["kind"] == "trace-capture"
    assert meta["workload"] == "130.li"
    # The stored file replays into the same stream the frontend built.
    assert len(read_trace(path)) == len(build_capture(job))


def test_capture_salt_names_format_version():
    salt = capture_salt()
    assert salt.startswith(f"trace{TRACE_FORMAT_VERSION}-")
    assert salt == capture_salt()  # memoised, stable within a process


def test_salt_override_composes(monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_SALT", "pinned")
    assert capture_salt() == f"trace{TRACE_FORMAT_VERSION}-pinned"


def test_job_key_tracks_inputs():
    base = TraceJob(**JOB_ARGS)
    assert TraceJob(**JOB_ARGS).key == base.key
    assert TraceJob("130.li", scale=0.0002, seed=5).key != base.key
    assert TraceJob("130.li", scale=0.0001, seed=6).key != base.key
    assert TraceJob("129.compress", scale=0.0001, seed=5).key != base.key


def test_source_capture(tmp_path):
    job = TraceJob(
        "sum.mc", source_text=(
            "int main() {\n"
            "    int i; int total = 0;\n"
            "    for (i = 0; i < 50; i++) total += i;\n"
            "    return 0;\n"
            "}\n"),
    )
    path, cached = capture_trace(job, cache_dir=str(tmp_path))
    assert not cached
    trace = read_trace(path)
    assert trace.name == "sum.mc"
    assert len(trace) > 0


def test_empty_capture_rejected(tmp_path, monkeypatch):
    from repro.errors import TraceError
    from repro.trace import capture as capture_module
    from repro.vm.trace import Trace

    monkeypatch.setattr(capture_module, "build_capture",
                        lambda job: Trace("hollow"))
    with pytest.raises(TraceError, match="empty trace"):
        capture_trace(TraceJob(**JOB_ARGS), cache_dir=str(tmp_path))

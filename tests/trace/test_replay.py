"""Replay must be bit-identical to execution-driven simulation."""

from __future__ import annotations

from repro.core.processor import Processor
from repro.perf.golden import GOLDEN_CONFIGS, diff_results, golden_config
from repro.trace.format import decode_trace, encode_trace, write_trace
from repro.trace.replay import check_replay_equivalence, load_trace, replay


def test_replay_matches_execution_on_golden_matrix(small_li_trace):
    """Every golden config: same cycles, instructions, and counters."""
    replayed = decode_trace(encode_trace(small_li_trace))
    for name, _kwargs in GOLDEN_CONFIGS:
        config = golden_config(name)
        expected = Processor(config).run(small_li_trace.insts, "130.li")
        actual = replay(replayed, config, workload="130.li")
        assert diff_results("130.li", name, expected, actual) == []


def test_replay_from_file(small_vortex_trace, tmp_path, decoupled_config):
    path = str(tmp_path / "v.trace")
    write_trace(small_vortex_trace, path)
    expected = Processor(decoupled_config).run(
        small_vortex_trace.insts, "147.vortex")
    actual = replay(path, decoupled_config)
    assert actual.workload_name == "147.vortex"
    assert diff_results("147.vortex", "2+2:opt", expected, actual) == []


def test_replay_with_gshare_frontend(small_li_trace, decoupled_config):
    """Gate lists are recomputed from the committed stream, so replay
    stays bit-identical even under the non-default frontend."""
    decoupled_config.frontend.policy = "gshare"
    replayed = decode_trace(encode_trace(small_li_trace))
    expected = Processor(decoupled_config).run(small_li_trace.insts, "li")
    actual = Processor(decoupled_config).run(replayed.insts, "li")
    assert diff_results("li", "2+2:opt+gshare", expected, actual) == []


def test_load_trace_passthrough(small_li_trace):
    assert load_trace(small_li_trace) is small_li_trace


def test_equivalence_sweep_is_clean():
    """The fuzz-adjacent oracle entry point: full golden matrix, no
    mismatches, on a short stream."""
    assert check_replay_equivalence(["129.compress"], length=8_000) == []

"""Multi-programmed mixes: solo equivalence, interference, caching."""

from __future__ import annotations

import pytest

from repro.core.multicore import run_mix
from repro.core.processor import Processor
from repro.perf.golden import GOLDEN_CONFIGS, diff_results, golden_config
from repro.runtime.job import MixJob
from repro.trace.mix import (
    INTERFERENCE_COUNTERS,
    MixResult,
    run_mix_jobs,
)


def test_one_program_mix_is_bit_identical(small_li_trace):
    """A 1-program mix must reproduce the solo run exactly — the shared
    hierarchy with one core attached is the solo hierarchy."""
    for name, _kwargs in GOLDEN_CONFIGS:
        config = golden_config(name)
        solo = Processor(config).run(small_li_trace.insts, "130.li")
        (mixed,) = run_mix([("130.li", small_li_trace.insts)], config)
        assert diff_results("130.li", name, solo, mixed) == []


def test_two_program_mix_interferes(small_li_trace, small_vortex_trace,
                                    decoupled_config):
    results = run_mix(
        [("130.li", small_li_trace.insts),
         ("147.vortex", small_vortex_trace.insts)],
        decoupled_config,
    )
    assert [r.workload_name for r in results] == ["130.li", "147.vortex"]
    for result, solo_insts in zip(
            results, (small_li_trace.insts, small_vortex_trace.insts)):
        solo = Processor(decoupled_config).run(
            solo_insts, result.workload_name)
        # Sharing can only slow a program down, never speed it up
        # (disjoint per-core address spaces: no prefetch gifts).
        assert result.cycles >= solo.cycles
        assert result.instructions == solo.instructions
    # Somebody must have observed the contention.
    total_conflicts = sum(
        r.counters.get("mix.bus_conflicts") for r in results)
    assert total_conflicts > 0


def test_mix_result_slices_and_summary(small_li_trace, small_vortex_trace,
                                       base_config):
    programs = run_mix(
        [("130.li", small_li_trace.insts),
         ("147.vortex", small_vortex_trace.insts)],
        base_config,
    )
    mix = MixResult("(2+0)", programs)
    assert mix.cycles == max(p.cycles for p in programs)
    assert mix.instructions == sum(p.instructions for p in programs)
    assert mix.slice("147.vortex").workload_name == "147.vortex"
    with pytest.raises(KeyError):
        mix.slice("no-such-program")
    interference = mix.interference()
    assert set(interference) == {"130.li", "147.vortex"}
    for counters in interference.values():
        assert set(counters) == set(INTERFERENCE_COUNTERS)
    summary = mix.summary()
    assert summary["config"] == "(2+0)"
    assert len(summary["programs"]) == 2


def test_mix_job_engine_and_cache_round_trip(tmp_path, decoupled_config):
    job = MixJob(("130.li", "129.compress"), decoupled_config, scale=0.001)
    [(returned, first)] = run_mix_jobs([job], cache_dir=str(tmp_path))
    assert returned is job
    [(_, second)] = run_mix_jobs(
        [MixJob(("130.li", "129.compress"), decoupled_config,
                scale=0.001)],
        cache_dir=str(tmp_path))
    assert isinstance(second, MixResult)
    assert second.summary() == first.summary()


def test_mix_job_identity():
    config = golden_config("2+0")
    job = MixJob(("130.li", "129.compress"), config, scale=0.5)
    same = MixJob(("130.li", "129.compress"), config, scale=0.5)
    assert job.key == same.key
    assert job.workload == "130.li+129.compress"
    # Order is part of the identity: core 0 vs core 1 placement differs.
    swapped = MixJob(("129.compress", "130.li"), config, scale=0.5)
    assert swapped.key != job.key
    with pytest.raises(ValueError):
        MixJob((), config)

"""Pre-decoded sidecar: determinism, corruption handling, equivalence.

The sidecar (:mod:`repro.trace.predecode`) is a derived artifact, so
its whole contract is: deterministic bytes, loud failure on any defect,
and a materialized stream indistinguishable from decoding the raw
trace — on every golden-matrix configuration.
"""

from __future__ import annotations

import json
import os
import struct

import pytest

from repro.core.processor import Processor
from repro.errors import TraceError
from repro.perf.golden import GOLDEN_CONFIGS, diff_results, golden_config
from repro.trace import predecode
from repro.trace.format import decode_trace, encode_trace, write_trace
from repro.trace.predecode import (
    MAGIC,
    decode_predecoded,
    encode_predecoded,
    materialized_insts,
    predecode_trace,
    read_predecoded,
    write_predecoded,
)
from repro.trace.replay import replay, replay_fast, replay_insts

_FIELDS = ("fu", "dst", "srcs", "addr", "size", "local_hint", "is_local",
           "sp_based", "frame_id", "offset", "pc")


@pytest.fixture(autouse=True)
def _cold_memo():
    predecode.clear_materialized()
    yield
    predecode.clear_materialized()


@pytest.fixture(scope="module")
def li_blob(small_li_trace):
    return encode_trace(small_li_trace)


def _mutate_header(blob: bytes, **changes) -> bytes:
    """Re-pack a sidecar blob with header fields overridden."""
    (header_len,) = struct.unpack_from("<I", blob, len(MAGIC))
    start = len(MAGIC) + 4
    header = json.loads(blob[start:start + header_len])
    header.update(changes)
    raw = json.dumps(header, sort_keys=True,
                     separators=(",", ":")).encode("utf-8")
    return (MAGIC + struct.pack("<I", len(raw)) + raw
            + blob[start + header_len:])


def test_round_trip_is_deterministic(li_blob):
    pdt = predecode_trace(li_blob)
    blob1 = encode_predecoded(pdt)
    blob2 = encode_predecoded(predecode_trace(li_blob))
    assert blob1 == blob2
    blob3 = encode_predecoded(decode_predecoded(blob1))
    assert blob1 == blob3


def test_derived_tables_are_consistent(li_blob, small_li_trace):
    from repro.isa.opcodes import LATENCY_BY_INT

    pdt = predecode_trace(li_blob)
    t = pdt.tables
    assert pdt.n == len(small_li_trace.insts)
    assert len(t["src_off"]) == pdt.n + 1
    assert t["src_off"][pdt.n] == len(t["srcs"])
    for i, inst in enumerate(small_li_trace.insts):
        assert t["lat"][i] == LATENCY_BY_INT[inst.fu]
        assert t["word"][i] == inst.addr >> 2
        assert t["line"][i] == inst.addr >> 5
        lo, hi = t["src_off"][i], t["src_off"][i + 1]
        assert tuple(t["srcs"][lo:hi]) == inst.srcs


def test_materialize_matches_raw_decode(li_blob):
    raw = decode_trace(li_blob).insts
    got = materialized_insts(predecode_trace(li_blob))
    assert len(raw) == len(got)
    for a, b in zip(raw, got):
        for field in _FIELDS:
            assert getattr(a, field) == getattr(b, field)


def test_materialization_is_memoized(li_blob):
    pdt = predecode_trace(li_blob)
    first = materialized_insts(pdt)
    again = materialized_insts(decode_predecoded(encode_predecoded(pdt)))
    assert again is first
    assert predecode.materialized_cached(pdt.source_sha256) is first
    predecode.clear_materialized()
    assert predecode.materialized_cached(pdt.source_sha256) is None


def test_bad_magic_raises(li_blob):
    blob = encode_predecoded(predecode_trace(li_blob))
    with pytest.raises(TraceError, match="bad magic"):
        decode_predecoded(b"NOTAPDT!" + blob[8:])


def test_truncation_raises(li_blob):
    blob = encode_predecoded(predecode_trace(li_blob))
    with pytest.raises(TraceError, match="truncated"):
        decode_predecoded(blob[:6])
    # With verification on, the checksum catches the truncation; with it
    # off, the section bounds check still refuses the short payload.
    with pytest.raises(TraceError, match="checksum mismatch"):
        decode_predecoded(blob[:len(blob) // 2])
    with pytest.raises(TraceError, match="truncated"):
        decode_predecoded(blob[:len(blob) // 2], verify=False)


def test_payload_corruption_raises(li_blob):
    blob = bytearray(encode_predecoded(predecode_trace(li_blob)))
    blob[-10] ^= 0xFF
    with pytest.raises(TraceError, match="checksum mismatch"):
        decode_predecoded(bytes(blob))


def test_version_skew_raises(li_blob):
    blob = encode_predecoded(predecode_trace(li_blob))
    skewed = _mutate_header(blob,
                            version=predecode.PREDECODE_VERSION + 1)
    with pytest.raises(TraceError, match="version"):
        decode_predecoded(skewed)


def test_missing_source_hash_raises(li_blob):
    blob = encode_predecoded(predecode_trace(li_blob))
    with pytest.raises(TraceError, match="source_sha256"):
        decode_predecoded(_mutate_header(blob, source_sha256=""))


def test_corrupt_trace_refused_at_predecode(li_blob):
    broken = bytearray(li_blob)
    broken[-1] ^= 0xFF
    with pytest.raises(TraceError, match="checksum mismatch"):
        predecode_trace(bytes(broken))


def test_file_round_trip(li_blob, tmp_path):
    pdt = predecode_trace(li_blob)
    path = str(tmp_path / "li.pdt")
    write_predecoded(pdt, path)
    loaded = read_predecoded(path)
    assert loaded.source_sha256 == pdt.source_sha256
    assert loaded.tables["pc"] == pdt.tables["pc"]
    with pytest.raises(TraceError, match="cannot read"):
        read_predecoded(str(tmp_path / "absent.pdt"))


@pytest.mark.parametrize("notation", [name for name, _kw in GOLDEN_CONFIGS])
def test_sidecar_replay_matches_raw_replay(notation, small_li_trace,
                                           li_blob):
    """Golden matrix: replay from the sidecar == replay from the raw
    trace, cycles + instructions + full counter dict."""
    config = golden_config(notation)
    expected = Processor(config).run(
        decode_trace(li_blob).insts, "130.li")
    insts = materialized_insts(predecode_trace(li_blob))
    actual = Processor(golden_config(notation)).run(insts, "130.li")
    assert diff_results("130.li", notation, expected, actual) == []


def test_sidecar_replay_second_workload(small_vortex_trace):
    blob = encode_trace(small_vortex_trace)
    config = golden_config("2+2:opt")
    expected = Processor(config).run(decode_trace(blob).insts,
                                     "147.vortex")
    insts = materialized_insts(predecode_trace(blob))
    actual = Processor(golden_config("2+2:opt")).run(insts, "147.vortex")
    assert diff_results("147.vortex", "2+2:opt", expected, actual) == []


def test_replay_fast_from_file(small_li_trace, tmp_path,
                               decoupled_config):
    path = str(tmp_path / "li.trace")
    write_trace(small_li_trace, path)
    expected = replay(path, decoupled_config)
    # No sidecar yet: derived in memory.
    actual = replay_fast(path, decoupled_config)
    assert diff_results("130.li", "2+2:opt", expected, actual) == []
    # With the sidecar on disk, and again from the warm memo.
    write_predecoded(predecode_trace(open(path, "rb").read()),
                     str(tmp_path / "li.pdt"))
    predecode.clear_materialized()
    actual = replay_fast(path, decoupled_config)
    assert diff_results("130.li", "2+2:opt", expected, actual) == []
    insts_a, _ = replay_insts(path)
    insts_b, _ = replay_insts(path)
    assert insts_a is insts_b


def test_stale_sidecar_is_ignored(small_li_trace, tmp_path,
                                  decoupled_config):
    path = str(tmp_path / "li.trace")
    write_trace(small_li_trace, path)
    expected = replay(path, decoupled_config)
    pdt = predecode_trace(open(path, "rb").read())
    pdt.source_sha256 = "0" * 64
    write_predecoded(pdt, str(tmp_path / "li.pdt"))
    actual = replay_fast(path, decoupled_config)
    assert diff_results("130.li", "2+2:opt", expected, actual) == []


def test_store_derives_and_revalidates_sidecar(tmp_path):
    from repro.trace.capture import TraceJob, TraceStore, capture_trace

    job = TraceJob("mini.qsort", seed=3)
    path, cached = capture_trace(job, cache_dir=str(tmp_path))
    assert not cached
    store = TraceStore(str(tmp_path))
    sidecar = store.predecoded_path(job.key)
    assert os.path.exists(sidecar)
    good = read_predecoded(sidecar)
    # A deleted sidecar is re-derived on the next cache hit.
    os.remove(sidecar)
    _path, cached = capture_trace(job, cache_dir=str(tmp_path))
    assert cached and os.path.exists(sidecar)
    # A stale sidecar (wrong source hash) is rewritten, not trusted.
    stale = read_predecoded(sidecar)
    stale.source_sha256 = "f" * 64
    write_predecoded(stale, sidecar)
    assert store.ensure_predecoded(job.key) == sidecar
    assert read_predecoded(sidecar).source_sha256 == good.source_sha256
    # No stored trace -> no sidecar.
    assert store.ensure_predecoded("0" * 40) is None

"""The ``repro-cc trace`` command family, end to end."""

from __future__ import annotations

import json

from repro.cli import main

CAPTURE = ["trace", "capture", "130.li", "--scale", "0.0001",
           "--seed", "5"]


def _capture(tmp_path, capsys) -> str:
    assert main(CAPTURE + ["--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert out.startswith("captured 130.li -> ")
    return out.rsplit("-> ", 1)[1].strip()


def test_capture_then_cached(tmp_path, capsys):
    path = _capture(tmp_path, capsys)
    assert path.endswith(".trace")
    assert main(CAPTURE + ["--cache-dir", str(tmp_path)]) == 0
    assert capsys.readouterr().out.startswith("cached 130.li -> ")


def test_capture_to_explicit_output(tmp_path, capsys):
    target = str(tmp_path / "li.trace")
    assert main(CAPTURE + ["--output", target]) == 0
    assert target in capsys.readouterr().out


def test_info(tmp_path, capsys):
    path = _capture(tmp_path, capsys)
    assert main(["trace", "info", path]) == 0
    info = json.loads(capsys.readouterr().out)
    assert info["workload"] == "130.li"
    assert info["version"] == 1
    assert info["instructions"] > 0
    assert info["meta"]["kind"] == "trace-capture"


def test_replay_with_check(tmp_path, capsys):
    path = _capture(tmp_path, capsys)
    code = main(["trace", "replay", path, "--scale", "0.0001",
                 "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "130.li" in out
    assert "(2+0" in out and "(2+2:opt" in out
    code = main(["trace", "replay", path, "--config", "2+2:opt",
                 "--check", "--scale", "0.0001", "--seed", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "bit-identical to execution-driven run" in out


def test_mix(capsys):
    code = main(["trace", "mix", "130.li", "129.compress",
                 "--scale", "0.001"])
    out = capsys.readouterr().out
    assert code == 0
    assert "mix of 2 programs" in out
    assert "130.li" in out and "129.compress" in out
    assert "bus-conflict stalls" in out

"""On-disk trace format: round trips, determinism, corruption paths."""

from __future__ import annotations

import json
import struct

import pytest

from repro.errors import TraceError
from repro.trace.format import (
    MAGIC,
    SECTIONS,
    TRACE_FORMAT_VERSION,
    decode_trace,
    encode_trace,
    read_trace,
    trace_info,
    write_trace,
)
from repro.workloads.builder import build_trace

FIELDS = ("fu", "dst", "srcs", "addr", "size", "local_hint", "is_local",
          "sp_based", "frame_id", "offset", "pc")

_HEADER_START = len(MAGIC) + 4


@pytest.fixture(scope="module")
def trace():
    return build_trace("130.li", length=12_000, seed=3)


@pytest.fixture(scope="module")
def data(trace):
    return encode_trace(trace)


def _patch_header(data: bytes, mutate) -> bytes:
    """Rewrite the JSON header in place (payload untouched)."""
    (header_len,) = struct.unpack_from("<I", data, len(MAGIC))
    header = json.loads(data[_HEADER_START:_HEADER_START + header_len])
    mutate(header)
    raw = json.dumps(header, sort_keys=True,
                     separators=(",", ":")).encode("utf-8")
    return (MAGIC + struct.pack("<I", len(raw)) + raw
            + data[_HEADER_START + header_len:])


def test_round_trip_is_field_exact(trace, data):
    decoded = decode_trace(data)
    assert decoded.name == trace.name
    assert len(decoded) == len(trace)
    for original, copy in zip(trace.insts, decoded.insts):
        for field in FIELDS:
            assert getattr(copy, field) == getattr(original, field)


def test_round_trip_preserves_stats(trace, data):
    decoded = decode_trace(data)
    for field in ("instructions", "loads", "stores", "local_loads",
                  "local_stores", "sp_based_refs", "ambiguous_refs"):
        assert getattr(decoded.stats, field) == getattr(trace.stats, field)
    assert (sorted(decoded.stats.frame_sizes.items())
            == sorted(trace.stats.frame_sizes.items()))


def test_encode_is_deterministic(trace, data):
    assert encode_trace(trace) == data
    # And idempotent through a decode cycle.
    assert encode_trace(decode_trace(data)) == data


def test_write_is_byte_identical_across_runs(trace, tmp_path):
    first = tmp_path / "a.trace"
    second = tmp_path / "b.trace"
    write_trace(trace, str(first))
    write_trace(trace, str(second))
    assert first.read_bytes() == second.read_bytes()
    assert len(read_trace(str(first))) == len(trace)


def test_trace_info_reads_header_only(trace, tmp_path):
    path = str(tmp_path / "t.trace")
    write_trace(trace, path, meta={"kind": "trace-capture"})
    info = trace_info(path)
    assert info["version"] == TRACE_FORMAT_VERSION
    assert info["workload"] == trace.name
    assert info["instructions"] == len(trace)
    assert info["meta"] == {"kind": "trace-capture"}
    assert [s["name"] for s in info["sections"]] == [n for n, _ in SECTIONS]


def test_empty_and_short_inputs_rejected():
    with pytest.raises(TraceError, match="truncated"):
        decode_trace(b"")
    with pytest.raises(TraceError, match="truncated"):
        decode_trace(MAGIC + b"\x01")


def test_bad_magic_rejected(data):
    with pytest.raises(TraceError, match="bad magic"):
        decode_trace(b"NOTATRCE" + data[len(MAGIC):])


def test_garbage_header_rejected():
    body = b"not json!!"
    blob = MAGIC + struct.pack("<I", len(body)) + body
    with pytest.raises(TraceError, match="corrupt trace header"):
        decode_trace(blob)


def test_truncated_payload_rejected(data, tmp_path):
    truncated = data[:-64]
    with pytest.raises(TraceError):
        decode_trace(truncated)
    path = tmp_path / "cut.trace"
    path.write_bytes(truncated)
    with pytest.raises(TraceError, match="truncated trace payload"):
        trace_info(str(path))
    with pytest.raises(TraceError):
        read_trace(str(path))


def test_corrupt_payload_fails_checksum(data):
    flipped = bytearray(data)
    flipped[-1] ^= 0xFF
    with pytest.raises(TraceError, match="checksum mismatch"):
        decode_trace(bytes(flipped))


def test_verify_false_skips_checksum(data):
    # Corrupting a derived (gate) table leaves the instruction stream
    # intact, so the unverified decode still round-trips.
    flipped = bytearray(data)
    flipped[-1] ^= 0xFF
    decoded = decode_trace(bytes(flipped), verify=False)
    assert len(decoded) == len(decode_trace(data))


def test_version_skew_rejected(data):
    def bump(header):
        header["version"] = TRACE_FORMAT_VERSION + 1

    with pytest.raises(TraceError, match="format version"):
        decode_trace(_patch_header(data, bump))


def test_missing_section_rejected(data):
    def drop(header):
        header["sections"] = [s for s in header["sections"]
                              if s["name"] != "addr"]

    with pytest.raises(TraceError, match="missing section"):
        decode_trace(_patch_header(data, drop))


def test_nonexistent_file_rejected(tmp_path):
    with pytest.raises(TraceError, match="cannot read trace"):
        read_trace(str(tmp_path / "absent.trace"))
